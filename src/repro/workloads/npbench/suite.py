"""Kernel definitions for the mini NPBench suite.

Every kernel is a function returning a fresh program plus its default symbol
values (kept small so per-instance fuzzing of the whole suite stays within a
laptop-scale budget).  The kernels intentionally mix the structural patterns
the swept transformations match:

* element-wise maps (Vectorization, MapTiling, MapExpansion targets),
* producer/consumer buffer pairs (BufferTiling, MapReduceFusion targets),
* tasklet chains through scalar temporaries (TaskletFusion targets),
* interstate symbol assignments (StateAssignElimination /
  SymbolAliasPromotion targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.frontend import add_init, add_matmul
from repro.sdfg import SDFG, InterstateEdge, Memlet, float64

__all__ = ["KernelSpec", "all_kernels", "get_kernel"]


@dataclass
class KernelSpec:
    """A suite entry: a builder plus default symbol values and its domain."""

    name: str
    build: Callable[[], SDFG]
    symbols: Dict[str, int]
    domain: str


def _ew(state, label, ranges, inputs, code, outputs, **kw):
    return state.add_mapped_tasklet(label, ranges, inputs, code, outputs, **kw)


# ---------------------------------------------------------------------- #
# Dense linear algebra (polybench-style)
# ---------------------------------------------------------------------- #
def build_gemm() -> SDFG:
    """C = alpha * A @ B + beta * C."""
    sdfg = SDFG("gemm")
    sdfg.add_array("A", ["NI", "NK"], float64)
    sdfg.add_array("B", ["NK", "NJ"], float64)
    sdfg.add_array("C", ["NI", "NJ"], float64)
    sdfg.add_scalar("alpha", float64)
    sdfg.add_scalar("beta", float64)
    sdfg.add_transient("AB", ["NI", "NJ"], float64)
    state = sdfg.add_state("gemm")
    add_init(sdfg, state, "AB", 0.0)
    _, _, mm_exit = _ew(
        state, "mm", {"i": "0:NI-1", "j": "0:NJ-1", "k": "0:NK-1"},
        {"a": Memlet.simple("A", "i, k"), "b": Memlet.simple("B", "k, j"),
         "al": Memlet.simple("alpha", "0")},
        "c = al * a * b", {"c": Memlet("AB", "i, j", wcr="sum")},
    )
    ab_node = next(e.dst for e in state.out_edges(mm_exit))
    _ew(
        state, "scale_add", {"i": "0:NI-1", "j": "0:NJ-1"},
        {"ab": Memlet.simple("AB", "i, j"), "c_in": Memlet.simple("C", "i, j"),
         "be": Memlet.simple("beta", "0")},
        "c_out = ab + be * c_in", {"c_out": Memlet.simple("C", "i, j")},
        input_nodes={"AB": ab_node},
    )
    return sdfg


def build_atax() -> SDFG:
    """y = A^T (A x)."""
    sdfg = SDFG("atax")
    sdfg.add_array("A", ["M", "N"], float64)
    sdfg.add_array("x", ["N"], float64)
    sdfg.add_array("y", ["N"], float64)
    sdfg.add_transient("tmp", ["M"], float64)
    state = sdfg.add_state("atax")
    add_init(sdfg, state, "tmp", 0.0)
    add_init(sdfg, state, "y", 0.0)
    _, _, e1 = _ew(
        state, "ax", {"i": "0:M-1", "j": "0:N-1"},
        {"a": Memlet.simple("A", "i, j"), "xv": Memlet.simple("x", "j")},
        "t = a * xv", {"t": Memlet("tmp", "i", wcr="sum")},
    )
    tmp_node = next(e.dst for e in state.out_edges(e1))
    _ew(
        state, "aty", {"i": "0:M-1", "j": "0:N-1"},
        {"a": Memlet.simple("A", "i, j"), "t": Memlet.simple("tmp", "i")},
        "yv = a * t", {"yv": Memlet("y", "j", wcr="sum")},
        input_nodes={"tmp": tmp_node},
    )
    return sdfg


def build_bicg() -> SDFG:
    """s = A^T r ; q = A p."""
    sdfg = SDFG("bicg")
    sdfg.add_array("A", ["M", "N"], float64)
    sdfg.add_array("p", ["N"], float64)
    sdfg.add_array("r", ["M"], float64)
    sdfg.add_array("q", ["M"], float64)
    sdfg.add_array("s", ["N"], float64)
    state = sdfg.add_state("bicg")
    add_init(sdfg, state, "q", 0.0)
    add_init(sdfg, state, "s", 0.0)
    _ew(
        state, "q_mv", {"i": "0:M-1", "j": "0:N-1"},
        {"a": Memlet.simple("A", "i, j"), "pv": Memlet.simple("p", "j")},
        "qv = a * pv", {"qv": Memlet("q", "i", wcr="sum")},
    )
    _ew(
        state, "s_mv", {"i": "0:M-1", "j": "0:N-1"},
        {"a": Memlet.simple("A", "i, j"), "rv": Memlet.simple("r", "i")},
        "sv = a * rv", {"sv": Memlet("s", "j", wcr="sum")},
    )
    return sdfg


def build_mvt() -> SDFG:
    """x1 += A y1 ; x2 += A^T y2."""
    sdfg = SDFG("mvt")
    sdfg.add_array("A", ["N", "N"], float64)
    sdfg.add_array("x1", ["N"], float64)
    sdfg.add_array("x2", ["N"], float64)
    sdfg.add_array("y1", ["N"], float64)
    sdfg.add_array("y2", ["N"], float64)
    state = sdfg.add_state("mvt")
    _ew(
        state, "x1_update", {"i": "0:N-1", "j": "0:N-1"},
        {"a": Memlet.simple("A", "i, j"), "y": Memlet.simple("y1", "j")},
        "o = a * y", {"o": Memlet("x1", "i", wcr="sum")},
    )
    _ew(
        state, "x2_update", {"i": "0:N-1", "j": "0:N-1"},
        {"a": Memlet.simple("A", "j, i"), "y": Memlet.simple("y2", "j")},
        "o = a * y", {"o": Memlet("x2", "i", wcr="sum")},
    )
    return sdfg


def build_two_mm() -> SDFG:
    """D = alpha*A@B@C + beta*D (2mm)."""
    sdfg = SDFG("two_mm")
    sdfg.add_array("A", ["NI", "NK"], float64)
    sdfg.add_array("B", ["NK", "NJ"], float64)
    sdfg.add_array("C", ["NJ", "NL"], float64)
    sdfg.add_array("D", ["NI", "NL"], float64)
    sdfg.add_transient("tmp", ["NI", "NJ"], float64)
    state = sdfg.add_state("two_mm")
    add_matmul(sdfg, state, "A", "B", "tmp", label="first_mm")
    tmp_node = [n for n in state.data_nodes() if n.data == "tmp"][-1]
    add_init(sdfg, state, "D", 0.0)
    _ew(
        state, "second_mm", {"i": "0:NI-1", "j": "0:NL-1", "k": "0:NJ-1"},
        {"t": Memlet.simple("tmp", "i, k"), "c": Memlet.simple("C", "k, j")},
        "d = t * c", {"d": Memlet("D", "i, j", wcr="sum")},
        input_nodes={"tmp": tmp_node},
    )
    return sdfg


def build_three_mm() -> SDFG:
    """G = (A@B) @ (C@D) (3mm)."""
    sdfg = SDFG("three_mm")
    for name, shape in (
        ("A", ["NI", "NK"]), ("B", ["NK", "NJ"]), ("C", ["NJ", "NM"]),
        ("D", ["NM", "NL"]), ("G", ["NI", "NL"]),
    ):
        sdfg.add_array(name, shape, float64)
    sdfg.add_transient("E", ["NI", "NJ"], float64)
    sdfg.add_transient("F", ["NJ", "NL"], float64)
    state = sdfg.add_state("three_mm")
    add_matmul(sdfg, state, "A", "B", "E", label="e_mm")
    add_matmul(sdfg, state, "C", "D", "F", label="f_mm")
    add_matmul(sdfg, state, "E", "F", "G", label="g_mm")
    return sdfg


# ---------------------------------------------------------------------- #
# Stencils
# ---------------------------------------------------------------------- #
def build_jacobi_1d() -> SDFG:
    """One Jacobi-1D sweep: B[i] = (A[i-1] + A[i] + A[i+1]) / 3."""
    sdfg = SDFG("jacobi_1d")
    sdfg.add_array("A", ["N"], float64)
    sdfg.add_array("B", ["N"], float64)
    state = sdfg.add_state("sweep")
    _ew(
        state, "jacobi", {"i": "1:N-2"},
        {"w": Memlet.simple("A", "i - 1"), "c": Memlet.simple("A", "i"),
         "e": Memlet.simple("A", "i + 1")},
        "o = (w + c + e) / 3.0", {"o": Memlet.simple("B", "i")},
    )
    return sdfg


def build_jacobi_2d() -> SDFG:
    """One Jacobi-2D sweep on the interior."""
    sdfg = SDFG("jacobi_2d")
    sdfg.add_array("A", ["N", "N"], float64)
    sdfg.add_array("B", ["N", "N"], float64)
    state = sdfg.add_state("sweep")
    _ew(
        state, "jacobi2d", {"i": "1:N-2", "j": "1:N-2"},
        {
            "c": Memlet.simple("A", "i, j"),
            "n": Memlet.simple("A", "i - 1, j"),
            "s": Memlet.simple("A", "i + 1, j"),
            "w": Memlet.simple("A", "i, j - 1"),
            "e": Memlet.simple("A", "i, j + 1"),
        },
        "o = 0.2 * (c + n + s + w + e)", {"o": Memlet.simple("B", "i, j")},
    )
    return sdfg


def build_heat_3d_step() -> SDFG:
    """A single heat-3d-like update on the interior of a 3D grid."""
    sdfg = SDFG("heat_3d")
    sdfg.add_array("A", ["N", "N", "N"], float64)
    sdfg.add_array("B", ["N", "N", "N"], float64)
    state = sdfg.add_state("step")
    _ew(
        state, "heat", {"i": "1:N-2", "j": "1:N-2", "k": "1:N-2"},
        {
            "c": Memlet.simple("A", "i, j, k"),
            "xm": Memlet.simple("A", "i - 1, j, k"),
            "xp": Memlet.simple("A", "i + 1, j, k"),
            "ym": Memlet.simple("A", "i, j - 1, k"),
            "yp": Memlet.simple("A", "i, j + 1, k"),
        },
        "o = c + 0.125 * (xm + xp + ym + yp - 4 * c)",
        {"o": Memlet.simple("B", "i, j, k")},
    )
    return sdfg


# ---------------------------------------------------------------------- #
# Element-wise pipelines, reductions, normalizations
# ---------------------------------------------------------------------- #
def build_axpy_pipeline() -> SDFG:
    """tmp = a*x ; y = tmp + y  (producer/consumer buffer pair)."""
    sdfg = SDFG("axpy_pipeline")
    sdfg.add_array("x", ["N"], float64)
    sdfg.add_array("y", ["N"], float64)
    sdfg.add_scalar("a", float64)
    sdfg.add_transient("tmp", ["N"], float64)
    state = sdfg.add_state("axpy")
    _, _, e1 = _ew(
        state, "scale_x", {"i": "0:N-1"},
        {"xv": Memlet.simple("x", "i"), "av": Memlet.simple("a", "0")},
        "t = av * xv", {"t": Memlet.simple("tmp", "i")},
    )
    tmp_node = next(e.dst for e in state.out_edges(e1))
    _ew(
        state, "add_y", {"i": "0:N-1"},
        {"t": Memlet.simple("tmp", "i"), "yv": Memlet.simple("y", "i")},
        "o = t + yv", {"o": Memlet.simple("y", "i")},
        input_nodes={"tmp": tmp_node},
    )
    return sdfg


def build_sum_of_squares() -> SDFG:
    """acc = sum(A**2) via a square map feeding a reduction map."""
    sdfg = SDFG("sum_of_squares")
    sdfg.add_array("A", ["N", "N"], float64)
    sdfg.add_array("acc", [1], float64)
    sdfg.add_transient("sq", ["N", "N"], float64)
    state = sdfg.add_state("s")
    add_init(sdfg, state, "acc", 0.0)
    _, _, e1 = _ew(
        state, "square", {"i": "0:N-1", "j": "0:N-1"},
        {"a": Memlet.simple("A", "i, j")}, "b = a * a",
        {"b": Memlet.simple("sq", "i, j")},
    )
    sq_node = next(e.dst for e in state.out_edges(e1))
    _ew(
        state, "reduce", {"i": "0:N-1", "j": "0:N-1"},
        {"in_val": Memlet.simple("sq", "i, j")}, "out_val = in_val",
        {"out_val": Memlet("acc", "0", wcr="sum")},
        input_nodes={"sq": sq_node},
    )
    return sdfg


def build_softmax_rows() -> SDFG:
    """Row-wise softmax with explicit max/sum reductions and loop nests."""
    sdfg = SDFG("softmax_rows")
    sdfg.add_array("X", ["N", "M"], float64)
    sdfg.add_array("Y", ["N", "M"], float64)
    sdfg.add_transient("rowmax", ["N"], float64)
    sdfg.add_transient("expx", ["N", "M"], float64)
    sdfg.add_transient("rowsum", ["N"], float64)
    state = sdfg.add_state("softmax")
    add_init(sdfg, state, "rowmax", -1e30)
    add_init(sdfg, state, "rowsum", 0.0)
    _, _, e_max = _ew(
        state, "row_max", {"i": "0:N-1", "j": "0:M-1"},
        {"x": Memlet.simple("X", "i, j")}, "m = x",
        {"m": Memlet("rowmax", "i", wcr="max")},
    )
    rowmax_node = next(e.dst for e in state.out_edges(e_max))
    _, _, e_exp = _ew(
        state, "exp_shift", {"i": "0:N-1", "j": "0:M-1"},
        {"x": Memlet.simple("X", "i, j"), "m": Memlet.simple("rowmax", "i")},
        "e = math.exp(x - m)", {"e": Memlet.simple("expx", "i, j")},
        input_nodes={"rowmax": rowmax_node},
    )
    expx_node = next(e.dst for e in state.out_edges(e_exp))
    _, _, e_sum = _ew(
        state, "row_sum", {"i": "0:N-1", "j": "0:M-1"},
        {"e": Memlet.simple("expx", "i, j")}, "s = e",
        {"s": Memlet("rowsum", "i", wcr="sum")},
        input_nodes={"expx": expx_node},
    )
    rowsum_node = next(e.dst for e in state.out_edges(e_sum))
    _ew(
        state, "normalize", {"i": "0:N-1", "j": "0:M-1"},
        {"e": Memlet.simple("expx", "i, j"), "s": Memlet.simple("rowsum", "i")},
        "y = e / s", {"y": Memlet.simple("Y", "i, j")},
        input_nodes={"expx": expx_node, "rowsum": rowsum_node},
    )
    return sdfg


def build_scaled_diff_chain() -> SDFG:
    """Scalar tasklet chain: d = |a*x0 - b*x1| (TaskletFusion targets)."""
    sdfg = SDFG("scaled_diff")
    sdfg.add_array("x", [2], float64)
    sdfg.add_array("d", [1], float64)
    sdfg.add_scalar("a", float64)
    sdfg.add_scalar("b", float64)
    sdfg.add_transient("t0", [1], float64)
    sdfg.add_transient("t1", [1], float64)
    state = sdfg.add_state("s")
    xr = state.add_access("x")
    ar, br = state.add_access("a"), state.add_access("b")
    t0n, t1n = state.add_access("t0"), state.add_access("t1")
    dw = state.add_access("d")
    tk0 = state.add_tasklet("scale0", ["xv", "av"], ["o"], "o = av * xv")
    tk1 = state.add_tasklet("scale1", ["xv", "bv"], ["o"], "o = bv * xv")
    tk2 = state.add_tasklet("diff", ["u", "v"], ["o"], "o = abs(u - v)")
    state.add_edge(xr, None, tk0, "xv", Memlet.simple("x", "0"))
    state.add_edge(ar, None, tk0, "av", Memlet.simple("a", "0"))
    state.add_edge(tk0, "o", t0n, None, Memlet.simple("t0", "0"))
    state.add_edge(xr, None, tk1, "xv", Memlet.simple("x", "1"))
    state.add_edge(br, None, tk1, "bv", Memlet.simple("b", "0"))
    state.add_edge(tk1, "o", t1n, None, Memlet.simple("t1", "0"))
    state.add_edge(t0n, None, tk2, "u", Memlet.simple("t0", "0"))
    state.add_edge(t1n, None, tk2, "v", Memlet.simple("t1", "0"))
    state.add_edge(tk2, "o", dw, None, Memlet.simple("d", "0"))
    return sdfg


def build_windowed_update() -> SDFG:
    """Two states with an interstate symbol alias (state-machine targets)."""
    sdfg = SDFG("windowed_update")
    sdfg.add_array("X", ["N"], float64)
    sdfg.add_array("Y", ["N"], float64)
    sdfg.add_symbol("W")
    first = sdfg.add_state("setup", is_start_state=True)
    compute = sdfg.add_state("compute")
    compute.add_mapped_tasklet(
        "window", {"i": "0:W-1"},
        {"x": Memlet.simple("X", "i")}, "y = x * 0.5",
        {"y": Memlet.simple("Y", "i")},
    )
    sdfg.add_edge(first, compute, InterstateEdge(assignments={"W": "N"}))
    return sdfg


def build_iterative_smoother() -> SDFG:
    """A constant-trip sequential loop of element-wise smoothing sweeps."""
    sdfg = SDFG("iterative_smoother")
    sdfg.add_array("A", ["N"], float64)
    sdfg.add_transient("B", ["N"], float64)
    init = sdfg.add_state("init", is_start_state=True)
    body = sdfg.add_state("sweep")
    _, _, e1 = body.add_mapped_tasklet(
        "smooth", {"i": "1:N-2"},
        {"w": Memlet.simple("A", "i - 1"), "c": Memlet.simple("A", "i"),
         "e": Memlet.simple("A", "i + 1")},
        "o = (w + c + e) / 3.0", {"o": Memlet.simple("B", "i")},
    )
    b_node = next(e.dst for e in body.out_edges(e1))
    body.add_mapped_tasklet(
        "writeback", {"i": "1:N-2"},
        {"b": Memlet.simple("B", "i")}, "a = b",
        {"a": Memlet.simple("A", "i")},
        input_nodes={"B": b_node},
    )
    sdfg.add_loop(init, body, None, "t", "0", "t < 4", "t + 1")
    return sdfg


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_KERNELS: List[KernelSpec] = [
    KernelSpec("gemm", build_gemm, {"NI": 6, "NJ": 5, "NK": 4}, "linear algebra"),
    KernelSpec("atax", build_atax, {"M": 6, "N": 5}, "linear algebra"),
    KernelSpec("bicg", build_bicg, {"M": 6, "N": 5}, "linear algebra"),
    KernelSpec("mvt", build_mvt, {"N": 6}, "linear algebra"),
    KernelSpec("2mm", build_two_mm, {"NI": 4, "NJ": 5, "NK": 3, "NL": 4}, "linear algebra"),
    KernelSpec("3mm", build_three_mm, {"NI": 4, "NJ": 3, "NK": 3, "NM": 4, "NL": 3}, "linear algebra"),
    KernelSpec("jacobi_1d", build_jacobi_1d, {"N": 12}, "stencil"),
    KernelSpec("jacobi_2d", build_jacobi_2d, {"N": 8}, "stencil"),
    KernelSpec("heat_3d", build_heat_3d_step, {"N": 6}, "stencil"),
    KernelSpec("axpy_pipeline", build_axpy_pipeline, {"N": 12}, "elementwise"),
    KernelSpec("sum_of_squares", build_sum_of_squares, {"N": 6}, "reduction"),
    KernelSpec("softmax_rows", build_softmax_rows, {"N": 5, "M": 6}, "normalization"),
    KernelSpec("scaled_diff", build_scaled_diff_chain, {}, "scalar pipeline"),
    KernelSpec("windowed_update", build_windowed_update, {"N": 8}, "control flow"),
    KernelSpec("iterative_smoother", build_iterative_smoother, {"N": 10}, "control flow"),
]


def all_kernels() -> List[KernelSpec]:
    """All kernels of the mini suite."""
    return list(_KERNELS)


def get_kernel(name: str) -> KernelSpec:
    for spec in _KERNELS:
        if spec.name == name:
            return spec
    raise KeyError(f"Unknown kernel '{name}'")
