"""A mini NPBench-style benchmark suite (Sec. 6.3).

The paper sweeps DaCe's built-in transformations over the 52 NPBench
applications and counts transformation instances that fail differential
fuzzing.  This package provides a representative subset of kernels drawn
from the same application domains (dense linear algebra, stencils,
reductions, element-wise pipelines and normalization), each built on the
dataflow IR and each exposing realistic transformation-instance counts.

Use :func:`repro.workloads.npbench.suite.all_kernels` to enumerate the suite.
"""

from repro.workloads.npbench.suite import KernelSpec, all_kernels, get_kernel

__all__ = ["KernelSpec", "all_kernels", "get_kernel"]
