"""Workload programs used by the paper's case studies.

Every application the evaluation touches is rebuilt on the dataflow IR:

* :mod:`repro.workloads.matmul_chain` -- the Fig. 2 running example,
* :mod:`repro.workloads.bert_encoder` -- the BERT multi-head-attention loop
  nests of Sec. 6.1 / Fig. 5,
* :mod:`repro.workloads.sddmm` -- the sampled dense-dense matrix
  multiplication at the core of Vanilla Attention (Sec. 6.2 / Fig. 6),
* :mod:`repro.workloads.npbench` -- a mini NPBench-style kernel suite for the
  transformation sweep of Sec. 6.3 / Table 2,
* :mod:`repro.workloads.cloudsc` -- a synthetic cloud-microphysics scheme
  standing in for ECMWF CLOUDSC (Sec. 6.4).
"""

from typing import Callable, Dict, List

from repro.workloads.bert_encoder import (
    BERT_LARGE,
    BERT_TINY,
    build_attention_scores,
    build_encoder_layer,
)
from repro.workloads.cloudsc import CloudscConfig, build_cloudsc
from repro.workloads.matmul_chain import build_matmul_chain, reference_matmul_chain
from repro.workloads.sddmm import build_sddmm, reference_sddmm

__all__ = [
    "build_matmul_chain",
    "reference_matmul_chain",
    "build_attention_scores",
    "build_encoder_layer",
    "BERT_LARGE",
    "BERT_TINY",
    "build_sddmm",
    "reference_sddmm",
    "build_cloudsc",
    "CloudscConfig",
    "register_workload_suite",
    "get_workload_suite",
    "get_workload",
    "list_workload_suites",
]


# ---------------------------------------------------------------------- #
# Suite registry: lookup by name so shared-nothing sweep workers can
# rebuild a workload from its (suite, name) pair instead of pickling SDFGs.
# ---------------------------------------------------------------------- #
_SUITE_LOADERS: Dict[str, Callable[[], List]] = {}


def register_workload_suite(name: str, loader: Callable[[], List]) -> None:
    """Register a workload suite under a name.

    ``loader`` returns the suite's list of :class:`KernelSpec`-like entries
    (each with ``name``, ``build()`` and ``symbols``).  Loaders are called
    lazily so registration stays import-cycle free."""
    _SUITE_LOADERS[name] = loader


def list_workload_suites() -> List[str]:
    """Names of all registered workload suites."""
    return sorted(_SUITE_LOADERS)


def get_workload_suite(name: str) -> List:
    """All workload specs of a registered suite."""
    if name not in _SUITE_LOADERS:
        raise KeyError(
            f"Unknown workload suite '{name}' (available: {', '.join(list_workload_suites())})"
        )
    return list(_SUITE_LOADERS[name]())


def get_workload(suite: str, name: str):
    """Look up one workload spec of a suite by name."""
    for spec in get_workload_suite(suite):
        if spec.name == name:
            return spec
    raise KeyError(f"Unknown workload '{name}' in suite '{suite}'")


def _load_npbench():
    from repro.workloads.npbench import all_kernels

    return all_kernels()


def _load_bert():
    """The Sec. 6.1 BERT workloads at the laptop-scale configuration."""
    from repro.workloads.npbench.suite import KernelSpec

    symbols = {k: BERT_TINY[k] for k in ("B", "H", "SM", "P")}
    return [
        KernelSpec("attention_scores", build_attention_scores, dict(symbols), "attention"),
        KernelSpec("encoder_layer", build_encoder_layer, dict(symbols), "attention"),
    ]


def _load_cloudsc():
    """The Sec. 6.4 synthetic cloud-microphysics scheme (default scale)."""
    from repro.workloads.npbench.suite import KernelSpec

    config = CloudscConfig()
    return [
        KernelSpec("cloudsc", lambda: build_cloudsc(config), dict(config.symbols), "climate")
    ]


register_workload_suite("npbench", _load_npbench)
register_workload_suite("bert", _load_bert)
register_workload_suite("cloudsc", _load_cloudsc)
