"""Workload programs used by the paper's case studies.

Every application the evaluation touches is rebuilt on the dataflow IR:

* :mod:`repro.workloads.matmul_chain` -- the Fig. 2 running example,
* :mod:`repro.workloads.bert_encoder` -- the BERT multi-head-attention loop
  nests of Sec. 6.1 / Fig. 5,
* :mod:`repro.workloads.sddmm` -- the sampled dense-dense matrix
  multiplication at the core of Vanilla Attention (Sec. 6.2 / Fig. 6),
* :mod:`repro.workloads.npbench` -- a mini NPBench-style kernel suite for the
  transformation sweep of Sec. 6.3 / Table 2,
* :mod:`repro.workloads.cloudsc` -- a synthetic cloud-microphysics scheme
  standing in for ECMWF CLOUDSC (Sec. 6.4).
"""

from repro.workloads.bert_encoder import (
    BERT_LARGE,
    BERT_TINY,
    build_attention_scores,
    build_encoder_layer,
)
from repro.workloads.cloudsc import CloudscConfig, build_cloudsc
from repro.workloads.matmul_chain import build_matmul_chain, reference_matmul_chain
from repro.workloads.sddmm import build_sddmm, reference_sddmm

__all__ = [
    "build_matmul_chain",
    "reference_matmul_chain",
    "build_attention_scores",
    "build_encoder_layer",
    "BERT_LARGE",
    "BERT_TINY",
    "build_sddmm",
    "reference_sddmm",
    "build_cloudsc",
    "CloudscConfig",
]
