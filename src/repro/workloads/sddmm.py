"""Sampled dense-dense matrix multiplication (SDDMM), the Vanilla-Attention
kernel of Sec. 6.2 / Fig. 6.

``out[i, j] = S[i, j] * sum_k A[i, k] * B[k, j]``

The local (per-rank) kernel is a dataflow program; the distributed variant
lives in :mod:`repro.distributed.vanilla_attention` and feeds the local
kernel with data received through (simulated) collectives.  Because the
communication is not part of the kernel's dataflow, a cutout of the SDDMM can
be tested on a single rank -- which is exactly the Fig. 6 point.
"""

from __future__ import annotations

import numpy as np

from repro.frontend import add_init
from repro.sdfg import SDFG, Memlet, float64

__all__ = ["build_sddmm", "reference_sddmm"]


def build_sddmm(rows: str = "NR", cols: str = "NC", inner: str = "NK") -> SDFG:
    """Build the SDDMM kernel as a dataflow program.

    ``dense = A @ B`` is computed with a 3D map + sum write-conflict
    resolution into a transient, followed by the element-wise sampling
    multiplication with the (dense-stored) sparsity mask ``S``.
    """
    sdfg = SDFG("sddmm")
    sdfg.add_array("A", [rows, inner], float64)
    sdfg.add_array("B", [inner, cols], float64)
    sdfg.add_array("S", [rows, cols], float64)
    sdfg.add_array("out", [rows, cols], float64)
    sdfg.add_transient("dense", [rows, cols], float64)
    state = sdfg.add_state("sddmm")

    add_init(sdfg, state, "dense", 0.0, label="init_dense")
    _, _, mm_exit = state.add_mapped_tasklet(
        "dense_mm",
        {"i": f"0:{rows}-1", "j": f"0:{cols}-1", "k": f"0:{inner}-1"},
        {"a": Memlet.simple("A", "i, k"), "b": Memlet.simple("B", "k, j")},
        "c = a * b",
        {"c": Memlet("dense", "i, j", wcr="sum")},
    )
    dense_node = next(e.dst for e in state.out_edges(mm_exit))
    state.add_mapped_tasklet(
        "sample",
        {"i": f"0:{rows}-1", "j": f"0:{cols}-1"},
        {"d": Memlet.simple("dense", "i, j"), "s": Memlet.simple("S", "i, j")},
        "o = d * s",
        {"o": Memlet.simple("out", "i, j")},
        input_nodes={"dense": dense_node},
    )
    return sdfg


def reference_sddmm(A: np.ndarray, B: np.ndarray, S: np.ndarray) -> np.ndarray:
    """NumPy reference."""
    return S * (A @ B)
