"""A synthetic cloud-microphysics scheme standing in for ECMWF CLOUDSC.

The Sec. 6.4 case study tests three custom transformations on the CLOUDSC
cloud-microphysics scheme (3,163 lines of Fortran): GPU kernel extraction
(62 applicable instances, 48 semantics-changing), loop unrolling (19
instances, 1 faulty on a negative-step loop) and write elimination (136
instances, 1 removing a live write).  The original Fortran application and
the engineers' transformation code are not available, so this module builds a
*synthetic* scheme with the same structural features at a configurable scale:

* a column/level-structured set of physics kernels (vertical loop nests over
  ``NPROMA`` columns and ``NLEV`` levels) -- the GPU-extraction targets; a
  configurable fraction of them writes only a sub-range of levels, which is
  the situation the buggy device-copy handling corrupts;
* small constant-bound sub-stepping loops, one of which iterates downwards
  (the pattern the buggy unroller mishandles);
* per-process saturation/adjustment tasklet chains through temporaries --
  the write-elimination targets -- one of which is read again by a later
  diagnostic state (the live write the buggy elimination removes).

Scaled to ``CloudscConfig.paper_scale()`` the instance counts match the
paper (62 / 19 / 136); the default configuration is a smaller but
structurally identical scheme for tests and quick benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sdfg import SDFG, InterstateEdge, Memlet, float64

__all__ = ["CloudscConfig", "build_cloudsc"]


@dataclass
class CloudscConfig:
    """Scale parameters of the synthetic scheme."""

    #: Number of column/level physics kernels (GPU-extraction targets).
    num_kernels: int = 10
    #: Fraction of kernels that update only the lower half of the levels.
    partial_write_fraction: float = 0.77
    #: Number of constant-bound sub-stepping loops (unrolling targets).
    num_substep_loops: int = 4
    #: Index of the loop that iterates downwards (negative step); -1 for none.
    descending_loop_index: int = 0
    #: Number of saturation-adjustment tasklet chains (write-elimination targets).
    num_adjustment_chains: int = 12
    #: Indices of chains whose temporary is read again by a later diagnostic.
    live_chain_indices: Tuple[int, ...] = (3,)
    #: Default symbol values (columns per block and vertical levels).
    nproma: int = 4
    nlev: int = 6

    @classmethod
    def paper_scale(cls) -> "CloudscConfig":
        """The instance counts reported in Sec. 6.4 (62 / 19 / 136)."""
        return cls(
            num_kernels=62,
            partial_write_fraction=48 / 62,
            num_substep_loops=19,
            descending_loop_index=7,
            num_adjustment_chains=136,
            live_chain_indices=(41,),
            nproma=4,
            nlev=6,
        )

    @property
    def symbols(self) -> Dict[str, int]:
        return {"NPROMA": self.nproma, "NLEV": self.nlev}

    def num_partial_kernels(self) -> int:
        return round(self.num_kernels * self.partial_write_fraction)


def build_cloudsc(config: CloudscConfig | None = None) -> SDFG:
    """Build the synthetic cloud-microphysics scheme."""
    cfg = config or CloudscConfig()
    sdfg = SDFG("cloudsc_synthetic")

    # Prognostic fields (column x level).
    sdfg.add_array("temperature", ["NPROMA", "NLEV"], float64)
    sdfg.add_array("humidity", ["NPROMA", "NLEV"], float64)
    sdfg.add_array("cloud_fraction", ["NPROMA", "NLEV"], float64)

    prev_state = None

    def chain_state(label: str):
        nonlocal prev_state
        state = sdfg.add_state(label, is_start_state=prev_state is None)
        if prev_state is not None:
            sdfg.add_edge(prev_state, state, InterstateEdge())
        prev_state = state
        return state

    # ------------------------------------------------------------------ #
    # 1. Column/level physics kernels (GPU-extraction targets).
    # ------------------------------------------------------------------ #
    num_partial = cfg.num_partial_kernels()
    for k in range(cfg.num_kernels):
        out_name = f"flux_{k}"
        sdfg.add_array(out_name, ["NPROMA", "NLEV"], float64)
        src = "temperature" if k % 2 == 0 else "humidity"
        state = chain_state(f"kernel_{k}")
        partial = k < num_partial
        level_range = "0:(NLEV//2)-1" if partial else "0:NLEV-1"
        state.add_mapped_tasklet(
            f"physics_kernel_{k}",
            {"jl": "0:NPROMA-1", "jk": level_range},
            {"t": Memlet.simple(src, "jl, jk")},
            f"f = t * {0.5 + 0.01 * k} + {0.1 * (k % 7)}",
            {"f": Memlet.simple(out_name, "jl, jk")},
        )

    # ------------------------------------------------------------------ #
    # 2. Constant-bound sub-stepping loops (unrolling targets).
    # ------------------------------------------------------------------ #
    for l in range(cfg.num_substep_loops):
        acc_name = f"substep_acc_{l}"
        sdfg.add_array(acc_name, [1], float64)
        before = chain_state(f"substep_{l}_before")
        body = sdfg.add_state(f"substep_{l}_body")
        t = body.add_tasklet("substep", ["a"], ["b"], "b = a + jn * 0.25")
        rd, wr = body.add_access(acc_name), body.add_access(acc_name)
        body.add_edge(rd, None, t, "a", Memlet.simple(acc_name, "0"))
        body.add_edge(t, "b", wr, None, Memlet.simple(acc_name, "0"))
        after = sdfg.add_state(f"substep_{l}_after")
        if l == cfg.descending_loop_index:
            sdfg.add_loop(before, body, after, "jn", "4", "jn >= 1", "jn - 1")
        else:
            sdfg.add_loop(before, body, after, "jn", "1", "jn <= 4", "jn + 1")
        prev_state = after

    # ------------------------------------------------------------------ #
    # 3. Saturation-adjustment tasklet chains (write-elimination targets).
    # ------------------------------------------------------------------ #
    live_temps: List[str] = []
    for c in range(cfg.num_adjustment_chains):
        tmp_name = f"sat_tmp_{c}"
        out_name = f"adjust_{c}"
        sdfg.add_transient(tmp_name, [1], float64)
        sdfg.add_array(out_name, [1], float64)
        state = chain_state(f"adjust_{c}")
        rd_t = state.add_access("temperature")
        rd_q = state.add_access("humidity")
        tmp_node = state.add_access(tmp_name)
        out_node = state.add_access(out_name)
        t1 = state.add_tasklet(
            f"saturation_{c}", ["t"], ["s"], f"s = t * {1.0 + 0.02 * (c % 9)}"
        )
        t2 = state.add_tasklet(
            f"adjustment_{c}", ["s", "q"], ["o"], "o = s - q * 0.5"
        )
        state.add_edge(rd_t, None, t1, "t", Memlet.simple("temperature", "0, 0"))
        state.add_edge(t1, "s", tmp_node, None, Memlet.simple(tmp_name, "0"))
        state.add_edge(tmp_node, None, t2, "s", Memlet.simple(tmp_name, "0"))
        state.add_edge(rd_q, None, t2, "q", Memlet.simple("humidity", "0, 0"))
        state.add_edge(t2, "o", out_node, None, Memlet.simple(out_name, "0"))
        if c in cfg.live_chain_indices:
            live_temps.append(tmp_name)

    # A later diagnostic state re-reads the "live" temporaries, making their
    # intermediate writes part of the system state of any cutout around them.
    if live_temps:
        diag = chain_state("diagnostics")
        for i, tmp_name in enumerate(live_temps):
            diag_out = f"diag_{i}"
            sdfg.add_array(diag_out, [1], float64)
            rd = diag.add_access(tmp_name)
            wr = diag.add_access(diag_out)
            t = diag.add_tasklet(f"diagnose_{i}", ["x"], ["y"], "y = x * 2.0")
            diag.add_edge(rd, None, t, "x", Memlet.simple(tmp_name, "0"))
            diag.add_edge(t, "y", wr, None, Memlet.simple(diag_out, "0"))

    # Final cloud-fraction update reading a couple of fluxes, so the kernel
    # outputs remain live beyond their defining states.
    final = chain_state("cloud_fraction_update")
    flux0 = final.add_access("flux_0")
    cf = final.add_access("cloud_fraction")
    t = final.add_tasklet("cf_update", ["f"], ["c"], "c = 1.0 - np.exp(-abs(f))")
    final.add_edge(flux0, None, t, "f", Memlet.full("flux_0", ["NPROMA", "NLEV"]))
    final.add_edge(t, "c", cf, None, Memlet.full("cloud_fraction", ["NPROMA", "NLEV"]))

    return sdfg
