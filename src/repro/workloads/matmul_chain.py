"""The matrix-chain multiplication of Fig. 2: ``R = ((A @ B) @ C) @ D``.

Each multiplication is a three-dimensional map with a ``sum`` write-conflict
resolution, i.e. exactly the loop-nest structure whose tiling the paper's
running example breaks with an off-by-one bound.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.frontend import add_matmul
from repro.sdfg import SDFG, float64

__all__ = ["build_matmul_chain", "reference_matmul_chain"]


def build_matmul_chain(size_symbol: str = "N") -> SDFG:
    """Build ``R = ((A @ B) @ C) @ D`` with four ``N x N`` input matrices.

    ``U`` and ``V`` are the transient intermediates of the first and second
    multiplications (the second one, producing ``V``, is the sub-program the
    paper extracts as a cutout).
    """
    sdfg = SDFG("matmul_chain")
    for name in ("A", "B", "C", "D", "R"):
        sdfg.add_array(name, [size_symbol, size_symbol], float64)
    sdfg.add_transient("U", [size_symbol, size_symbol], float64)
    sdfg.add_transient("V", [size_symbol, size_symbol], float64)
    state = sdfg.add_state("chain")
    add_matmul(sdfg, state, "A", "B", "U", label="mm1")
    add_matmul(sdfg, state, "U", "C", "V", label="mm2")
    add_matmul(sdfg, state, "V", "D", "R", label="mm3")
    return sdfg


def reference_matmul_chain(
    A: np.ndarray, B: np.ndarray, C: np.ndarray, D: np.ndarray
) -> np.ndarray:
    """NumPy reference for the matrix chain."""
    return ((A @ B) @ C) @ D
