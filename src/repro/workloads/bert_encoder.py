"""BERT encoder multi-head attention (Sec. 6.1 / Fig. 5).

The case study optimizes the element-wise loop nests of the multi-head
attention (MHA) with DaCe's vectorization transformation; the Fig. 5 walk
through extracts the loop nest that scales the attention-score tensor ``tmp``
and shows how the minimum input-flow cut swaps the large ``tmp`` input for
the two smaller matmul operands.

Two builders are provided:

* :func:`build_attention_scores` -- the minimal Fig. 5 structure: the batched
  ``Q @ K^T`` matmul producing ``tmp`` followed by the scaling loop nest,
* :func:`build_encoder_layer` -- a fuller encoder-layer forward pass (QKV
  projections, scores, scaling, softmax, context matmul, output projection,
  bias adds) providing many vectorizable loop-nest instances.

``BERT_LARGE`` matches the paper's model configuration (B=8, H=16, SM=512,
P=64, N=1024, emb=4096); ``BERT_TINY`` is a laptop-friendly configuration
with the same shape relationships, used by tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.frontend import add_batched_matmul, add_bias_add, add_scale, add_softmax_lastdim
from repro.sdfg import SDFG, Memlet, float64

__all__ = [
    "BERT_LARGE",
    "BERT_TINY",
    "build_attention_scores",
    "build_encoder_layer",
    "reference_attention_scores",
]

#: The BERT-large configuration used in the paper (Sec. 6.1).
BERT_LARGE: Dict[str, int] = {"B": 8, "H": 16, "SM": 512, "P": 64, "N": 1024, "emb": 4096}

#: A scaled-down configuration with identical shape relationships
#: (SM >> P, so the Fig. 5 input-space reduction still applies).
BERT_TINY: Dict[str, int] = {"B": 2, "H": 2, "SM": 16, "P": 4, "N": 8, "emb": 16}


def build_attention_scores() -> SDFG:
    """Attention-score computation: ``tmp = Q @ K^T``, ``att = tmp * scale``.

    ``Q`` has shape (B, H, SM, P) and ``K_t`` (B, H, P, SM); the score tensor
    ``tmp`` has shape (B, H, SM, SM) and is transient.  The scaling loop nest
    over ``tmp`` is the vectorization target of Fig. 5.
    """
    sdfg = SDFG("bert_attention_scores")
    sdfg.add_array("Q", ["B", "H", "SM", "P"], float64)
    sdfg.add_array("K_t", ["B", "H", "P", "SM"], float64)
    sdfg.add_transient("tmp", ["B", "H", "SM", "SM"], float64)
    sdfg.add_array("att", ["B", "H", "SM", "SM"], float64)
    sdfg.add_scalar("scale", float64)
    state = sdfg.add_state("mha_scores")
    add_batched_matmul(sdfg, state, "Q", "K_t", "tmp", label="qk_matmul")
    tmp_node = [n for n in state.data_nodes() if n.data == "tmp"][0]
    state.add_mapped_tasklet(
        "scale_tmp",
        {"b": "0:B-1", "h": "0:H-1", "i": "0:SM-1", "j": "0:SM-1"},
        {"in_val": Memlet.simple("tmp", "b, h, i, j"), "s": Memlet.simple("scale", "0")},
        "out_val = in_val * s",
        {"out_val": Memlet.simple("att", "b, h, i, j")},
        input_nodes={"tmp": tmp_node},
    )
    return sdfg


def build_encoder_layer() -> SDFG:
    """A fuller MHA forward pass with several vectorizable loop nests.

    Structure (all heavy matmuls are coarse block tasklets, all element-wise
    steps are map loop nests so the vectorization sweep has targets):

    1. ``Q = X @ Wq``, ``K = X @ Wk``, ``V = X @ Wv``  (projections)
    2. bias adds on Q, K, V  (element-wise loop nests)
    3. ``scores = Q @ K^T`` per (batch, head)
    4. scaling of the scores  (element-wise loop nest)
    5. softmax over the last dimension
    6. ``context = probs @ V``
    7. output projection + bias  (matmul + element-wise loop nest)
    """
    sdfg = SDFG("bert_encoder_layer")
    # Projections operate on (B, H, SM, P) tensors directly to keep the
    # dataflow close to the loop nests the paper optimizes.
    sdfg.add_array("X", ["B", "H", "SM", "P"], float64)
    sdfg.add_array("Wq", ["P", "P"], float64)
    sdfg.add_array("Wk", ["P", "P"], float64)
    sdfg.add_array("Wv", ["P", "P"], float64)
    sdfg.add_array("Wo", ["P", "P"], float64)
    sdfg.add_array("bq", ["P"], float64)
    sdfg.add_array("bk", ["P"], float64)
    sdfg.add_array("bv", ["P"], float64)
    sdfg.add_array("bo", ["P"], float64)
    sdfg.add_scalar("scale", float64)
    for name in ("Q", "K", "V", "Qb", "Kb", "Vb", "scores", "scaled", "probs",
                 "context", "proj"):
        shape = (
            ["B", "H", "SM", "SM"] if name in ("scores", "scaled", "probs")
            else ["B", "H", "SM", "P"]
        )
        sdfg.add_transient(name, shape, float64)
    sdfg.add_array("out", ["B", "H", "SM", "P"], float64)

    state = sdfg.add_state("encoder")

    def node_of(data):
        nodes = [n for n in state.data_nodes() if n.data == data]
        return nodes[-1] if nodes else state.add_access(data)

    # 1. Projections.
    add_batched_matmul(sdfg, state, "X", "Wq", "Q", label="proj_q")
    add_batched_matmul(sdfg, state, "X", "Wk", "K", label="proj_k")
    add_batched_matmul(sdfg, state, "X", "Wv", "V", label="proj_v")

    # 2. Bias adds (element-wise loop nests -> vectorization targets).
    for src, bias, dst in (("Q", "bq", "Qb"), ("K", "bk", "Kb"), ("V", "bv", "Vb")):
        src_node = node_of(src)
        state.add_mapped_tasklet(
            f"bias_{dst}",
            {"b": "0:B-1", "h": "0:H-1", "i": "0:SM-1", "j": "0:P-1"},
            {"in_val": Memlet.simple(src, "b, h, i, j"),
             "b_val": Memlet.simple(bias, "j")},
            "out_val = in_val + b_val",
            {"out_val": Memlet.simple(dst, "b, h, i, j")},
            input_nodes={src: src_node},
        )

    # 3. Attention scores: Qb @ Kb^T via a transposition block tasklet.
    qb, kb = node_of("Qb"), node_of("Kb")
    scores = state.add_access("scores")
    t = state.add_tasklet("qk_scores", ["q", "k"], ["s_out"],
                          "s_out = np.matmul(q, np.swapaxes(k, -1, -2))")
    state.add_edge(qb, None, t, "q", Memlet.full("Qb", ["B", "H", "SM", "P"]))
    state.add_edge(kb, None, t, "k", Memlet.full("Kb", ["B", "H", "SM", "P"]))
    state.add_edge(t, "s_out", scores, None, Memlet.full("scores", ["B", "H", "SM", "SM"]))

    # 4. Scaling loop nest (the Fig. 5 cutout target).
    state.add_mapped_tasklet(
        "scale_scores",
        {"b": "0:B-1", "h": "0:H-1", "i": "0:SM-1", "j": "0:SM-1"},
        {"in_val": Memlet.simple("scores", "b, h, i, j"),
         "s": Memlet.simple("scale", "0")},
        "out_val = in_val * s",
        {"out_val": Memlet.simple("scaled", "b, h, i, j")},
        input_nodes={"scores": scores},
    )

    # 5. Softmax.
    scaled_node = node_of("scaled")
    probs = state.add_access("probs")
    sm = state.add_tasklet(
        "softmax", ["x"], ["y"],
        "m = np.max(x, axis=-1, keepdims=True)\n"
        "e = np.exp(x - m)\n"
        "y = e / np.sum(e, axis=-1, keepdims=True)",
    )
    state.add_edge(scaled_node, None, sm, "x", Memlet.full("scaled", ["B", "H", "SM", "SM"]))
    state.add_edge(sm, "y", probs, None, Memlet.full("probs", ["B", "H", "SM", "SM"]))

    # 6. Context.
    vb = node_of("Vb")
    context = state.add_access("context")
    ctx = state.add_tasklet("context_mm", ["p", "v"], ["c"], "c = np.matmul(p, v)")
    state.add_edge(probs, None, ctx, "p", Memlet.full("probs", ["B", "H", "SM", "SM"]))
    state.add_edge(vb, None, ctx, "v", Memlet.full("Vb", ["B", "H", "SM", "P"]))
    state.add_edge(ctx, "c", context, None, Memlet.full("context", ["B", "H", "SM", "P"]))

    # 7. Output projection + bias.
    add_batched_matmul(sdfg, state, "context", "Wo", "proj", label="proj_out")
    proj_node = node_of("proj")
    state.add_mapped_tasklet(
        "bias_out",
        {"b": "0:B-1", "h": "0:H-1", "i": "0:SM-1", "j": "0:P-1"},
        {"in_val": Memlet.simple("proj", "b, h, i, j"),
         "b_val": Memlet.simple("bo", "j")},
        "out_val = in_val + b_val",
        {"out_val": Memlet.simple("out", "b, h, i, j")},
        input_nodes={"proj": proj_node},
    )
    return sdfg


def reference_attention_scores(Q: np.ndarray, K_t: np.ndarray, scale: float) -> np.ndarray:
    """NumPy reference for :func:`build_attention_scores`."""
    return np.matmul(Q, K_t) * scale
