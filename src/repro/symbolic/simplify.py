"""Simplification of symbolic expressions.

The builders in :mod:`repro.symbolic.expressions` already perform constant
folding and neutral-element removal.  :func:`simplify` adds a couple of
rewrites that are useful when composing subsets and volumes:

* collecting like terms in sums (``i + i`` -> ``2 * i``),
* rebuilding every node bottom-up so nested constants fold through,
* cancelling ``x * c // c`` for integer constants ``c``.

The goal is readability of derived expressions and cheaper evaluation, not a
complete computer-algebra system.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.symbolic.expressions import (
    Add,
    Expr,
    Float,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Pow,
    Symbol,
    TrueDiv,
    sympify,
)

__all__ = ["simplify"]


def simplify(expr) -> Expr:
    """Return a simplified copy of ``expr``."""
    return _simplify(sympify(expr))


def _simplify(expr: Expr) -> Expr:
    if isinstance(expr, (Integer, Float, Symbol)):
        return expr
    if isinstance(expr, Add):
        return _simplify_add(expr)
    if isinstance(expr, Mul):
        return Mul.make(*[_simplify(a) for a in expr.args])
    if isinstance(expr, Min):
        return Min.make(*[_simplify(a) for a in expr.args])
    if isinstance(expr, Max):
        return Max.make(*[_simplify(a) for a in expr.args])
    if isinstance(expr, FloorDiv):
        return _simplify_floordiv(expr)
    if isinstance(expr, TrueDiv):
        return TrueDiv.make(_simplify(expr.lhs), _simplify(expr.rhs))
    if isinstance(expr, Mod):
        return Mod.make(_simplify(expr.lhs), _simplify(expr.rhs))
    if isinstance(expr, Pow):
        return Pow.make(_simplify(expr.lhs), _simplify(expr.rhs))
    return expr


def _split_coefficient(term: Expr) -> Tuple[int, Expr]:
    """Split a term into ``(integer coefficient, remaining factor)``."""
    if isinstance(term, Integer):
        return term.value, Integer(1)
    if isinstance(term, Mul):
        coeff = 1
        rest = []
        for f in term.args:
            if isinstance(f, Integer):
                coeff *= f.value
            else:
                rest.append(f)
        if not rest:
            return coeff, Integer(1)
        if len(rest) == 1:
            return coeff, rest[0]
        return coeff, Mul(rest)
    return 1, term


def _simplify_add(expr: Add) -> Expr:
    terms = [_simplify(a) for a in expr.args]
    # Re-flatten through Add.make first (folds nested constants).
    flat = Add.make(*terms)
    if not isinstance(flat, Add):
        return flat
    # Collect like terms by their non-constant factor.
    buckets: Dict[Expr, int] = {}
    const = 0
    order: list[Expr] = []
    for term in flat.args:
        if isinstance(term, (Integer, Float)):
            const += term.value
            continue
        coeff, base = _split_coefficient(term)
        if base not in buckets:
            buckets[base] = 0
            order.append(base)
        buckets[base] += coeff
    rebuilt = []
    for base in order:
        coeff = buckets[base]
        if coeff == 0:
            continue
        if base == Integer(1):
            const += coeff
            continue
        if coeff == 1:
            rebuilt.append(base)
        else:
            rebuilt.append(Mul.make(Integer(coeff), base))
    if const != 0 or not rebuilt:
        rebuilt.append(sympify(const))
    if len(rebuilt) == 1:
        return rebuilt[0]
    return Add(rebuilt)


def _simplify_floordiv(expr: FloorDiv) -> Expr:
    lhs = _simplify(expr.lhs)
    rhs = _simplify(expr.rhs)
    # (c * x) // c  ->  x  when c is a positive integer constant factor.
    if isinstance(rhs, Integer) and rhs.value > 0 and isinstance(lhs, Mul):
        coeff, base = _split_coefficient(lhs)
        if coeff % rhs.value == 0:
            return Mul.make(Integer(coeff // rhs.value), base)
    return FloorDiv.make(lhs, rhs)
