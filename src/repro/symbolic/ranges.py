"""Symbolic ranges and multi-dimensional subsets.

Every data-movement edge (memlet) in the parametric dataflow IR carries a
:class:`Subset` describing *exactly* which part of a data container is read or
written.  Subsets are lists of per-dimension :class:`Range` objects with
symbolic (or constant) begin/end/step, where the end is **inclusive** -- the
same convention DaCe uses, so ``0:N-1`` covers a dimension of size ``N``.

Subsets support the operations FuzzyFlow's analyses need:

* :meth:`Subset.num_elements` -- symbolic data volume,
* :meth:`Subset.intersects` -- overlap test (concrete when symbol values are
  known, conservatively ``True`` otherwise),
* :meth:`Subset.covers` -- containment test,
* :meth:`Subset.bounding_box_union` -- used when shrinking cutout containers
  to the accessed region,
* :meth:`Subset.offset_by` -- re-basing accesses after containers are shrunk.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.symbolic.expressions import (
    Add,
    Expr,
    Integer,
    Max,
    Min,
    Mul,
    sympify,
)
from repro.symbolic.simplify import simplify

Number = Union[int, float]
ExprLike = Union[Expr, int, str]

__all__ = ["Range", "Subset", "Indices"]


class Range:
    """A one-dimensional range ``begin:end:step`` with an inclusive end."""

    __slots__ = ("begin", "end", "step")

    def __init__(self, begin: ExprLike, end: ExprLike, step: ExprLike = 1) -> None:
        self.begin = sympify(begin)
        self.end = sympify(end)
        self.step = sympify(step)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, text: str) -> "Range":
        """Parse ``"b:e"``, ``"b:e:s"`` or a single index ``"i"``."""
        parts = [p.strip() for p in text.split(":")]
        if len(parts) == 1:
            return cls(parts[0], parts[0], 1)
        if len(parts) == 2:
            return cls(parts[0], parts[1], 1)
        if len(parts) == 3:
            return cls(parts[0], parts[1], parts[2])
        raise ValueError(f"Cannot parse range string {text!r}")

    @classmethod
    def full(cls, size: ExprLike) -> "Range":
        """The range covering a whole dimension of the given size."""
        return cls(0, sympify(size) - 1, 1)

    # ------------------------------------------------------------------ #
    @property
    def free_symbols(self) -> set:
        return self.begin.free_symbols | self.end.free_symbols | self.step.free_symbols

    def num_elements(self) -> Expr:
        """Number of elements covered (symbolic)."""
        return simplify((self.end - self.begin) // self.step + 1)

    def is_point(self) -> bool:
        """True if this range statically covers a single index."""
        return self.begin == self.end

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Tuple[int, int, int]:
        """Concrete ``(begin, end, step)`` triple."""
        return (
            int(self.begin.evaluate(bindings)),
            int(self.end.evaluate(bindings)),
            int(self.step.evaluate(bindings)),
        )

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Range":
        return Range(
            self.begin.subs(mapping), self.end.subs(mapping), self.step.subs(mapping)
        )

    def offset_by(self, origin: ExprLike) -> "Range":
        """Shift the range so that ``origin`` becomes index 0."""
        o = sympify(origin)
        return Range(simplify(self.begin - o), simplify(self.end - o), self.step)

    # ------------------------------------------------------------------ #
    def intersects(
        self, other: "Range", bindings: Mapping[str, Number] | None = None
    ) -> bool:
        """Whether the two ranges may overlap.

        With ``bindings`` the check is exact on the interval hulls; without,
        it falls back to a conservative ``True`` whenever either bound cannot
        be evaluated (FuzzyFlow errs on the side of including data in the
        system state / input configuration).
        """
        try:
            b0, e0, _ = self.evaluate(bindings)
            b1, e1, _ = other.evaluate(bindings)
        except KeyError:
            return True
        lo0, hi0 = min(b0, e0), max(b0, e0)
        lo1, hi1 = min(b1, e1), max(b1, e1)
        return not (hi0 < lo1 or hi1 < lo0)

    def covers(
        self, other: "Range", bindings: Mapping[str, Number] | None = None
    ) -> bool:
        """Whether this range fully contains ``other`` (interval hulls)."""
        try:
            b0, e0, _ = self.evaluate(bindings)
            b1, e1, _ = other.evaluate(bindings)
        except KeyError:
            # Without concrete values only structural equality is certain.
            return self.begin == other.begin and self.end == other.end
        lo0, hi0 = min(b0, e0), max(b0, e0)
        lo1, hi1 = min(b1, e1), max(b1, e1)
        return lo0 <= lo1 and hi1 <= hi0

    def union_hull(self, other: "Range") -> "Range":
        """Symbolic bounding hull of the two ranges (step collapses to 1)."""
        return Range(
            simplify(Min.make(self.begin, other.begin)),
            simplify(Max.make(self.end, other.end)),
            1,
        )

    def indices(self, bindings: Mapping[str, Number] | None = None) -> range:
        """Concrete Python ``range`` of covered indices."""
        b, e, s = self.evaluate(bindings)
        if s > 0:
            return range(b, e + 1, s)
        return range(b, e - 1, s)

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Range)
            and self.begin == other.begin
            and self.end == other.end
            and self.step == other.step
        )

    def __hash__(self) -> int:
        return hash(("Range", self.begin, self.end, self.step))

    def __str__(self) -> str:
        if self.is_point():
            return str(self.begin)
        if self.step == Integer(1):
            return f"{self.begin}:{self.end}"
        return f"{self.begin}:{self.end}:{self.step}"

    def __repr__(self) -> str:
        return f"Range({self})"


class Subset:
    """A multi-dimensional subset: one :class:`Range` per dimension."""

    __slots__ = ("ranges",)

    def __init__(self, ranges: Sequence[Union[Range, ExprLike, Tuple]] ) -> None:
        converted: List[Range] = []
        for r in ranges:
            if isinstance(r, Range):
                converted.append(r)
            elif isinstance(r, tuple):
                converted.append(Range(*r))
            else:
                e = sympify(r)
                converted.append(Range(e, e, 1))
        self.ranges = tuple(converted)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, text: str) -> "Subset":
        """Parse a subset string like ``"i, 0:N-1, 2:9:2"``.

        Dimensions are separated by top-level commas; commas inside
        parentheses (e.g. ``Min(i + 3, N - 1)``) do not split dimensions.
        """
        parts: List[str] = []
        depth = 0
        current = []
        for ch in text:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        if current:
            parts.append("".join(current).strip())
        parts = [p for p in parts if p]
        if not parts:
            raise ValueError(f"Cannot parse subset string {text!r}")
        return cls([Range.from_string(p) for p in parts])

    @classmethod
    def full(cls, shape: Sequence[ExprLike]) -> "Subset":
        """The subset covering an entire container of the given shape."""
        return cls([Range.full(s) for s in shape])

    @classmethod
    def point(cls, indices: Sequence[ExprLike]) -> "Subset":
        """A single-element subset at the given indices."""
        return cls([Range(i, i, 1) for i in indices])

    # ------------------------------------------------------------------ #
    @property
    def dims(self) -> int:
        return len(self.ranges)

    @property
    def free_symbols(self) -> set:
        out: set = set()
        for r in self.ranges:
            out |= r.free_symbols
        return out

    def num_elements(self) -> Expr:
        """Total number of elements covered (symbolic)."""
        if not self.ranges:
            return Integer(1)
        total: Expr = Integer(1)
        for r in self.ranges:
            total = Mul.make(total, r.num_elements())
        return simplify(total)

    def is_point(self) -> bool:
        return all(r.is_point() for r in self.ranges)

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Subset":
        return Subset([r.subs(mapping) for r in self.ranges])

    def offset_by(self, origin: Sequence[ExprLike]) -> "Subset":
        """Re-base the subset so that ``origin`` becomes the zero index."""
        if len(origin) != self.dims:
            raise ValueError(
                f"Origin has {len(origin)} dimensions, subset has {self.dims}"
            )
        return Subset([r.offset_by(o) for r, o in zip(self.ranges, origin)])

    def min_element(self) -> List[Expr]:
        """Per-dimension lower bound."""
        return [r.begin for r in self.ranges]

    def max_element(self) -> List[Expr]:
        """Per-dimension upper bound (inclusive)."""
        return [r.end for r in self.ranges]

    def size(self) -> List[Expr]:
        """Per-dimension number of elements."""
        return [r.num_elements() for r in self.ranges]

    # ------------------------------------------------------------------ #
    def intersects(
        self, other: "Subset", bindings: Mapping[str, Number] | None = None
    ) -> bool:
        """Whether the two subsets may overlap (conservative without bindings)."""
        if self.dims != other.dims:
            # Mismatched dimensionality (e.g. reshaped views): be conservative.
            return True
        return all(
            a.intersects(b, bindings) for a, b in zip(self.ranges, other.ranges)
        )

    def covers(
        self, other: "Subset", bindings: Mapping[str, Number] | None = None
    ) -> bool:
        """Whether this subset fully contains ``other``."""
        if self.dims != other.dims:
            return False
        return all(a.covers(b, bindings) for a, b in zip(self.ranges, other.ranges))

    def bounding_box_union(self, other: "Subset") -> "Subset":
        """Symbolic bounding box covering both subsets."""
        if self.dims != other.dims:
            raise ValueError(
                f"Cannot union subsets of different dimensionality "
                f"({self.dims} vs {other.dims})"
            )
        return Subset([a.union_hull(b) for a, b in zip(self.ranges, other.ranges)])

    def evaluate(
        self, bindings: Mapping[str, Number] | None = None
    ) -> List[Tuple[int, int, int]]:
        """Concrete per-dimension ``(begin, end, step)`` triples."""
        return [r.evaluate(bindings) for r in self.ranges]

    def as_slices(
        self, bindings: Mapping[str, Number] | None = None
    ) -> Tuple[slice, ...]:
        """Concrete NumPy slices (end exclusive) for indexing arrays."""
        slices = []
        for b, e, s in self.evaluate(bindings):
            if s > 0:
                slices.append(slice(b, e + 1, s))
            else:
                stop = e - 1
                slices.append(slice(b, None if stop < 0 else stop, s))
        return tuple(slices)

    def volume_at(self, bindings: Mapping[str, Number] | None = None) -> int:
        """Concrete number of elements covered."""
        return int(self.num_elements().evaluate(bindings))

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Subset) and self.ranges == other.ranges

    def __hash__(self) -> int:
        return hash(("Subset", self.ranges))

    def __str__(self) -> str:
        return ", ".join(str(r) for r in self.ranges)

    def __repr__(self) -> str:
        return f"Subset[{self}]"

    def __iter__(self):
        return iter(self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)

    def __getitem__(self, idx: int) -> Range:
        return self.ranges[idx]


class Indices(Subset):
    """A convenience subset describing a single point access ``A[i, j]``."""

    def __init__(self, indices: Sequence[ExprLike]) -> None:
        super().__init__([Range(sympify(i), sympify(i), 1) for i in indices])

    @property
    def index_expressions(self) -> List[Expr]:
        return [r.begin for r in self.ranges]
