"""Python-source emission for interstate control-flow expressions.

The compiled whole-program backend (:mod:`repro.backends.compiled`) lowers
interstate edge conditions and symbol assignments to *inline* Python
expressions inside one generated driver function, instead of re-``eval``-ing
them against a freshly built namespace on every state transition (the
interpreter's behaviour, and the dominant cost of loop-nest programs).

The sole transformation is name routing.  The interpreter evaluates these
expressions with ``eval(code, _EVAL_GLOBALS, ns)`` where ``ns`` holds the
program symbols with scalar containers shadowing same-named symbols
(:meth:`repro.interpreter.executor.SDFGExecutor._interstate_namespace`).
The emitted source reproduces that lookup order statically:

* a name bound to a scalar container becomes ``__store['name'][0]``
  (scalars shadow symbols, mirroring the namespace construction order),
* a name in the interstate evaluation vocabulary (``min``/``max``/``abs``/
  ... -- the interpreter's ``_EVAL_GLOBALS``) becomes
  ``__sym['name'] if 'name' in __sym else name``: ``eval`` resolves locals
  before globals, so a program symbol may shadow the builtin,
* a name in ``hoisted_names`` becomes that plain local -- the compiled
  driver binds loop-invariant symbols to locals before entering a loop, and
  the caller guarantees the name is present and unassigned for the binding's
  whole lifetime,
* every other name becomes ``__sym['name']`` -- symbols, loop counters,
  and anything unknown, whose ``KeyError`` the driver wraps into the same
  :class:`~repro.interpreter.errors.ExecutionError` the interpreter raises
  for a ``NameError``.

Only name *loads* are rewritten; the expression language has no stores.
"""

from __future__ import annotations

import ast
from typing import AbstractSet, FrozenSet, Mapping, Optional

__all__ = [
    "ExpressionCodegenError",
    "INTERSTATE_GLOBAL_NAMES",
    "emit_interstate_expression",
    "expression_names",
]

#: Callable vocabulary of interstate evaluation -- must mirror the name
#: bindings of :data:`repro.interpreter.executor._EVAL_GLOBALS` (``True`` /
#: ``False`` are keywords and never parse as names).  Not imported from the
#: interpreter to keep :mod:`repro.symbolic` dependency-free.
INTERSTATE_GLOBAL_NAMES: FrozenSet[str] = frozenset(
    {"Min", "Max", "min", "max", "abs", "int"}
)


class ExpressionCodegenError(Exception):
    """The expression cannot be lowered to inline Python source."""


class _NameRouter(ast.NodeTransformer):
    """Rewrites name loads to the interpreter's namespace lookup order."""

    def __init__(
        self,
        scalar_names: AbstractSet[str],
        global_names: AbstractSet[str],
        symbols_var: str,
        store_var: str,
        hoisted_names: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.scalar_names = scalar_names
        self.global_names = global_names
        self.symbols_var = symbols_var
        self.store_var = store_var
        self.hoisted_names = dict(hoisted_names or {})

    def _symbol_lookup(self, name: str) -> ast.Subscript:
        return ast.Subscript(
            value=ast.Name(id=self.symbols_var, ctx=ast.Load()),
            slice=ast.Constant(value=name),
            ctx=ast.Load(),
        )

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if not isinstance(node.ctx, ast.Load):
            raise ExpressionCodegenError(
                f"Name '{node.id}' is not a plain load in an expression"
            )
        # Scalar containers shadow same-named symbols, mirroring the
        # interpreter's namespace construction order.
        if node.id in self.scalar_names:
            container = ast.Subscript(
                value=ast.Name(id=self.store_var, ctx=ast.Load()),
                slice=ast.Constant(value=node.id),
                ctx=ast.Load(),
            )
            return ast.Subscript(
                value=container, slice=ast.Constant(value=0), ctx=ast.Load()
            )
        if node.id in self.hoisted_names:
            # A loop-invariant symbol prebound to a driver local; the caller
            # guarantees presence and immutability for the binding's scope.
            return ast.Name(id=self.hoisted_names[node.id], ctx=ast.Load())
        if node.id in self.global_names:
            # eval() resolves locals (the symbol namespace) before globals,
            # so a symbol may shadow the builtin vocabulary at runtime.
            return ast.IfExp(
                test=ast.Compare(
                    left=ast.Constant(value=node.id),
                    ops=[ast.In()],
                    comparators=[ast.Name(id=self.symbols_var, ctx=ast.Load())],
                ),
                body=self._symbol_lookup(node.id),
                orelse=node,
            )
        return self._symbol_lookup(node.id)


def emit_interstate_expression(
    expr: str,
    scalar_names: AbstractSet[str],
    global_names: AbstractSet[str] = INTERSTATE_GLOBAL_NAMES,
    symbols_var: str = "__sym",
    store_var: str = "__store",
    hoisted_names: Optional[Mapping[str, str]] = None,
) -> str:
    """Emit Python source evaluating ``expr`` with routed name lookups.

    ``hoisted_names`` maps symbol names to plain driver locals the caller
    has prebound (loop-invariant hoisting); such names skip the symbol-dict
    lookup.  Raises :class:`ExpressionCodegenError` when the expression does
    not parse as a single Python expression; callers fall back to the
    interpreter's dynamic evaluation path for exact error parity.
    """
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise ExpressionCodegenError(
            f"Cannot parse interstate expression {expr!r}: {exc}"
        ) from exc
    router = _NameRouter(
        scalar_names, global_names, symbols_var, store_var, hoisted_names
    )
    rewritten = ast.fix_missing_locations(router.visit(tree))
    return ast.unparse(rewritten)


def expression_names(expr: str) -> set:
    """All names loaded by a Python expression (via :mod:`ast`).

    Unlike regex-based identifier scraping this never reports attribute
    names, keyword-argument names, ``True``/``False``/``None`` or operator
    keywords (``and``/``or``/``not``/``in``/``if``/``else``).  Raises
    :class:`ExpressionCodegenError` on malformed input.
    """
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise ExpressionCodegenError(
            f"Cannot parse expression {expr!r}: {exc}"
        ) from exc
    return {
        node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
    }
