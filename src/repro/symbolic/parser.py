"""Parse Python-syntax strings into symbolic expressions.

Only the arithmetic subset needed for parametric shapes and subsets is
accepted: integer/float literals, names, ``+ - * / // % **``, unary ``+ -``,
and calls to ``Min``/``Max`` (case-insensitive, also ``min``/``max``).
Anything else raises :class:`ExpressionParseError`.
"""

from __future__ import annotations

import ast
from typing import Union

from repro.symbolic.expressions import (
    Add,
    Expr,
    Float,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Pow,
    Symbol,
    TrueDiv,
)

__all__ = ["parse_expr", "ExpressionParseError"]


class ExpressionParseError(ValueError):
    """Raised when a string cannot be parsed into a symbolic expression."""


_ALLOWED_CALLS = {
    "min": Min,
    "max": Max,
}


def parse_expr(text: Union[str, int, float, Expr]) -> Expr:
    """Parse ``text`` into an :class:`~repro.symbolic.expressions.Expr`."""
    if isinstance(text, Expr):
        return text
    if isinstance(text, bool):
        return Integer(int(text))
    if isinstance(text, int):
        return Integer(text)
    if isinstance(text, float):
        return Integer(int(text)) if text.is_integer() else Float(text)
    if not isinstance(text, str):
        raise ExpressionParseError(f"Cannot parse {text!r} as an expression")
    stripped = text.strip()
    if not stripped:
        raise ExpressionParseError("Empty expression string")
    try:
        tree = ast.parse(stripped, mode="eval")
    except SyntaxError as exc:
        raise ExpressionParseError(f"Invalid expression {text!r}: {exc}") from exc
    return _convert(tree.body, text)


def _convert(node: ast.AST, source: str) -> Expr:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return Integer(int(node.value))
        if isinstance(node.value, int):
            return Integer(node.value)
        if isinstance(node.value, float):
            v = node.value
            return Integer(int(v)) if v.is_integer() else Float(v)
        raise ExpressionParseError(
            f"Unsupported constant {node.value!r} in expression {source!r}"
        )
    if isinstance(node, ast.Name):
        return Symbol(node.id)
    if isinstance(node, ast.UnaryOp):
        operand = _convert(node.operand, source)
        if isinstance(node.op, ast.USub):
            return Mul.make(Integer(-1), operand)
        if isinstance(node.op, ast.UAdd):
            return operand
        raise ExpressionParseError(
            f"Unsupported unary operator in expression {source!r}"
        )
    if isinstance(node, ast.BinOp):
        lhs = _convert(node.left, source)
        rhs = _convert(node.right, source)
        if isinstance(node.op, ast.Add):
            return Add.make(lhs, rhs)
        if isinstance(node.op, ast.Sub):
            return Add.make(lhs, Mul.make(Integer(-1), rhs))
        if isinstance(node.op, ast.Mult):
            return Mul.make(lhs, rhs)
        if isinstance(node.op, ast.FloorDiv):
            return FloorDiv.make(lhs, rhs)
        if isinstance(node.op, ast.Div):
            return TrueDiv.make(lhs, rhs)
        if isinstance(node.op, ast.Mod):
            return Mod.make(lhs, rhs)
        if isinstance(node.op, ast.Pow):
            return Pow.make(lhs, rhs)
        raise ExpressionParseError(
            f"Unsupported binary operator in expression {source!r}"
        )
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name):
            raise ExpressionParseError(
                f"Unsupported call target in expression {source!r}"
            )
        fname = node.func.id.lower()
        if fname not in _ALLOWED_CALLS:
            raise ExpressionParseError(
                f"Unsupported function '{node.func.id}' in expression {source!r}"
            )
        if node.keywords:
            raise ExpressionParseError(
                f"Keyword arguments not allowed in expression {source!r}"
            )
        args = [_convert(a, source) for a in node.args]
        return _ALLOWED_CALLS[fname].make(*args)
    raise ExpressionParseError(
        f"Unsupported syntax ({type(node).__name__}) in expression {source!r}"
    )
