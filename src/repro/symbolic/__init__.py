"""Symbolic integer arithmetic used by the parametric dataflow IR.

The FuzzyFlow approach hinges on *parametric* program representations: data
container sizes and access subsets are symbolic expressions over program
parameters (e.g. an ``N x N`` matrix) rather than opaque pointers.  This
subpackage provides a small, dependency-free symbolic engine:

* :mod:`repro.symbolic.expressions` -- the expression tree (symbols, integer
  constants, arithmetic, ``Min``/``Max``), evaluation and substitution.
* :mod:`repro.symbolic.parser` -- parsing Python-syntax strings into
  expressions.
* :mod:`repro.symbolic.simplify` -- constant folding and identity
  simplification.
* :mod:`repro.symbolic.ranges` -- one-dimensional ranges and multi-dimensional
  subsets with symbolic bounds, including volume, overlap and covering checks.
* :mod:`repro.symbolic.codegen` -- Python-source emission for interstate
  control-flow expressions (used by the compiled whole-program backend) and
  :mod:`ast`-based free-name extraction.
"""

from repro.symbolic.codegen import (
    ExpressionCodegenError,
    emit_interstate_expression,
    expression_names,
)
from repro.symbolic.expressions import (
    Add,
    Expr,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Pow,
    Symbol,
    sympify,
)
from repro.symbolic.parser import parse_expr
from repro.symbolic.ranges import Range, Subset, Indices
from repro.symbolic.simplify import simplify

__all__ = [
    "Expr",
    "Symbol",
    "Integer",
    "Add",
    "Mul",
    "Pow",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "sympify",
    "parse_expr",
    "simplify",
    "Range",
    "Subset",
    "Indices",
    "ExpressionCodegenError",
    "emit_interstate_expression",
    "expression_names",
]
