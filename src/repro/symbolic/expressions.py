"""Expression tree for symbolic integer arithmetic.

The expression language is intentionally small: integers, named symbols,
addition, multiplication, power, true/floor division, modulo and ``Min`` /
``Max``.  That is sufficient to describe data-container shapes (``N * N``),
access subsets (``i * 32 : Min(N, i * 32 + 32)``) and data-movement volumes,
which is all the FuzzyFlow analyses require.

Expressions are immutable and hashable.  Arithmetic operators build new
expression nodes and apply light local simplification (constant folding,
neutral-element removal); heavier rewriting lives in
:mod:`repro.symbolic.simplify`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Set, Union

Number = Union[int, float]
ExprLike = Union["Expr", int, float, str]

__all__ = [
    "Expr",
    "Integer",
    "Float",
    "Symbol",
    "Add",
    "Mul",
    "Pow",
    "FloorDiv",
    "TrueDiv",
    "Mod",
    "Min",
    "Max",
    "sympify",
    "evaluate",
    "free_symbols",
]


class Expr:
    """Base class for all symbolic expressions."""

    __slots__ = ()

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    @property
    def free_symbols(self) -> Set[str]:
        """Names of all symbols appearing in this expression."""
        raise NotImplementedError

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        """Evaluate to a concrete number given symbol values.

        Raises :class:`KeyError` if a free symbol has no binding.
        """
        raise NotImplementedError

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Expr":
        """Substitute symbols by expressions (returns a new expression)."""
        raise NotImplementedError

    def is_constant(self) -> bool:
        return not self.free_symbols

    # ------------------------------------------------------------------ #
    # Python protocol
    # ------------------------------------------------------------------ #
    def __add__(self, other: ExprLike) -> "Expr":
        return Add.make(self, sympify(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add.make(sympify(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add.make(self, Mul.make(Integer(-1), sympify(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Add.make(sympify(other), Mul.make(Integer(-1), self))

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul.make(self, sympify(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul.make(sympify(other), self)

    def __neg__(self) -> "Expr":
        return Mul.make(Integer(-1), self)

    def __pos__(self) -> "Expr":
        return self

    def __pow__(self, other: ExprLike) -> "Expr":
        return Pow.make(self, sympify(other))

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(self, sympify(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(sympify(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return TrueDiv.make(self, sympify(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return TrueDiv.make(sympify(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod.make(self, sympify(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return Mod.make(sympify(other), self)

    # Equality is *structural*; use :func:`equivalent` for semantic checks.
    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - overridden
        return NotImplemented

    def __repr__(self) -> str:
        return str(self)


# ---------------------------------------------------------------------- #
# Atoms
# ---------------------------------------------------------------------- #
class Integer(Expr):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    @property
    def free_symbols(self) -> Set[str]:
        return set()

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return self.value

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return self

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other
        return isinstance(other, Integer) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Integer", self.value))

    def __str__(self) -> str:
        return str(self.value)


class Float(Expr):
    """A floating-point constant (rarely needed; kept for completeness)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    @property
    def free_symbols(self) -> Set[str]:
        return set()

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return self.value

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return self

    def __eq__(self, other: object) -> bool:
        if isinstance(other, float):
            return self.value == other
        return isinstance(other, Float) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Float", self.value))

    def __str__(self) -> str:
        return repr(self.value)


class Symbol(Expr):
    """A named program parameter (e.g. ``N``, a loop variable ``i``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"Invalid symbol name: {name!r}")
        self.name = name

    @property
    def free_symbols(self) -> Set[str]:
        return {self.name}

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        if bindings is None or self.name not in bindings:
            raise KeyError(f"No value bound for symbol '{self.name}'")
        return bindings[self.name]

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        if self.name in mapping:
            return sympify(mapping[self.name])
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Symbol) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Symbol", self.name))

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------- #
# Composite nodes
# ---------------------------------------------------------------------- #
class _NAry(Expr):
    """Base for flattened, order-preserving n-ary operators."""

    __slots__ = ("args",)
    _op_name = "?"

    def __init__(self, args: Sequence[Expr]) -> None:
        self.args = tuple(args)

    @property
    def free_symbols(self) -> Set[str]:
        out: Set[str] = set()
        for a in self.args:
            out |= a.free_symbols
        return out

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return type(self).make(*[a.subs(mapping) for a in self.args])

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.args == other.args

    def __hash__(self) -> int:
        return hash((self._op_name, self.args))

    @classmethod
    def make(cls, *args: Expr) -> Expr:  # pragma: no cover - overridden
        raise NotImplementedError


def _paren(e: Expr) -> str:
    if isinstance(e, (Integer, Symbol, Float, Min, Max)):
        return str(e)
    return f"({e})"


class Add(_NAry):
    """Sum of terms."""

    __slots__ = ()
    _op_name = "Add"

    @classmethod
    def make(cls, *args: ExprLike) -> Expr:
        terms: list[Expr] = []
        const = 0
        for raw in args:
            a = sympify(raw)
            if isinstance(a, Add):
                inner = list(a.args)
            else:
                inner = [a]
            for t in inner:
                if isinstance(t, Integer):
                    const += t.value
                elif isinstance(t, Float):
                    const += t.value
                else:
                    terms.append(t)
        if const != 0 or not terms:
            const_expr: Expr = Integer(const) if isinstance(const, int) else Float(const)
            terms.append(const_expr)
        if len(terms) == 1:
            return terms[0]
        return cls(terms)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return sum(a.evaluate(bindings) for a in self.args)

    def __str__(self) -> str:
        parts: list[str] = []
        for i, a in enumerate(self.args):
            s = str(a)
            if i > 0 and not s.startswith("-"):
                parts.append("+")
            elif i > 0:
                parts.append("")
            parts.append(s)
        return " ".join(p for p in parts if p) if len(self.args) > 1 else str(self.args[0])


class Mul(_NAry):
    """Product of factors."""

    __slots__ = ()
    _op_name = "Mul"

    @classmethod
    def make(cls, *args: ExprLike) -> Expr:
        factors: list[Expr] = []
        const: Number = 1
        for raw in args:
            a = sympify(raw)
            if isinstance(a, Mul):
                inner = list(a.args)
            else:
                inner = [a]
            for f in inner:
                if isinstance(f, (Integer, Float)):
                    const = const * f.value
                else:
                    factors.append(f)
        if const == 0:
            return Integer(0)
        if const != 1 or not factors:
            const_expr: Expr = Integer(const) if isinstance(const, int) else Float(const)
            factors.insert(0, const_expr)
        if len(factors) == 1:
            return factors[0]
        return cls(factors)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        out: Number = 1
        for a in self.args:
            out = out * a.evaluate(bindings)
        return out

    def __str__(self) -> str:
        return " * ".join(_paren(a) for a in self.args)


class _Binary(Expr):
    """Base for binary operators."""

    __slots__ = ("lhs", "rhs")
    _op_name = "?"
    _op_sym = "?"

    def __init__(self, lhs: Expr, rhs: Expr) -> None:
        self.lhs = lhs
        self.rhs = rhs

    @property
    def free_symbols(self) -> Set[str]:
        return self.lhs.free_symbols | self.rhs.free_symbols

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return type(self).make(self.lhs.subs(mapping), self.rhs.subs(mapping))

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((self._op_name, self.lhs, self.rhs))

    def __str__(self) -> str:
        return f"{_paren(self.lhs)} {self._op_sym} {_paren(self.rhs)}"

    @classmethod
    def make(cls, lhs: ExprLike, rhs: ExprLike) -> Expr:
        l, r = sympify(lhs), sympify(rhs)
        if l.is_constant() and r.is_constant():
            return sympify(cls._fold(l.evaluate(), r.evaluate()))
        return cls._partial(l, r)

    @classmethod
    def _partial(cls, l: Expr, r: Expr) -> Expr:
        return cls(l, r)

    @staticmethod
    def _fold(a: Number, b: Number) -> Number:  # pragma: no cover - overridden
        raise NotImplementedError


class Pow(_Binary):
    """Exponentiation."""

    __slots__ = ()
    _op_name = "Pow"
    _op_sym = "**"

    @staticmethod
    def _fold(a: Number, b: Number) -> Number:
        return a ** b

    @classmethod
    def _partial(cls, l: Expr, r: Expr) -> Expr:
        if isinstance(r, Integer):
            if r.value == 0:
                return Integer(1)
            if r.value == 1:
                return l
        return cls(l, r)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return self.lhs.evaluate(bindings) ** self.rhs.evaluate(bindings)


class FloorDiv(_Binary):
    """Integer (floor) division."""

    __slots__ = ()
    _op_name = "FloorDiv"
    _op_sym = "//"

    @staticmethod
    def _fold(a: Number, b: Number) -> Number:
        return a // b

    @classmethod
    def _partial(cls, l: Expr, r: Expr) -> Expr:
        if isinstance(r, Integer) and r.value == 1:
            return l
        if isinstance(l, Integer) and l.value == 0:
            return Integer(0)
        return cls(l, r)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return self.lhs.evaluate(bindings) // self.rhs.evaluate(bindings)


class TrueDiv(_Binary):
    """True division (kept exact when it folds to an integer)."""

    __slots__ = ()
    _op_name = "TrueDiv"
    _op_sym = "/"

    @staticmethod
    def _fold(a: Number, b: Number) -> Number:
        res = a / b
        if isinstance(a, int) and isinstance(b, int) and a % b == 0:
            return a // b
        return res

    @classmethod
    def _partial(cls, l: Expr, r: Expr) -> Expr:
        if isinstance(r, Integer) and r.value == 1:
            return l
        if isinstance(l, Integer) and l.value == 0:
            return Integer(0)
        return cls(l, r)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return self.lhs.evaluate(bindings) / self.rhs.evaluate(bindings)


class Mod(_Binary):
    """Modulo."""

    __slots__ = ()
    _op_name = "Mod"
    _op_sym = "%"

    @staticmethod
    def _fold(a: Number, b: Number) -> Number:
        return a % b

    @classmethod
    def _partial(cls, l: Expr, r: Expr) -> Expr:
        if isinstance(r, Integer) and r.value == 1:
            return Integer(0)
        return cls(l, r)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return self.lhs.evaluate(bindings) % self.rhs.evaluate(bindings)


class Min(_NAry):
    """Minimum of a set of expressions."""

    __slots__ = ()
    _op_name = "Min"

    @classmethod
    def make(cls, *args: ExprLike) -> Expr:
        exprs: list[Expr] = []
        const: Number | None = None
        for raw in args:
            a = sympify(raw)
            if isinstance(a, Min):
                inner: Iterable[Expr] = a.args
            else:
                inner = [a]
            for e in inner:
                if e.is_constant():
                    v = e.evaluate()
                    const = v if const is None else min(const, v)
                elif e not in exprs:
                    exprs.append(e)
        if const is not None:
            exprs.append(sympify(const))
        if not exprs:
            raise ValueError("Min() requires at least one argument")
        if len(exprs) == 1:
            return exprs[0]
        return cls(exprs)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return min(a.evaluate(bindings) for a in self.args)

    def __str__(self) -> str:
        return "Min(" + ", ".join(str(a) for a in self.args) + ")"


class Max(_NAry):
    """Maximum of a set of expressions."""

    __slots__ = ()
    _op_name = "Max"

    @classmethod
    def make(cls, *args: ExprLike) -> Expr:
        exprs: list[Expr] = []
        const: Number | None = None
        for raw in args:
            a = sympify(raw)
            if isinstance(a, Max):
                inner: Iterable[Expr] = a.args
            else:
                inner = [a]
            for e in inner:
                if e.is_constant():
                    v = e.evaluate()
                    const = v if const is None else max(const, v)
                elif e not in exprs:
                    exprs.append(e)
        if const is not None:
            exprs.append(sympify(const))
        if not exprs:
            raise ValueError("Max() requires at least one argument")
        if len(exprs) == 1:
            return exprs[0]
        return cls(exprs)

    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Number:
        return max(a.evaluate(bindings) for a in self.args)

    def __str__(self) -> str:
        return "Max(" + ", ".join(str(a) for a in self.args) + ")"


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def sympify(value: ExprLike) -> Expr:
    """Convert ``value`` into an :class:`Expr`.

    Accepts expressions (returned unchanged), Python ints/floats, and strings
    parsed with :func:`repro.symbolic.parser.parse_expr`.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Integer(int(value))
    if isinstance(value, int):
        return Integer(value)
    if isinstance(value, float):
        if value.is_integer():
            return Integer(int(value))
        return Float(value)
    if hasattr(value, "item") and not isinstance(value, str):
        # NumPy scalar
        return sympify(value.item())
    if isinstance(value, str):
        from repro.symbolic.parser import parse_expr

        return parse_expr(value)
    raise TypeError(f"Cannot convert {value!r} of type {type(value).__name__} to Expr")


def evaluate(value: ExprLike, bindings: Mapping[str, Number] | None = None) -> Number:
    """Evaluate an expression-like value to a concrete number."""
    return sympify(value).evaluate(bindings)


def free_symbols(value: ExprLike) -> Set[str]:
    """Free symbols of an expression-like value."""
    return sympify(value).free_symbols


def equivalent(
    a: ExprLike,
    b: ExprLike,
    symbols: Iterable[str] | None = None,
    probes: int = 8,
    lo: int = 1,
    hi: int = 97,
    seed: int = 0,
) -> bool:
    """Probabilistic semantic-equivalence check by evaluation at random points.

    Used by tests and by subset-comparison code where structural equality is
    too strict (e.g. ``N + N`` vs ``2 * N``).
    """
    import random

    ea, eb = sympify(a), sympify(b)
    syms = set(symbols or (ea.free_symbols | eb.free_symbols))
    rng = random.Random(seed)
    for _ in range(max(1, probes)):
        bindings = {s: rng.randint(lo, hi) for s in syms}
        try:
            va, vb = ea.evaluate(bindings), eb.evaluate(bindings)
        except (ZeroDivisionError, OverflowError):
            continue
        if isinstance(va, float) or isinstance(vb, float):
            if not math.isclose(float(va), float(vb), rel_tol=1e-9, abs_tol=1e-9):
                return False
        elif va != vb:
            return False
    return True
