"""A small ordered directed multigraph used by the dataflow IR.

The IR needs a graph structure with:

* arbitrary (hashable-by-identity) node objects,
* parallel edges carrying payloads and named connectors,
* deterministic iteration order (insertion order) so that program execution,
  serialization and graph diffs are reproducible,
* the usual traversals (topological sort, BFS, reverse BFS) used by the
  FuzzyFlow analyses.

``networkx`` is used elsewhere only as a cross-check for the max-flow
computation; the IR itself uses this self-contained implementation so node
and edge identity semantics stay fully under our control.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Generic, Iterable, Iterator, List, Optional, Set, Tuple, TypeVar

NodeT = TypeVar("NodeT")
EdgeDataT = TypeVar("EdgeDataT")

__all__ = ["Edge", "OrderedMultiDiGraph", "GraphError"]


class GraphError(Exception):
    """Raised on invalid graph manipulations (unknown nodes, cycles, ...)."""


class Edge(Generic[NodeT, EdgeDataT]):
    """A directed edge with optional connector names and a payload."""

    __slots__ = ("src", "dst", "data", "src_conn", "dst_conn")

    def __init__(
        self,
        src: NodeT,
        dst: NodeT,
        data: EdgeDataT = None,
        src_conn: Optional[str] = None,
        dst_conn: Optional[str] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.data = data
        self.src_conn = src_conn
        self.dst_conn = dst_conn

    def __repr__(self) -> str:
        sc = f".{self.src_conn}" if self.src_conn else ""
        dc = f".{self.dst_conn}" if self.dst_conn else ""
        return f"Edge({self.src!r}{sc} -> {self.dst!r}{dc}: {self.data!r})"


class OrderedMultiDiGraph(Generic[NodeT, EdgeDataT]):
    """Directed multigraph with insertion-ordered nodes and edges."""

    def __init__(self) -> None:
        # Node -> insertion index (dict preserves order).
        self._nodes: Dict[NodeT, int] = {}
        self._edges: List[Edge[NodeT, EdgeDataT]] = []
        self._out: Dict[NodeT, List[Edge[NodeT, EdgeDataT]]] = {}
        self._in: Dict[NodeT, List[Edge[NodeT, EdgeDataT]]] = {}
        self._next_index = 0

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def add_node(self, node: NodeT) -> NodeT:
        if node not in self._nodes:
            self._nodes[node] = self._next_index
            self._next_index += 1
            self._out[node] = []
            self._in[node] = []
        return node

    def remove_node(self, node: NodeT) -> None:
        if node not in self._nodes:
            raise GraphError(f"Node {node!r} not in graph")
        for e in list(self._in[node]) + list(self._out[node]):
            self.remove_edge(e)
        del self._nodes[node]
        del self._out[node]
        del self._in[node]

    def has_node(self, node: NodeT) -> bool:
        return node in self._nodes

    def nodes(self) -> List[NodeT]:
        return list(self._nodes.keys())

    def node_id(self, node: NodeT) -> int:
        """Stable insertion index of a node (unique within this graph)."""
        if node not in self._nodes:
            raise GraphError(f"Node {node!r} not in graph")
        return self._nodes[node]

    def number_of_nodes(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #
    def add_edge(
        self,
        src: NodeT,
        dst: NodeT,
        data: EdgeDataT = None,
        src_conn: Optional[str] = None,
        dst_conn: Optional[str] = None,
    ) -> Edge[NodeT, EdgeDataT]:
        self.add_node(src)
        self.add_node(dst)
        edge = Edge(src, dst, data, src_conn, dst_conn)
        self._edges.append(edge)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    def add_edge_object(self, edge: Edge[NodeT, EdgeDataT]) -> Edge[NodeT, EdgeDataT]:
        """Insert a pre-constructed edge object (nodes are added if needed)."""
        self.add_node(edge.src)
        self.add_node(edge.dst)
        self._edges.append(edge)
        self._out[edge.src].append(edge)
        self._in[edge.dst].append(edge)
        return edge

    def remove_edge(self, edge: Edge[NodeT, EdgeDataT]) -> None:
        try:
            self._edges.remove(edge)
        except ValueError as exc:
            raise GraphError(f"Edge {edge!r} not in graph") from exc
        self._out[edge.src].remove(edge)
        self._in[edge.dst].remove(edge)

    def has_edge(self, edge: Edge[NodeT, EdgeDataT]) -> bool:
        return edge in self._edges

    def edges(self) -> List[Edge[NodeT, EdgeDataT]]:
        return list(self._edges)

    def number_of_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        if node not in self._nodes:
            raise GraphError(f"Node {node!r} not in graph")
        return list(self._out[node])

    def in_edges(self, node: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        if node not in self._nodes:
            raise GraphError(f"Node {node!r} not in graph")
        return list(self._in[node])

    def all_edges(self, *nodes: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        """All edges incident to any of the given nodes (no duplicates)."""
        seen: List[Edge[NodeT, EdgeDataT]] = []
        for node in nodes:
            for e in self.in_edges(node) + self.out_edges(node):
                if e not in seen:
                    seen.append(e)
        return seen

    def edges_between(self, src: NodeT, dst: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        return [e for e in self._out.get(src, []) if e.dst is dst]

    # ------------------------------------------------------------------ #
    # Degrees / neighbours
    # ------------------------------------------------------------------ #
    def in_degree(self, node: NodeT) -> int:
        return len(self._in[node])

    def out_degree(self, node: NodeT) -> int:
        return len(self._out[node])

    def successors(self, node: NodeT) -> List[NodeT]:
        out: List[NodeT] = []
        for e in self._out[node]:
            if e.dst not in out:
                out.append(e.dst)
        return out

    def predecessors(self, node: NodeT) -> List[NodeT]:
        out: List[NodeT] = []
        for e in self._in[node]:
            if e.src not in out:
                out.append(e.src)
        return out

    def source_nodes(self) -> List[NodeT]:
        """Nodes without incoming edges."""
        return [n for n in self._nodes if not self._in[n]]

    def sink_nodes(self) -> List[NodeT]:
        """Nodes without outgoing edges."""
        return [n for n in self._nodes if not self._out[n]]

    # ------------------------------------------------------------------ #
    # Traversals
    # ------------------------------------------------------------------ #
    def topological_sort(self) -> List[NodeT]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles."""
        indeg = {n: self.in_degree(n) for n in self._nodes}
        queue = deque(n for n in self._nodes if indeg[n] == 0)
        order: List[NodeT] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for e in self._out[node]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    queue.append(e.dst)
        if len(order) != len(self._nodes):
            raise GraphError("Graph contains a cycle; topological sort impossible")
        return order

    def bfs_nodes(self, sources: Iterable[NodeT], reverse: bool = False) -> Iterator[NodeT]:
        """Breadth-first traversal from the given sources (excluded sources
        are yielded as well, first)."""
        visited: Set[int] = set()
        queue: deque[NodeT] = deque()
        for s in sources:
            if id(s) not in visited:
                visited.add(id(s))
                queue.append(s)
        while queue:
            node = queue.popleft()
            yield node
            edges = self._in[node] if reverse else self._out[node]
            for e in edges:
                nxt = e.src if reverse else e.dst
                if id(nxt) not in visited:
                    visited.add(id(nxt))
                    queue.append(nxt)

    def bfs_edges(
        self, sources: Iterable[NodeT], reverse: bool = False
    ) -> Iterator[Edge[NodeT, EdgeDataT]]:
        """Breadth-first edge traversal from the given sources."""
        visited: Set[int] = set()
        queue: deque[NodeT] = deque()
        for s in sources:
            if id(s) not in visited:
                visited.add(id(s))
                queue.append(s)
        while queue:
            node = queue.popleft()
            edges = self._in[node] if reverse else self._out[node]
            for e in edges:
                yield e
                nxt = e.src if reverse else e.dst
                if id(nxt) not in visited:
                    visited.add(id(nxt))
                    queue.append(nxt)

    def has_path(self, src: NodeT, dst: NodeT) -> bool:
        """Whether a directed path from ``src`` to ``dst`` exists."""
        if src not in self._nodes or dst not in self._nodes:
            return False
        for node in self.bfs_nodes([src]):
            if node is dst:
                return True
        return False

    def descendants(self, node: NodeT) -> Set[NodeT]:
        """All nodes reachable from ``node`` (excluding itself unless cyclic)."""
        out = set(self.bfs_nodes([node]))
        out.discard(node)
        return out

    def ancestors(self, node: NodeT) -> Set[NodeT]:
        """All nodes that can reach ``node``."""
        out = set(self.bfs_nodes([node], reverse=True))
        out.discard(node)
        return out

    # ------------------------------------------------------------------ #
    def __contains__(self, node: NodeT) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[NodeT]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)
