"""Whole-program analyses on the SDFG state machine.

Currently provides:

* sequential-loop detection (the guard/body/back-edge pattern created by
  :meth:`repro.sdfg.sdfg.SDFG.add_loop`), used by the loop-unrolling
  transformation and by the gray-box constraint analysis (loop bounds
  constrain the values a loop variable can take, Sec. 5.1),
* state reachability helpers used by the side-effect analyses (Sec. 3.1),
* map-scope enumeration across the program,
* structured-control-flow recovery for the compiled whole-program backend,
* elementwise scope-chain discovery (candidate producer/consumer map scopes
  for the vectorized backend's scope fusion).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sdfg.graph import Edge
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit
from repro.sdfg.sdfg import SDFG, InterstateEdge
from repro.sdfg.state import SDFGState

__all__ = [
    "LoopInfo",
    "find_loops",
    "states_reachable_from",
    "states_reaching",
    "all_map_entries",
    "loop_variable_bounds",
    "CFExec",
    "CFArm",
    "CFBranch",
    "CFLoop",
    "CFBlock",
    "structured_control_flow",
    "elementwise_scope_chains",
    "access_node_is_transparent",
]


@dataclass
class LoopInfo:
    """A detected sequential loop in the state machine."""

    guard: SDFGState
    body: SDFGState
    after: SDFGState
    init_edge: Edge
    condition_edge: Edge
    exit_edge: Edge
    back_edge: Edge
    loop_variable: str
    init_expression: str
    condition: str
    increment_expression: str

    def trip_count_estimate(self, symbols: Dict[str, int]) -> Optional[int]:
        """Concretely simulate the loop header to count iterations.

        Returns ``None`` if the loop does not terminate within a generous
        bound (used to avoid unrolling unbounded loops).
        """
        ns = dict(symbols)
        try:
            ns[self.loop_variable] = eval(  # noqa: S307 - controlled input
                compile(self.init_expression, "<loop-init>", "eval"), {"__builtins__": {}}, ns
            )
        except Exception:
            return None
        count = 0
        limit = 1_000_000
        cond_code = compile(self.condition, "<loop-cond>", "eval")
        incr_code = compile(self.increment_expression, "<loop-incr>", "eval")
        try:
            while eval(cond_code, {"__builtins__": {}}, ns):  # noqa: S307
                count += 1
                if count > limit:
                    return None
                ns[self.loop_variable] = eval(  # noqa: S307
                    incr_code, {"__builtins__": {}}, ns
                )
        except Exception:
            return None
        return count

    def iteration_values(self, symbols: Dict[str, int]) -> Optional[List[int]]:
        """The concrete sequence of loop-variable values, if computable."""
        ns = dict(symbols)
        try:
            ns[self.loop_variable] = eval(  # noqa: S307
                compile(self.init_expression, "<loop-init>", "eval"), {"__builtins__": {}}, ns
            )
        except Exception:
            return None
        values: List[int] = []
        cond_code = compile(self.condition, "<loop-cond>", "eval")
        incr_code = compile(self.increment_expression, "<loop-incr>", "eval")
        try:
            while eval(cond_code, {"__builtins__": {}}, ns):  # noqa: S307
                values.append(ns[self.loop_variable])
                if len(values) > 1_000_000:
                    return None
                ns[self.loop_variable] = eval(incr_code, {"__builtins__": {}}, ns)  # noqa: S307
        except Exception:
            return None
        return values


def find_loops(sdfg: SDFG) -> List[LoopInfo]:
    """Detect sequential loops following the guard-state pattern.

    A guard state ``G`` forms a loop if it has exactly two outgoing edges --
    one conditional edge to a body state ``B`` and one to an exit state with
    the negated condition -- and there is a back edge ``B -> G`` whose
    assignments update a variable that is also assigned on some incoming edge
    of ``G`` from outside the loop (the init edge).
    """
    loops: List[LoopInfo] = []
    for guard in sdfg.states():
        out = sdfg.out_edges(guard)
        if len(out) != 2:
            continue
        cond_edge: Optional[Edge] = None
        exit_edge: Optional[Edge] = None
        for a, b in ((out[0], out[1]), (out[1], out[0])):
            ca, cb = a.data.condition.strip(), b.data.condition.strip()
            if cb == f"not ({ca})" or ca == f"not ({cb})":
                if cb == f"not ({ca})":
                    cond_edge, exit_edge = a, b
                else:
                    cond_edge, exit_edge = b, a
                break
        if cond_edge is None or exit_edge is None:
            continue
        body = cond_edge.dst
        after = exit_edge.dst
        if body is guard or after is body:
            continue
        # Find the back edge: an incoming edge of the guard from a state
        # reachable from the body (or the body itself) with assignments.
        back_edge: Optional[Edge] = None
        init_edge: Optional[Edge] = None
        body_reach = states_reachable_from(sdfg, body, stop_at=guard)
        for e in sdfg.in_edges(guard):
            if e.src is body or e.src in body_reach:
                if e.data.assignments:
                    back_edge = e
            else:
                init_edge = e
        if back_edge is None or init_edge is None:
            continue
        # The loop variable is assigned on both the init and the back edge.
        candidates = set(back_edge.data.assignments) & set(init_edge.data.assignments)
        if not candidates:
            continue
        # Prefer a variable that appears in the condition.
        loop_var = None
        cond_syms = set(re.findall(r"[A-Za-z_][A-Za-z_0-9]*", cond_edge.data.condition))
        for c in sorted(candidates):
            if c in cond_syms:
                loop_var = c
                break
        if loop_var is None:
            loop_var = sorted(candidates)[0]
        loops.append(
            LoopInfo(
                guard=guard,
                body=body,
                after=after,
                init_edge=init_edge,
                condition_edge=cond_edge,
                exit_edge=exit_edge,
                back_edge=back_edge,
                loop_variable=loop_var,
                init_expression=init_edge.data.assignments[loop_var],
                condition=cond_edge.data.condition,
                increment_expression=back_edge.data.assignments[loop_var],
            )
        )
    return loops


def states_reachable_from(
    sdfg: SDFG, state: SDFGState, stop_at: Optional[SDFGState] = None
) -> Set[SDFGState]:
    """States reachable from ``state`` (not crossing ``stop_at``)."""
    visited: Set[SDFGState] = set()
    stack = [state]
    while stack:
        cur = stack.pop()
        for e in sdfg.out_edges(cur):
            nxt = e.dst
            if nxt is stop_at or nxt in visited:
                continue
            visited.add(nxt)
            stack.append(nxt)
    visited.discard(state)
    return visited


def states_reaching(sdfg: SDFG, state: SDFGState) -> Set[SDFGState]:
    """States from which ``state`` is reachable."""
    visited: Set[SDFGState] = set()
    stack = [state]
    while stack:
        cur = stack.pop()
        for e in sdfg.in_edges(cur):
            prv = e.src
            if prv in visited:
                continue
            visited.add(prv)
            stack.append(prv)
    visited.discard(state)
    return visited


def all_map_entries(sdfg: SDFG) -> List[Tuple[SDFGState, MapEntry]]:
    """All map entry nodes in the program with their states."""
    out: List[Tuple[SDFGState, MapEntry]] = []
    for state in sdfg.states():
        for node in state.nodes():
            if isinstance(node, MapEntry):
                out.append((state, node))
    return out


def loop_variable_bounds(sdfg: SDFG, symbols: Dict[str, int]) -> Dict[str, Tuple[int, int]]:
    """Concrete (min, max) bounds of each sequential-loop variable.

    Used by the gray-box constraint analysis: when a cutout was extracted
    from inside a loop, the loop variable's observed range constrains the
    values worth sampling for it.
    """
    bounds: Dict[str, Tuple[int, int]] = {}
    for loop in find_loops(sdfg):
        values = loop.iteration_values(symbols)
        if values:
            bounds[loop.loop_variable] = (min(values), max(values))
    return bounds


# ---------------------------------------------------------------------- #
# Structured control flow
# ---------------------------------------------------------------------- #
#
# The compiled whole-program backend lowers the interstate graph to
# *structured* Python control flow: natural loops (the guard pattern
# ``find_loops`` detects) become ``while`` loops, branches become ``if``
# chains whose arms inline their continuations, and everything else --
# irreducible cycles, patterns the matcher does not recognize -- makes the
# whole program fall back to a ``while``-over-current-state dispatch loop.
#
# The structure is an *inlining* of the CFG: a join state reached from two
# branch arms is simply structured twice, once per arm.  That duplication is
# semantically free (each copy executes the same state) and bounded by a
# budget; exceeding the budget is treated like an unstructured graph.


@dataclass
class CFExec:
    """Execute one state's dataflow (hang check, coverage, transition)."""

    state: SDFGState


@dataclass
class CFArm:
    """One outgoing edge of a branching state.

    Exactly one of ``block`` / ``terminal`` is set: ``block`` inlines the
    continuation after taking the edge, ``terminal`` names a structured jump
    (``"continue"`` back to the enclosing loop guard, ``"break"`` out of it,
    or ``"fallthrough"`` into the parent block's next item).
    """

    edge: Edge
    block: Optional["CFBlock"] = None
    terminal: Optional[str] = None


@dataclass
class CFBranch:
    """Evaluate a state's out-edges in order; first true condition wins.

    If no condition holds, the program terminates (the interpreter's
    ``_next_state`` returns ``None``).
    """

    state: SDFGState
    arms: List[CFArm]


@dataclass
class CFLoop:
    """A natural loop: ``while True: <exec guard>; <branch>``.

    The branch's back/body arm re-enters the loop body; the exit arm is a
    ``break`` terminal.  The loop's continuation (the ``after`` state) is
    the parent block's next item.
    """

    loop: LoopInfo
    branch: CFBranch


@dataclass
class CFBlock:
    """A straight-line sequence of control-flow items."""

    items: List = field(default_factory=list)


class _Unstructured(Exception):
    """The interstate graph (or this region of it) cannot be structured."""


def structured_control_flow(
    sdfg: SDFG, max_execs: Optional[int] = None
) -> Optional[CFBlock]:
    """Structure the state machine, or ``None`` if it is irreducible.

    ``max_execs`` bounds the number of state-execution sites the inlined
    structure may contain (default ``4 * n_states + 16``), so join
    duplication cannot blow up the generated program.
    """
    states = sdfg.states()
    if not states:
        return None
    loops: Dict[SDFGState, LoopInfo] = {}
    for loop in find_loops(sdfg):
        # One loop per guard, and a guard whose exit re-enters itself is not
        # a shape the structured emitter supports.
        if loop.guard in loops or loop.after is loop.guard:
            return None
        loops[loop.guard] = loop
    budget = [max_execs if max_execs is not None else 4 * len(states) + 16]
    try:
        return _structure_chain(sdfg, sdfg.start_state, loops, {}, frozenset(), budget)
    except _Unstructured:
        return None


def _structure_chain(
    sdfg: SDFG,
    entry: SDFGState,
    loops: Dict[SDFGState, LoopInfo],
    actions: Dict[SDFGState, str],
    path: frozenset,
    budget: List[int],
) -> CFBlock:
    """Structure the chain starting at ``entry``.

    ``actions`` maps jump-target states of the innermost enclosing loop to
    their terminals (guard -> ``"continue"``, after -> ``"break"``);
    ``path`` holds the states on the current structuring path, so any cycle
    not captured by a recognized loop raises :class:`_Unstructured`.
    """
    block = CFBlock()
    cur: Optional[SDFGState] = entry
    while cur is not None:
        if cur in path:
            raise _Unstructured(f"unstructured cycle through '{cur.label}'")
        budget[0] -= 1
        if budget[0] < 0:
            raise _Unstructured("state-inlining budget exhausted")

        loop = loops.get(cur)
        if loop is not None:
            body_actions = {loop.guard: "continue", loop.after: "break"}
            body_path = path | {cur}
            arms = []
            for edge in sdfg.out_edges(cur):
                arms.append(
                    _structure_arm(sdfg, edge, loops, body_actions, body_path, budget)
                )
            block.items.append(CFLoop(loop, CFBranch(cur, arms)))
            cur = loop.after
            continue

        block.items.append(CFExec(cur))
        out = sdfg.out_edges(cur)
        if not out:
            break
        if len(out) == 1 and out[0].dst not in actions and out[0].dst is not cur:
            # Keep linear chains flat: emit the edge as a fallthrough arm and
            # continue structuring in the same block (bounded indentation).
            block.items.append(
                CFBranch(cur, [CFArm(out[0], terminal="fallthrough")])
            )
            path = path | {cur}
            cur = out[0].dst
            continue
        arms = []
        arm_path = path | {cur}
        for edge in out:
            arms.append(_structure_arm(sdfg, edge, loops, actions, arm_path, budget))
        block.items.append(CFBranch(cur, arms))
        break
    return block


def _structure_arm(
    sdfg: SDFG,
    edge: Edge,
    loops: Dict[SDFGState, LoopInfo],
    actions: Dict[SDFGState, str],
    path: frozenset,
    budget: List[int],
) -> CFArm:
    terminal = actions.get(edge.dst)
    if terminal is not None:
        return CFArm(edge, terminal=terminal)
    return CFArm(
        edge, block=_structure_chain(sdfg, edge.dst, loops, actions, path, budget)
    )


# ---------------------------------------------------------------------- #
# Elementwise scope chains (scope-fusion candidates)
# ---------------------------------------------------------------------- #
#
# The vectorized backend executes each map scope as a handful of whole-array
# operations; a *chain* of elementwise scopes (producer writes B, consumer
# reads B over the same iteration domain) still pays one gather, one scatter
# and one grid construction per scope, plus the materialization of every
# intermediate array.  Scope fusion collapses such a chain into a single
# vectorized execution.  This pass finds the *structural* candidates; the
# data-dependence legality checks (matching subsets, no WCR-feeding reads,
# no cross-iteration hazards) live with the vectorized planner, which has
# the per-scope memlet plans in hand.


def access_node_is_transparent(state: SDFGState, node: AccessNode) -> bool:
    """Whether executing this top-level access node is a no-op.

    The interpreter only performs work for an access node when it has an
    incoming copy edge from *another access node* with a non-empty memlet;
    plain pass-through nodes between a map exit and the next map entry do
    nothing and therefore cannot order-separate two fused scopes.
    """
    for edge in state.in_edges(node):
        if isinstance(edge.src, AccessNode) and edge.data is not None and not edge.data.is_empty:
            return False
    return True


def elementwise_scope_chains(
    state: SDFGState,
    order: Optional[List] = None,
    scopes: Optional[Dict] = None,
) -> List[List[MapEntry]]:
    """Runs of fusable-candidate top-level map scopes in execution order.

    A chain is a maximal sequence of two or more top-level map entries such
    that

    * consecutive members are separated only by *transparent* nodes in the
      state's topological execution order (map exits, and access nodes whose
      execution is a no-op) -- any other node (a top-level tasklet, a nested
      SDFG, an access-to-access copy) executes between the scopes and breaks
      the chain, and
    * every member has the same map parameter names and textually identical
      iteration ranges, so their iteration domains coincide point for point.

    Whether a candidate chain is actually *legal* to fuse additionally
    depends on its memlets (the vectorized planner's job); this pass is
    purely structural and safe to call on any state.
    """
    if order is None:
        order = state.topological_sort()
    if scopes is None:
        scopes = state.scope_dict()

    def signature(entry: MapEntry) -> Tuple:
        return (
            tuple(entry.map.params),
            tuple((str(r.begin), str(r.end), str(r.step)) for r in entry.map.ranges),
        )

    chains: List[List[MapEntry]] = []
    run: List[MapEntry] = []

    def close() -> None:
        if len(run) >= 2:
            chains.append(list(run))
        run.clear()

    for node in order:
        if scopes.get(node) is not None:
            continue  # inside some scope: ordered by its entry, not here
        if isinstance(node, MapEntry):
            if run and signature(node) != signature(run[0]):
                close()
            run.append(node)
        elif isinstance(node, MapExit):
            continue  # paired with an entry already in (or before) the run
        elif isinstance(node, AccessNode) and access_node_is_transparent(state, node):
            continue
        else:
            close()
    close()
    return chains
