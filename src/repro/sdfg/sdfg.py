"""The top-level program container: a stateful dataflow multigraph.

An :class:`SDFG` is a state machine whose nodes are dataflow graphs
(:class:`~repro.sdfg.state.SDFGState`) and whose edges
(:class:`InterstateEdge`) carry a condition plus symbol assignments.
Sequential loops are expressed with the classic guard/body/exit state
pattern; parallel loops are map scopes inside states.

The SDFG also owns the program's data descriptors (``arrays``) and free
symbols (``symbols``); non-transient containers plus free symbols form the
program's argument list.
"""

from __future__ import annotations

import copy
import itertools
import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.sdfg.data import Array, Data, Scalar
from repro.sdfg.dtypes import StorageType, dtype_from_numpy, typeclass
from repro.sdfg.graph import Edge, GraphError, OrderedMultiDiGraph
from repro.sdfg.nodes import AccessNode, MapEntry, NestedSDFGNode, Node
from repro.sdfg.state import SDFGState
from repro.symbolic.expressions import Expr, sympify

__all__ = ["SDFG", "InterstateEdge", "SDFGError"]

_sdfg_name_counter = itertools.count(1)


class SDFGError(Exception):
    """Raised on invalid SDFG construction or queries."""


#: Names treated as expression vocabulary rather than program inputs, so
#: ``free_symbols`` never reports them.  This is deliberately *wider* than
#: what the interpreter's interstate evaluator actually resolves
#: (``_EVAL_GLOBALS``: Min/Max/min/max/abs/int): a condition calling e.g.
#: ``len(...)`` crashes at evaluation either way, but demanding ``len`` as
#: a fuzzed program input is a bogus requirement -- providing an integer
#: for it could never make the call form work.  The trade-off is that a
#: program symbol literally named ``len``/``sum``/... is invisible to
#: requirement analysis; execution still resolves it correctly (the symbol
#: namespace shadows the vocabulary in both backends).
_EXPRESSION_BUILTINS = frozenset(
    {
        "Min", "Max", "min", "max", "abs", "int", "float", "bool", "len",
        "round", "pow", "sum", "divmod", "math", "np", "numpy",
        "True", "False", "None",
    }
)

#: Keywords the legacy regex extraction used to pick up as identifiers.
_EXPRESSION_KEYWORDS = frozenset({"and", "or", "not", "in", "if", "else", "is"})


class InterstateEdge:
    """Control-flow edge between two states.

    ``condition`` is a Python boolean expression over the program symbols
    (evaluated by the interpreter); ``assignments`` maps symbol names to
    expressions evaluated on transition (this is how loop counters advance).
    """

    __slots__ = ("condition", "assignments")

    def __init__(
        self,
        condition: str = "True",
        assignments: Optional[Dict[str, Union[str, int, Expr]]] = None,
    ) -> None:
        self.condition = condition if condition is not None else "True"
        self.assignments: Dict[str, str] = {
            k: str(v) for k, v in (assignments or {}).items()
        }

    def is_unconditional(self) -> bool:
        return self.condition.strip() in ("True", "1", "")

    @property
    def free_symbols(self) -> Set[str]:
        """Names the condition and assignment expressions actually read.

        Extraction is :mod:`ast`-based, so builtins used as calls
        (``abs(x)``, ``len(...)``, ``int(n)``), attribute accesses and
        keywords are never misreported as free symbols; a malformed
        expression falls back to regex scraping so requirement analyses
        still see *some* conservative answer instead of crashing.
        """
        from repro.symbolic.codegen import ExpressionCodegenError, expression_names

        names: Set[str] = set()
        for expr in (self.condition, *self.assignments.values()):
            try:
                names |= expression_names(expr)
            except ExpressionCodegenError:
                import re

                names |= set(re.findall(r"[A-Za-z_][A-Za-z_0-9]*", expr))
        return names - _EXPRESSION_BUILTINS - _EXPRESSION_KEYWORDS

    def to_dict(self) -> Dict:
        return {"condition": self.condition, "assignments": dict(self.assignments)}

    @classmethod
    def from_dict(cls, d: Dict) -> "InterstateEdge":
        return cls(d.get("condition", "True"), d.get("assignments"))

    def __repr__(self) -> str:
        return f"InterstateEdge(cond={self.condition!r}, assign={self.assignments})"


class SDFG:
    """A stateful dataflow multigraph program."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or f"sdfg_{next(_sdfg_name_counter)}"
        #: Data descriptors by container name.
        self.arrays: Dict[str, Data] = {}
        #: Free symbols (program parameters) by name -> scalar type.
        self.symbols: Dict[str, typeclass] = {}
        #: Compile-time constants (name -> value), used by some transforms.
        self.constants: Dict[str, Union[int, float]] = {}
        self._states: OrderedMultiDiGraph[SDFGState, InterstateEdge] = (
            OrderedMultiDiGraph()
        )
        self._start_state: Optional[SDFGState] = None
        self._label_counter = itertools.count(0)

    # ------------------------------------------------------------------ #
    # Data descriptors
    # ------------------------------------------------------------------ #
    def add_array(
        self,
        name: str,
        shape: Sequence,
        dtype,
        transient: bool = False,
        storage: StorageType = StorageType.Default,
        find_new_name: bool = False,
    ) -> Tuple[str, Array]:
        name = self._register_name(name, find_new_name)
        desc = Array(dtype, shape, transient=transient, storage=storage)
        self.arrays[name] = desc
        for sym in desc.free_symbols:
            self.add_symbol(sym)
        return name, desc

    def add_transient(
        self,
        name: str,
        shape: Sequence,
        dtype,
        storage: StorageType = StorageType.Default,
        find_new_name: bool = False,
    ) -> Tuple[str, Array]:
        return self.add_array(
            name, shape, dtype, transient=True, storage=storage,
            find_new_name=find_new_name,
        )

    def add_scalar(
        self,
        name: str,
        dtype,
        transient: bool = False,
        find_new_name: bool = False,
    ) -> Tuple[str, Scalar]:
        name = self._register_name(name, find_new_name)
        desc = Scalar(dtype, transient=transient)
        self.arrays[name] = desc
        return name, desc

    def add_datadesc(self, name: str, desc: Data, find_new_name: bool = False) -> str:
        name = self._register_name(name, find_new_name)
        self.arrays[name] = desc
        for sym in desc.free_symbols:
            self.add_symbol(sym)
        return name

    def _register_name(self, name: str, find_new_name: bool) -> str:
        if name in self.arrays:
            if not find_new_name:
                raise SDFGError(f"Data container '{name}' already exists")
            base = name
            for i in itertools.count(0):
                name = f"{base}_{i}"
                if name not in self.arrays:
                    break
        return name

    def remove_data(self, name: str, validate: bool = True) -> None:
        if name not in self.arrays:
            raise SDFGError(f"Data container '{name}' does not exist")
        if validate:
            for state in self.states():
                for node in state.data_nodes():
                    if node.data == name:
                        raise SDFGError(
                            f"Cannot remove '{name}': still accessed in state "
                            f"'{state.label}'"
                        )
        del self.arrays[name]

    def add_symbol(self, name: str, dtype=None) -> str:
        if name not in self.symbols:
            self.symbols[name] = dtype_from_numpy(dtype) if dtype is not None else dtype_from_numpy("int64")
        return name

    def data(self, name: str) -> Data:
        """Look up a data descriptor by container name."""
        if name not in self.arrays:
            raise SDFGError(f"Unknown data container '{name}'")
        return self.arrays[name]

    # ------------------------------------------------------------------ #
    # States and control flow
    # ------------------------------------------------------------------ #
    def add_state(self, label: Optional[str] = None, is_start_state: bool = False) -> SDFGState:
        label = label or f"state_{next(self._label_counter)}"
        existing = {s.label for s in self._states.nodes()}
        base = label
        i = 0
        while label in existing:
            i += 1
            label = f"{base}_{i}"
        state = SDFGState(label, self)
        self._states.add_node(state)
        if is_start_state or self._start_state is None:
            if is_start_state:
                self._start_state = state
            elif self._start_state is None:
                self._start_state = state
        return state

    def add_state_after(
        self, state: SDFGState, label: Optional[str] = None,
        condition: str = "True",
        assignments: Optional[Dict[str, Union[str, int]]] = None,
    ) -> SDFGState:
        """Add a new state and connect ``state -> new`` unconditionally,
        rerouting existing successors of ``state`` to leave the new state."""
        new_state = self.add_state(label)
        for e in list(self._states.out_edges(state)):
            self._states.add_edge(new_state, e.dst, e.data)
            self._states.remove_edge(e)
        self.add_edge(state, new_state, InterstateEdge(condition, assignments))
        return new_state

    def add_edge(
        self, src: SDFGState, dst: SDFGState, edge: Optional[InterstateEdge] = None
    ) -> Edge[SDFGState, InterstateEdge]:
        return self._states.add_edge(src, dst, edge or InterstateEdge())

    def remove_edge(self, edge: Edge[SDFGState, InterstateEdge]) -> None:
        self._states.remove_edge(edge)

    def remove_state(self, state: SDFGState) -> None:
        self._states.remove_node(state)
        if self._start_state is state:
            remaining = self._states.nodes()
            self._start_state = remaining[0] if remaining else None

    def states(self) -> List[SDFGState]:
        return self._states.nodes()

    def nodes(self) -> List[SDFGState]:
        return self._states.nodes()

    def edges(self) -> List[Edge[SDFGState, InterstateEdge]]:
        return self._states.edges()

    def out_edges(self, state: SDFGState) -> List[Edge[SDFGState, InterstateEdge]]:
        return self._states.out_edges(state)

    def in_edges(self, state: SDFGState) -> List[Edge[SDFGState, InterstateEdge]]:
        return self._states.in_edges(state)

    @property
    def start_state(self) -> SDFGState:
        if self._start_state is None:
            raise SDFGError("SDFG has no states")
        return self._start_state

    @start_state.setter
    def start_state(self, state: SDFGState) -> None:
        if state not in self._states:
            raise SDFGError("Start state must be part of the SDFG")
        self._start_state = state

    def state_by_label(self, label: str) -> SDFGState:
        for s in self._states.nodes():
            if s.label == label:
                return s
        raise SDFGError(f"No state labelled '{label}'")

    def add_loop(
        self,
        before_state: Optional[SDFGState],
        loop_body: SDFGState,
        after_state: Optional[SDFGState],
        loop_var: str,
        init_expr: Union[str, int],
        condition: str,
        increment_expr: str,
    ) -> Tuple[SDFGState, SDFGState, SDFGState]:
        """Add a sequential loop around ``loop_body`` (guard-state pattern).

        Returns ``(before_state, guard, after_state)``.  ``loop_var`` becomes
        a program symbol; the guard's outgoing edges test ``condition`` and
        its negation; the back edge applies ``increment_expr``.
        """
        self.add_symbol(loop_var)
        if before_state is None:
            before_state = self.add_state(f"{loop_body.label}_init")
        if after_state is None:
            after_state = self.add_state(f"{loop_body.label}_after")
        guard = self.add_state(f"{loop_body.label}_guard")
        self.add_edge(
            before_state, guard, InterstateEdge(assignments={loop_var: init_expr})
        )
        self.add_edge(guard, loop_body, InterstateEdge(condition=condition))
        self.add_edge(
            guard, after_state, InterstateEdge(condition=f"not ({condition})")
        )
        self.add_edge(
            loop_body, guard, InterstateEdge(assignments={loop_var: increment_expr})
        )
        return before_state, guard, after_state

    # ------------------------------------------------------------------ #
    # Whole-program queries
    # ------------------------------------------------------------------ #
    def all_nodes(self) -> List[Tuple[SDFGState, Node]]:
        """All dataflow nodes across all states, with their state."""
        out = []
        for state in self.states():
            for node in state.nodes():
                out.append((state, node))
        return out

    def node_by_guid(self, guid: int) -> Optional[Tuple[SDFGState, Node]]:
        for state, node in self.all_nodes():
            if node.guid == guid:
                return state, node
        return None

    def used_data(self) -> Set[str]:
        """Names of containers accessed anywhere in the program."""
        out: Set[str] = set()
        for state in self.states():
            for node in state.data_nodes():
                out.add(node.data)
        return out

    @property
    def free_symbols(self) -> Set[str]:
        """Symbols that must be provided to run the program."""
        out: Set[str] = set()
        for desc in self.arrays.values():
            out |= desc.free_symbols
        for state in self.states():
            out |= state.free_symbols
        defined: Set[str] = set()
        for e in self.edges():
            isedge: InterstateEdge = e.data
            out |= isedge.free_symbols
            defined |= set(isedge.assignments.keys())
        out -= set(self.arrays.keys())
        out -= set(self.constants.keys())
        # Symbols assigned on interstate edges (loop counters) are internal.
        return out - defined

    def arglist(self) -> Dict[str, Union[Data, typeclass]]:
        """The program's calling signature: non-transient data + free symbols."""
        args: Dict[str, Union[Data, typeclass]] = {}
        for name, desc in sorted(self.arrays.items()):
            if not desc.transient:
                args[name] = desc
        for sym in sorted(self.free_symbols):
            if sym not in args:
                args[sym] = self.symbols.get(sym, dtype_from_numpy("int64"))
        return args

    def input_arrays(self) -> Dict[str, Data]:
        return {n: d for n, d in self.arrays.items() if not d.transient}

    def transients(self) -> Dict[str, Data]:
        return {n: d for n, d in self.arrays.items() if d.transient}

    # ------------------------------------------------------------------ #
    # Copying, serialization, validation
    # ------------------------------------------------------------------ #
    def clone(self, new_name: Optional[str] = None) -> "SDFG":
        """Deep copy of the program.  Node guids are preserved, so the copy
        can be diffed against the original after transforming it."""
        out = copy.deepcopy(self)
        if new_name:
            out.name = new_name
        return out

    def validate(self) -> None:
        from repro.sdfg.validation import validate_sdfg

        validate_sdfg(self)

    def to_dict(self) -> Dict:
        from repro.sdfg.serialize import sdfg_to_dict

        return sdfg_to_dict(self)

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, d: Dict) -> "SDFG":
        from repro.sdfg.serialize import sdfg_from_dict

        return sdfg_from_dict(d)

    @classmethod
    def from_json(cls, text: str) -> "SDFG":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json(indent=2))

    @classmethod
    def load(cls, path: str) -> "SDFG":
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_json(f.read())

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"SDFG({self.name!r}, {len(self.states())} states, "
            f"{len(self.arrays)} containers)"
        )
