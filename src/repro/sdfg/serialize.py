"""JSON (de)serialization of SDFGs.

Serialization is used to persist extracted cutouts as fully reproducible test
cases (together with the fault-inducing inputs), and by tests to check that a
program round-trips losslessly.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.sdfg.data import data_from_dict
from repro.sdfg.dtypes import ScheduleType, StorageType
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFGNode,
    Node,
    Tasklet,
)
from repro.sdfg.sdfg import SDFG, InterstateEdge
from repro.sdfg.state import SDFGState
from repro.symbolic.ranges import Range

__all__ = [
    "sdfg_to_dict",
    "sdfg_from_dict",
    "sdfg_to_json",
    "sdfg_from_json",
    "node_to_dict",
    "node_from_dict",
]


def sdfg_to_json(sdfg: "SDFG") -> str:
    """Serialize an SDFG to a JSON string.

    The sweep pipeline ships custom (non-suite) workloads to worker
    processes as JSON strings, since SDFG object graphs are not guaranteed
    to be picklable across process boundaries."""
    return json.dumps(sdfg_to_dict(sdfg))


def sdfg_from_json(text: str) -> "SDFG":
    """Deserialize an SDFG from a JSON string."""
    return sdfg_from_dict(json.loads(text))


def node_to_dict(node: Node, node_id: int) -> Dict:
    """Serialize a dataflow node."""
    base = {
        "id": node_id,
        "guid": node.guid,
        "label": node.label,
        "in_connectors": sorted(node.in_connectors),
        "out_connectors": sorted(node.out_connectors),
    }
    if isinstance(node, AccessNode):
        base["type"] = "AccessNode"
        base["data"] = node.data
    elif isinstance(node, Tasklet):
        base["type"] = "Tasklet"
        base["code"] = node.code
        base["language"] = node.language
        base["side_effect_callback"] = node.side_effect_callback
    elif isinstance(node, MapEntry):
        base["type"] = "MapEntry"
        base["map"] = _map_to_dict(node.map)
    elif isinstance(node, MapExit):
        base["type"] = "MapExit"
        base["map"] = _map_to_dict(node.map)
    elif isinstance(node, NestedSDFGNode):
        base["type"] = "NestedSDFG"
        base["sdfg"] = sdfg_to_dict(node.sdfg)
        base["symbol_mapping"] = {k: str(v) for k, v in node.symbol_mapping.items()}
    else:  # pragma: no cover - future node types
        raise TypeError(f"Cannot serialize node of type {type(node).__name__}")
    return base


def _map_to_dict(m: Map) -> Dict:
    return {
        "label": m.label,
        "params": list(m.params),
        "ranges": [str(r) for r in m.ranges],
        "schedule": m.schedule.value,
    }


def _map_from_dict(d: Dict) -> Map:
    return Map(
        d["label"],
        d["params"],
        [Range.from_string(r) for r in d["ranges"]],
        ScheduleType(d.get("schedule", "Sequential")),
    )


def node_from_dict(d: Dict, map_registry: Dict[int, Map]) -> Node:
    """Deserialize a dataflow node.  ``map_registry`` shares Map objects
    between matching entry/exit pairs (keyed by the entry node guid)."""
    ntype = d["type"]
    if ntype == "AccessNode":
        node: Node = AccessNode(d["data"])
    elif ntype == "Tasklet":
        node = Tasklet(
            d["label"],
            d["in_connectors"],
            d["out_connectors"],
            d["code"],
            language=d.get("language", "python"),
            side_effect_callback=d.get("side_effect_callback", False),
        )
    elif ntype in ("MapEntry", "MapExit"):
        key = (d["map"]["label"], tuple(d["map"]["params"]), tuple(d["map"]["ranges"]))
        m = map_registry.get(key)
        if m is None:
            m = _map_from_dict(d["map"])
            map_registry[key] = m
        node = MapEntry(m) if ntype == "MapEntry" else MapExit(m)
    elif ntype == "NestedSDFG":
        node = NestedSDFGNode(
            d["label"],
            sdfg_from_dict(d["sdfg"]),
            d["in_connectors"],
            d["out_connectors"],
            d.get("symbol_mapping"),
        )
    else:
        raise TypeError(f"Cannot deserialize node of type {ntype}")
    node.guid = d.get("guid", node.guid)
    node.in_connectors = set(d.get("in_connectors", []))
    node.out_connectors = set(d.get("out_connectors", []))
    node.label = d.get("label", node.label)
    return node


def state_to_dict(state: SDFGState) -> Dict:
    nodes = state.nodes()
    node_ids = {node: i for i, node in enumerate(nodes)}
    return {
        "label": state.label,
        "nodes": [node_to_dict(n, node_ids[n]) for n in nodes],
        "edges": [
            {
                "src": node_ids[e.src],
                "dst": node_ids[e.dst],
                "src_conn": e.src_conn,
                "dst_conn": e.dst_conn,
                "memlet": e.data.to_dict() if e.data is not None else None,
            }
            for e in state.edges()
        ],
    }


def state_from_dict(d: Dict, sdfg: SDFG) -> SDFGState:
    state = SDFGState(d["label"], sdfg)
    map_registry: Dict = {}
    nodes_by_id: Dict[int, Node] = {}
    for nd in d["nodes"]:
        node = node_from_dict(nd, map_registry)
        nodes_by_id[nd["id"]] = node
        state.add_node(node)
    for ed in d["edges"]:
        memlet = Memlet.from_dict(ed["memlet"]) if ed["memlet"] is not None else Memlet.empty()
        state.graph.add_edge(
            nodes_by_id[ed["src"]],
            nodes_by_id[ed["dst"]],
            memlet,
            ed.get("src_conn"),
            ed.get("dst_conn"),
        )
    return state


def sdfg_to_dict(sdfg: SDFG) -> Dict:
    states = sdfg.states()
    state_ids = {s: i for i, s in enumerate(states)}
    return {
        "type": "SDFG",
        "name": sdfg.name,
        "arrays": {name: desc.to_dict() for name, desc in sdfg.arrays.items()},
        "symbols": {name: t.name for name, t in sdfg.symbols.items()},
        "constants": dict(sdfg.constants),
        "start_state": state_ids[sdfg.start_state] if states else None,
        "states": [state_to_dict(s) for s in states],
        "edges": [
            {
                "src": state_ids[e.src],
                "dst": state_ids[e.dst],
                "data": e.data.to_dict(),
            }
            for e in sdfg.edges()
        ],
    }


def sdfg_from_dict(d: Dict) -> SDFG:
    sdfg = SDFG(d["name"])
    for name, desc in d.get("arrays", {}).items():
        sdfg.arrays[name] = data_from_dict(desc)
    for name, tname in d.get("symbols", {}).items():
        sdfg.add_symbol(name, tname)
    sdfg.constants = dict(d.get("constants", {}))
    states_by_id: Dict[int, SDFGState] = {}
    for i, sd in enumerate(d.get("states", [])):
        state = state_from_dict(sd, sdfg)
        sdfg._states.add_node(state)
        states_by_id[i] = state
    for ed in d.get("edges", []):
        sdfg.add_edge(
            states_by_id[ed["src"]],
            states_by_id[ed["dst"]],
            InterstateEdge.from_dict(ed["data"]),
        )
    if d.get("start_state") is not None and states_by_id:
        sdfg._start_state = states_by_id[d["start_state"]]
    elif states_by_id:
        sdfg._start_state = states_by_id[0]
    return sdfg
