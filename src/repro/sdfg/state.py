"""Dataflow state graphs.

An :class:`SDFGState` is a single dataflow graph: access nodes, tasklets and
map scopes connected by memlet-carrying edges.  States are the nodes of the
program's control-flow state machine (see :mod:`repro.sdfg.sdfg`).

The helpers on this class (``add_mapped_tasklet``, ``add_memlet_path``,
``scope_dict`` ...) mirror the DaCe API surface that both the workload
builders and the transformations rely on.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.sdfg.dtypes import ScheduleType
from repro.sdfg.graph import Edge, GraphError, OrderedMultiDiGraph
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    CodeNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFGNode,
    Node,
    Tasklet,
)
from repro.symbolic.expressions import Expr, sympify
from repro.symbolic.ranges import Range, Subset
from repro.symbolic.simplify import simplify

__all__ = ["SDFGState", "propagate_memlet"]


def propagate_memlet(inner: Memlet, map_obj: Map) -> Memlet:
    """Propagate a memlet out of a map scope.

    The inner subset is a function of the map parameters; the propagated
    (outer) subset is the bounding box obtained by substituting each
    parameter with its range begin and end.  This assumes index expressions
    are monotonically non-decreasing in the map parameters, which holds for
    the affine accesses used throughout this repository.  The propagated
    volume is the inner volume multiplied by the number of map iterations.
    """
    if inner.is_empty or inner.subset is None:
        return inner.clone()
    lo_map = {p: r.begin for p, r in zip(map_obj.params, map_obj.ranges)}
    hi_map = {p: r.end for p, r in zip(map_obj.params, map_obj.ranges)}
    new_ranges = []
    for rng in inner.subset.ranges:
        new_ranges.append(
            Range(
                simplify(rng.begin.subs(lo_map)),
                simplify(rng.end.subs(hi_map)),
                1,
            )
        )
    volume = simplify(inner.volume() * map_obj.num_iterations())
    return Memlet(
        data=inner.data,
        subset=Subset(new_ranges),
        wcr=inner.wcr,
        volume=volume,
        dynamic=inner.dynamic,
    )


class SDFGState:
    """A single dataflow graph (one node of the control-flow state machine)."""

    def __init__(self, label: str, sdfg=None) -> None:
        self.label = label
        self.sdfg = sdfg
        self.graph: OrderedMultiDiGraph[Node, Memlet] = OrderedMultiDiGraph()

    # ------------------------------------------------------------------ #
    # Node/edge management
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> Node:
        return self.graph.add_node(node)

    def remove_node(self, node: Node) -> None:
        self.graph.remove_node(node)

    def add_access(self, data: str) -> AccessNode:
        """Add an access node for a named data container."""
        node = AccessNode(data)
        self.graph.add_node(node)
        return node

    def add_read(self, data: str) -> AccessNode:
        return self.add_access(data)

    def add_write(self, data: str) -> AccessNode:
        return self.add_access(data)

    def add_tasklet(
        self,
        label: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        code: str,
        side_effect_callback: bool = False,
    ) -> Tasklet:
        t = Tasklet(label, inputs, outputs, code, side_effect_callback=side_effect_callback)
        self.graph.add_node(t)
        return t

    def add_map(
        self,
        label: str,
        ranges: Dict[str, Union[str, Tuple, Range]],
        schedule: ScheduleType = ScheduleType.Sequential,
    ) -> Tuple[MapEntry, MapExit]:
        """Add an (empty) map scope; returns its entry and exit nodes."""
        m = Map(label, list(ranges.keys()), list(ranges.values()), schedule)
        entry, exit_ = MapEntry(m), MapExit(m)
        self.graph.add_node(entry)
        self.graph.add_node(exit_)
        return entry, exit_

    def add_nested_sdfg(
        self,
        sdfg,
        inputs: Sequence[str],
        outputs: Sequence[str],
        symbol_mapping: Optional[Dict[str, Union[str, int, Expr]]] = None,
        label: Optional[str] = None,
    ) -> NestedSDFGNode:
        node = NestedSDFGNode(
            label or sdfg.name, sdfg, inputs, outputs, symbol_mapping
        )
        self.graph.add_node(node)
        return node

    def add_edge(
        self,
        src: Node,
        src_conn: Optional[str],
        dst: Node,
        dst_conn: Optional[str],
        memlet: Memlet,
    ) -> Edge[Node, Memlet]:
        if src_conn is not None:
            src.add_out_connector(src_conn)
        if dst_conn is not None:
            dst.add_in_connector(dst_conn)
        return self.graph.add_edge(src, dst, memlet, src_conn, dst_conn)

    def add_nedge(self, src: Node, dst: Node, memlet: Optional[Memlet] = None) -> Edge:
        """Add an edge without connectors (e.g. access-to-access copies)."""
        return self.graph.add_edge(src, dst, memlet or Memlet.empty(), None, None)

    def remove_edge(self, edge: Edge) -> None:
        self.graph.remove_edge(edge)

    # ------------------------------------------------------------------ #
    # Convenience builders
    # ------------------------------------------------------------------ #
    def add_mapped_tasklet(
        self,
        label: str,
        map_ranges: Dict[str, Union[str, Tuple, Range]],
        inputs: Dict[str, Memlet],
        code: str,
        outputs: Dict[str, Memlet],
        schedule: ScheduleType = ScheduleType.Sequential,
        input_nodes: Optional[Dict[str, AccessNode]] = None,
        output_nodes: Optional[Dict[str, AccessNode]] = None,
        external_edges: bool = True,
    ) -> Tuple[Tasklet, MapEntry, MapExit]:
        """Add ``tasklet`` surrounded by a map scope, fully connected.

        ``inputs`` / ``outputs`` map tasklet connector names to the *inner*
        memlets (i.e. per-iteration accesses as functions of the map
        parameters).  Outer edges to/from access nodes are created with
        propagated memlets when ``external_edges`` is true.
        """
        entry, exit_ = self.add_map(label, map_ranges, schedule)
        tasklet = self.add_tasklet(label, list(inputs.keys()), list(outputs.keys()), code)
        input_nodes = dict(input_nodes or {})
        output_nodes = dict(output_nodes or {})

        if not inputs:
            # Keep the scope connected even without data inputs.
            self.add_nedge(entry, tasklet, Memlet.empty())
        for conn, memlet in inputs.items():
            in_conn = f"IN_{memlet.data}"
            out_conn = f"OUT_{memlet.data}"
            entry.add_in_connector(in_conn)
            entry.add_out_connector(out_conn)
            self.add_edge(entry, out_conn, tasklet, conn, memlet)
            if external_edges:
                node = input_nodes.get(memlet.data)
                if node is None:
                    node = self.add_access(memlet.data)
                    input_nodes[memlet.data] = node
                outer = propagate_memlet(memlet, entry.map)
                self.add_edge(node, None, entry, in_conn, outer)

        if not outputs:
            self.add_nedge(tasklet, exit_, Memlet.empty())
        for conn, memlet in outputs.items():
            in_conn = f"IN_{memlet.data}"
            out_conn = f"OUT_{memlet.data}"
            exit_.add_in_connector(in_conn)
            exit_.add_out_connector(out_conn)
            self.add_edge(tasklet, conn, exit_, in_conn, memlet)
            if external_edges:
                node = output_nodes.get(memlet.data)
                if node is None:
                    node = self.add_access(memlet.data)
                    output_nodes[memlet.data] = node
                outer = propagate_memlet(memlet, entry.map)
                self.add_edge(exit_, out_conn, node, None, outer)

        return tasklet, entry, exit_

    def add_memlet_path(
        self,
        *path_nodes: Node,
        memlet: Memlet,
        src_conn: Optional[str] = None,
        dst_conn: Optional[str] = None,
    ) -> List[Edge]:
        """Connect a chain of nodes through map entries/exits.

        The edge adjacent to the innermost code node carries ``memlet``;
        edges crossing map entry/exit boundaries carry propagated memlets and
        use the ``IN_<data>`` / ``OUT_<data>`` connector convention.
        """
        if len(path_nodes) < 2:
            raise ValueError("add_memlet_path requires at least two nodes")
        edges: List[Edge] = []
        data = memlet.data
        # Determine direction: if the first node is an access/entry chain the
        # innermost edge is the last one; if it starts at a code node the
        # innermost edge is the first one.
        forward = not isinstance(path_nodes[0], (Tasklet, NestedSDFGNode))
        n = len(path_nodes)
        # Pre-compute propagated memlets from innermost to outermost.
        maps_on_path: List[Map] = []
        for node in path_nodes:
            if isinstance(node, (MapEntry, MapExit)):
                maps_on_path.append(node.map)
        # innermost memlet is `memlet`; going outward we propagate over each map.
        for i in range(n - 1):
            u, v = path_nodes[i], path_nodes[i + 1]
            # Number of map boundaries strictly between this edge and the
            # innermost end of the path.
            if forward:
                # Innermost edge is the last edge of the path.
                boundary_nodes = [
                    x for x in path_nodes[i + 1 : n - 1] if isinstance(x, (MapEntry, MapExit))
                ]
            else:
                boundary_nodes = [
                    x for x in path_nodes[1 : i + 1] if isinstance(x, (MapEntry, MapExit))
                ]
            cur = memlet.clone()
            for b in boundary_nodes:
                cur = propagate_memlet(cur, b.map)
            uconn: Optional[str] = None
            vconn: Optional[str] = None
            if isinstance(u, MapEntry):
                uconn = f"OUT_{data}"
                u.add_in_connector(f"IN_{data}")
                u.add_out_connector(uconn)
            elif isinstance(u, MapExit):
                uconn = f"OUT_{data}"
                u.add_in_connector(f"IN_{data}")
                u.add_out_connector(uconn)
            elif isinstance(u, (Tasklet, NestedSDFGNode)):
                uconn = src_conn
            if isinstance(v, MapEntry):
                vconn = f"IN_{data}"
                v.add_in_connector(vconn)
                v.add_out_connector(f"OUT_{data}")
            elif isinstance(v, MapExit):
                vconn = f"IN_{data}"
                v.add_in_connector(vconn)
                v.add_out_connector(f"OUT_{data}")
            elif isinstance(v, (Tasklet, NestedSDFGNode)):
                vconn = dst_conn
            edges.append(self.add_edge(u, uconn, v, vconn, cur))
        return edges

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def nodes(self) -> List[Node]:
        return self.graph.nodes()

    def edges(self) -> List[Edge[Node, Memlet]]:
        return self.graph.edges()

    def in_edges(self, node: Node) -> List[Edge[Node, Memlet]]:
        return self.graph.in_edges(node)

    def out_edges(self, node: Node) -> List[Edge[Node, Memlet]]:
        return self.graph.out_edges(node)

    def all_edges(self, *nodes: Node) -> List[Edge[Node, Memlet]]:
        return self.graph.all_edges(*nodes)

    def data_nodes(self) -> List[AccessNode]:
        return [n for n in self.graph.nodes() if isinstance(n, AccessNode)]

    def access_nodes_for(self, data: str) -> List[AccessNode]:
        return [n for n in self.data_nodes() if n.data == data]

    def source_nodes(self) -> List[Node]:
        return self.graph.source_nodes()

    def sink_nodes(self) -> List[Node]:
        return self.graph.sink_nodes()

    def topological_sort(self) -> List[Node]:
        return self.graph.topological_sort()

    def node_by_guid(self, guid: int) -> Optional[Node]:
        for n in self.graph.nodes():
            if n.guid == guid:
                return n
        return None

    # ------------------------------------------------------------------ #
    # Scopes
    # ------------------------------------------------------------------ #
    def exit_node(self, entry: MapEntry) -> MapExit:
        """The map exit matching a map entry."""
        for n in self.graph.nodes():
            if isinstance(n, MapExit) and n.map is entry.map:
                return n
        raise GraphError(f"No matching MapExit for {entry!r}")

    def entry_node_for_exit(self, exit_: MapExit) -> MapEntry:
        for n in self.graph.nodes():
            if isinstance(n, MapEntry) and n.map is exit_.map:
                return n
        raise GraphError(f"No matching MapEntry for {exit_!r}")

    def scope_dict(self) -> Dict[Node, Optional[MapEntry]]:
        """Map each node to its innermost enclosing map entry (or ``None``)."""
        result: Dict[Node, Optional[MapEntry]] = {}
        try:
            order = self.graph.topological_sort()
        except GraphError:
            order = self.graph.nodes()
        exit_to_entry: Dict[MapExit, MapEntry] = {}
        for n in self.graph.nodes():
            if isinstance(n, MapExit):
                exit_to_entry[n] = self.entry_node_for_exit(n)
        for node in order:
            preds = self.graph.in_edges(node)
            if not preds:
                result[node] = None
                continue
            src = preds[0].src
            if isinstance(src, MapEntry):
                result[node] = src
            elif isinstance(src, MapExit):
                entry = exit_to_entry[src]
                result[node] = result.get(entry)
            else:
                result[node] = result.get(src)
        return result

    def scope_children(self) -> Dict[Optional[MapEntry], List[Node]]:
        """Inverse of :meth:`scope_dict`: scope entry -> direct child nodes."""
        sdict = self.scope_dict()
        out: Dict[Optional[MapEntry], List[Node]] = {}
        for node, scope in sdict.items():
            out.setdefault(scope, []).append(node)
        return out

    def scope_subgraph_nodes(
        self, entry: MapEntry, include_boundary: bool = True
    ) -> List[Node]:
        """All nodes inside a map scope (optionally with entry/exit)."""
        exit_ = self.exit_node(entry)
        sdict = self.scope_dict()
        inner: List[Node] = []
        # A node is in the scope if walking up its scope chain reaches `entry`.
        for node in self.graph.nodes():
            if node is entry or node is exit_:
                continue
            scope = sdict.get(node)
            while scope is not None:
                if scope is entry:
                    inner.append(node)
                    break
                scope = sdict.get(scope)
        if include_boundary:
            return [entry] + inner + [exit_]
        return inner

    def top_level_nodes(self) -> List[Node]:
        """Nodes not enclosed by any map scope."""
        sdict = self.scope_dict()
        return [n for n in self.graph.nodes() if sdict.get(n) is None]

    # ------------------------------------------------------------------ #
    # Read/write sets
    # ------------------------------------------------------------------ #
    def read_memlets(self) -> List[Tuple[str, Memlet]]:
        """All (data, memlet) pairs read in this state.

        A memlet is a read if it leaves an access node of that container
        (directly or through map entries).
        """
        reads: List[Tuple[str, Memlet]] = []
        for e in self.graph.edges():
            m: Memlet = e.data
            if m is None or m.is_empty:
                continue
            dst = e.dst
            if isinstance(dst, (Tasklet, NestedSDFGNode, MapEntry)) and m.data is not None:
                # Only count the innermost read (into a code node) to avoid
                # double counting through scope boundaries.
                if isinstance(dst, (Tasklet, NestedSDFGNode)):
                    reads.append((m.data, m))
            if isinstance(e.src, AccessNode) and isinstance(dst, AccessNode):
                reads.append((m.data, m))
        return reads

    def write_memlets(self) -> List[Tuple[str, Memlet]]:
        """All (data, memlet) pairs written in this state."""
        writes: List[Tuple[str, Memlet]] = []
        for e in self.graph.edges():
            m: Memlet = e.data
            if m is None or m.is_empty:
                continue
            if isinstance(e.src, (Tasklet, NestedSDFGNode)) and m.data is not None:
                writes.append((m.data, m))
            elif isinstance(e.src, AccessNode) and isinstance(e.dst, AccessNode):
                target = m.data if m.other_subset is None else e.dst.data
                subset = m.subset if m.other_subset is None else m.other_subset
                writes.append((e.dst.data, Memlet(e.dst.data, subset, wcr=m.wcr)))
        return writes

    def read_set(self) -> Set[str]:
        """Names of all containers read in this state."""
        out = {d for d, _ in self.read_memlets()}
        # Copies read their source container.
        for e in self.graph.edges():
            if isinstance(e.src, AccessNode) and isinstance(e.dst, AccessNode):
                out.add(e.src.data)
        return out

    def write_set(self) -> Set[str]:
        """Names of all containers written in this state."""
        return {d for d, _ in self.write_memlets()}

    @property
    def free_symbols(self) -> Set[str]:
        out: Set[str] = set()
        for node in self.graph.nodes():
            out |= node.free_symbols
        for e in self.graph.edges():
            if e.data is not None:
                out |= e.data.free_symbols
        # Map parameters are bound inside their scopes.
        for node in self.graph.nodes():
            if isinstance(node, MapEntry):
                out -= set(node.map.params)
        return out

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"SDFGState({self.label!r}, {self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} edges)"
        )
