"""Dataflow graph nodes: access nodes, tasklets and map scopes.

Every node carries a *guid* -- a globally unique identifier that survives
deep copies.  When a program is copied and a transformation is applied to the
copy, nodes that existed before keep their guid while newly created nodes get
fresh ones; the black-box change-isolation analysis (Sec. 3, step 2) uses
this to compute the set of modified nodes between the original and the
transformed graph.
"""

from __future__ import annotations

import copy
import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.sdfg.dtypes import ScheduleType
from repro.symbolic.expressions import Expr, sympify
from repro.symbolic.ranges import Range

ExprLike = Union[Expr, int, str]

__all__ = [
    "Node",
    "AccessNode",
    "CodeNode",
    "Tasklet",
    "Map",
    "MapEntry",
    "MapExit",
    "NestedSDFGNode",
    "next_guid",
]

_guid_counter = itertools.count(1)


def next_guid() -> int:
    """Return a fresh globally unique node identifier."""
    return next(_guid_counter)


class Node:
    """Base class for all dataflow graph nodes."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.guid = next_guid()
        #: Named input connectors (``None``-connector edges are also allowed).
        self.in_connectors: Set[str] = set()
        #: Named output connectors.
        self.out_connectors: Set[str] = set()

    # Deep copies preserve the guid (the copy *is* the same program element);
    # use :meth:`fresh_copy` to create a genuinely new element.
    def __deepcopy__(self, memo) -> "Node":
        cls = self.__class__
        result = cls.__new__(cls)
        memo[id(self)] = result
        for k, v in self.__dict__.items():
            result.__dict__[k] = copy.deepcopy(v, memo)
        return result

    def fresh_copy(self) -> "Node":
        """Deep copy with a *new* guid (represents a new program element)."""
        out = copy.deepcopy(self)
        out.guid = next_guid()
        return out

    def add_in_connector(self, name: str) -> str:
        self.in_connectors.add(name)
        return name

    def add_out_connector(self, name: str) -> str:
        self.out_connectors.add(name)
        return name

    @property
    def free_symbols(self) -> Set[str]:
        return set()

    def fingerprint(self) -> Tuple:
        """A content hashable summary used by graph diffing."""
        return (type(self).__name__, self.label)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"


class AccessNode(Node):
    """A read/write access to a named data container."""

    def __init__(self, data: str) -> None:
        super().__init__(label=data)
        self.data = data

    def fingerprint(self) -> Tuple:
        return ("AccessNode", self.data)

    def __repr__(self) -> str:
        return f"AccessNode({self.data})"


class CodeNode(Node):
    """Base class for nodes that execute code (tasklets, nested programs)."""


class Tasklet(CodeNode):
    """A computation consuming input connectors and producing output connectors.

    ``code`` is a block of Python statements; input connectors are bound as
    local names before execution and output connector values are read back
    afterwards.  A tasklet may be *fine-grained* (scalar connectors inside a
    map) or *coarse-grained* (whole-array connectors, e.g. ``out = A @ B``);
    the interpreter does not distinguish the two.

    ``side_effect_callback`` marks tasklets that call out to opaque library
    or user code; FuzzyFlow cannot capture side effects of such calls and
    emits a warning when they appear in a cutout (Sec. 3.1 / 7.1).
    """

    def __init__(
        self,
        label: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        code: str,
        language: str = "python",
        side_effect_callback: bool = False,
    ) -> None:
        super().__init__(label=label)
        self.in_connectors = set(inputs)
        self.out_connectors = set(outputs)
        self.code = code
        self.language = language
        self.side_effect_callback = bool(side_effect_callback)

    @property
    def free_symbols(self) -> Set[str]:
        # Symbols referenced in tasklet code are discovered lazily by the
        # interpreter; for analysis purposes the code string is opaque.
        return set()

    def fingerprint(self) -> Tuple:
        return (
            "Tasklet",
            self.label,
            tuple(sorted(self.in_connectors)),
            tuple(sorted(self.out_connectors)),
            self.code,
        )

    def __repr__(self) -> str:
        return f"Tasklet({self.label!r})"


class Map:
    """A parametric map scope: a multi-dimensional parallel (or sequential)
    loop nest over named parameters with symbolic ranges."""

    def __init__(
        self,
        label: str,
        params: Sequence[str],
        ranges: Sequence[Union[Range, Tuple, str]],
        schedule: ScheduleType = ScheduleType.Sequential,
    ) -> None:
        if len(params) != len(ranges):
            raise ValueError(
                f"Map '{label}': {len(params)} parameters but {len(ranges)} ranges"
            )
        self.label = label
        self.params: List[str] = list(params)
        self.ranges: List[Range] = [self._as_range(r) for r in ranges]
        self.schedule = schedule

    @staticmethod
    def _as_range(r) -> Range:
        if isinstance(r, Range):
            return r
        if isinstance(r, tuple):
            return Range(*r)
        if isinstance(r, str):
            return Range.from_string(r)
        raise TypeError(f"Cannot interpret {r!r} as a map range")

    @property
    def free_symbols(self) -> Set[str]:
        out: Set[str] = set()
        for r in self.ranges:
            out |= r.free_symbols
        return out - set(self.params)

    def range_for(self, param: str) -> Range:
        return self.ranges[self.params.index(param)]

    def num_iterations(self) -> Expr:
        total = sympify(1)
        for r in self.ranges:
            total = total * r.num_elements()
        return total

    def fingerprint(self) -> Tuple:
        return (
            "Map",
            self.label,
            tuple(self.params),
            tuple(str(r) for r in self.ranges),
            self.schedule.value,
        )

    def __repr__(self) -> str:
        rngs = ", ".join(f"{p}={r}" for p, r in zip(self.params, self.ranges))
        return f"Map({self.label!r}: {rngs}, {self.schedule.value})"


class MapEntry(Node):
    """Scope-opening node of a map.

    Connector convention (borrowed from DaCe): data entering the scope
    arrives on ``IN_<name>`` connectors and is forwarded to the scope body on
    matching ``OUT_<name>`` connectors.
    """

    def __init__(self, map_obj: Map) -> None:
        super().__init__(label=map_obj.label)
        self.map = map_obj

    @property
    def free_symbols(self) -> Set[str]:
        return self.map.free_symbols

    def fingerprint(self) -> Tuple:
        return ("MapEntry",) + self.map.fingerprint()

    def __repr__(self) -> str:
        return f"MapEntry({self.map!r})"


class MapExit(Node):
    """Scope-closing node of a map (shares the :class:`Map` object with its
    entry).  Data leaving the scope arrives on ``IN_<name>`` connectors and is
    forwarded outside on ``OUT_<name>`` connectors."""

    def __init__(self, map_obj: Map) -> None:
        super().__init__(label=map_obj.label)
        self.map = map_obj

    @property
    def free_symbols(self) -> Set[str]:
        return self.map.free_symbols

    def fingerprint(self) -> Tuple:
        return ("MapExit",) + self.map.fingerprint()

    def __repr__(self) -> str:
        return f"MapExit({self.map!r})"


class NestedSDFGNode(CodeNode):
    """A nested program embedded as a single dataflow node.

    Input/output connectors correspond to non-transient containers of the
    nested program; ``symbol_mapping`` maps nested symbols to expressions in
    the enclosing scope.
    """

    def __init__(
        self,
        label: str,
        sdfg,
        inputs: Sequence[str],
        outputs: Sequence[str],
        symbol_mapping: Optional[Dict[str, ExprLike]] = None,
    ) -> None:
        super().__init__(label=label)
        self.sdfg = sdfg
        self.in_connectors = set(inputs)
        self.out_connectors = set(outputs)
        self.symbol_mapping: Dict[str, Expr] = {
            k: sympify(v) for k, v in (symbol_mapping or {}).items()
        }

    def fingerprint(self) -> Tuple:
        return (
            "NestedSDFG",
            self.label,
            tuple(sorted(self.in_connectors)),
            tuple(sorted(self.out_connectors)),
        )

    def __repr__(self) -> str:
        return f"NestedSDFGNode({self.label!r})"
