"""Data descriptors: parametric arrays and scalars.

A data descriptor describes a named data container of the program: its
element type, its (possibly symbolic) shape, whether it is *transient*
(allocated and managed inside the program, invisible outside) and where it is
stored.  Parametric shapes are the key property Table 1 of the paper requires
for generalizing extracted test cases to different input sizes.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sdfg.dtypes import StorageType, dtype_from_numpy, typeclass
from repro.symbolic.expressions import Expr, Integer, Mul, sympify
from repro.symbolic.simplify import simplify

ExprLike = Union[Expr, int, str]

__all__ = ["Data", "Scalar", "Array"]


class Data:
    """Base class for data descriptors."""

    def __init__(
        self,
        dtype: Union[typeclass, str, np.dtype, type],
        transient: bool = False,
        storage: StorageType = StorageType.Default,
    ) -> None:
        self.dtype = dtype_from_numpy(dtype)
        self.transient = bool(transient)
        self.storage = storage

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[Expr, ...]:
        raise NotImplementedError

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def total_size(self) -> Expr:
        """Total number of elements (symbolic)."""
        total: Expr = Integer(1)
        for s in self.shape:
            total = Mul.make(total, s)
        return simplify(total)

    def size_in_bytes(self) -> Expr:
        """Total size in bytes (symbolic)."""
        return simplify(Mul.make(self.total_size(), Integer(self.dtype.bytes)))

    def concrete_shape(self, symbols: Mapping[str, int] | None = None) -> Tuple[int, ...]:
        """Shape with all symbols substituted by concrete values.

        Memoized per symbol valuation: shape evaluation sits on the per-run
        hot path of every backend (transient allocation, argument shape
        checks), and sympify/evaluate costs dwarf the dictionary probe.
        The cache is keyed only by the values of the shape's own free
        symbols, so it is a pure function of its key; ``set_shape``
        invalidates it.
        """
        cached = self.__dict__.get("_shape_cache")
        if cached is None:
            exprs = tuple(sympify(s) for s in self.shape)
            names: Tuple[str, ...] = tuple(
                sorted(set().union(*(e.free_symbols for e in exprs)))
            ) if exprs else ()
            cached = (exprs, names, {})
            self.__dict__["_shape_cache"] = cached
        exprs, names, memo = cached
        try:
            key = (
                tuple((symbols or {})[name] for name in names) if names else ()
            )
            hit = memo.get(key)
        except (KeyError, TypeError):
            # Missing or unhashable symbol values: the uncached evaluation
            # raises (or handles) exactly as before.
            return tuple(int(e.evaluate(symbols)) for e in exprs)
        if hit is None:
            hit = tuple(int(e.evaluate(symbols)) for e in exprs)
            if len(memo) > 128:
                memo.clear()
            memo[key] = hit
        return hit

    @property
    def free_symbols(self) -> set:
        out: set = set()
        for s in self.shape:
            out |= sympify(s).free_symbols
        return out

    def clone(self) -> "Data":
        return copy.deepcopy(self)

    def allocate(self, symbols: Mapping[str, int] | None = None) -> np.ndarray:
        """Allocate a zero-initialized NumPy buffer for this descriptor."""
        raise NotImplementedError

    def validate_value(self, value) -> None:
        """Check a concrete value against this descriptor (dtype only)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "type": type(self).__name__,
            "dtype": self.dtype.name,
            "transient": self.transient,
            "storage": self.storage.value,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_dict()})"


class Scalar(Data):
    """A single scalar value (e.g. a size parameter or a scaling factor)."""

    def __init__(
        self,
        dtype: Union[typeclass, str, np.dtype, type],
        transient: bool = False,
        storage: StorageType = StorageType.Default,
    ) -> None:
        super().__init__(dtype, transient, storage)

    @property
    def shape(self) -> Tuple[Expr, ...]:
        return (Integer(1),)

    def allocate(self, symbols: Mapping[str, int] | None = None) -> np.ndarray:
        return np.zeros((1,), dtype=self.dtype.as_numpy())

    def validate_value(self, value) -> None:
        arr = np.asarray(value)
        if arr.size != 1:
            raise ValueError(f"Scalar value must have a single element, got {arr.size}")

    def to_dict(self) -> Dict:
        d = super().to_dict()
        d["shape"] = ["1"]
        return d

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Scalar)
            and self.dtype == other.dtype
            and self.transient == other.transient
            and self.storage == other.storage
        )

    def __hash__(self) -> int:
        return hash(("Scalar", self.dtype, self.transient, self.storage))


class Array(Data):
    """A multi-dimensional array with a parametric shape."""

    def __init__(
        self,
        dtype: Union[typeclass, str, np.dtype, type],
        shape: Sequence[ExprLike],
        transient: bool = False,
        storage: StorageType = StorageType.Default,
    ) -> None:
        super().__init__(dtype, transient, storage)
        if not shape:
            raise ValueError("Array shape must have at least one dimension")
        self._shape: Tuple[Expr, ...] = tuple(sympify(s) for s in shape)

    @property
    def shape(self) -> Tuple[Expr, ...]:
        return self._shape

    def set_shape(self, shape: Sequence[ExprLike]) -> None:
        """Replace the shape (used when shrinking cutout containers)."""
        if not shape:
            raise ValueError("Array shape must have at least one dimension")
        self._shape = tuple(sympify(s) for s in shape)
        self.__dict__.pop("_shape_cache", None)

    def allocate(self, symbols: Mapping[str, int] | None = None) -> np.ndarray:
        shape = self.concrete_shape(symbols)
        if any(s <= 0 for s in shape):
            raise ValueError(
                f"Cannot allocate array with non-positive shape {shape}"
            )
        return np.zeros(shape, dtype=self.dtype.as_numpy())

    def validate_value(self, value) -> None:
        arr = np.asarray(value)
        if arr.ndim != self.ndim:
            raise ValueError(
                f"Array value has {arr.ndim} dimensions, descriptor expects {self.ndim}"
            )

    def to_dict(self) -> Dict:
        d = super().to_dict()
        d["shape"] = [str(s) for s in self._shape]
        return d

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Array)
            and self.dtype == other.dtype
            and self._shape == other._shape
            and self.transient == other.transient
            and self.storage == other.storage
        )

    def __hash__(self) -> int:
        return hash(("Array", self.dtype, self._shape, self.transient, self.storage))


def data_from_dict(d: Dict) -> Data:
    """Reconstruct a data descriptor from its dictionary form."""
    dtype = d["dtype"]
    transient = bool(d.get("transient", False))
    storage = StorageType(d.get("storage", "Default"))
    if d["type"] == "Scalar":
        return Scalar(dtype, transient=transient, storage=storage)
    if d["type"] == "Array":
        return Array(dtype, d["shape"], transient=transient, storage=storage)
    raise ValueError(f"Unknown data descriptor type {d['type']!r}")
