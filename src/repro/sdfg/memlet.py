"""Memlets: annotated data-movement edges.

A memlet names the data container being moved, the exact subset accessed (a
:class:`~repro.symbolic.ranges.Subset` with symbolic bounds), an optional
write-conflict resolution (reduction) and an optional ``other_subset`` used
for container-to-container copies.  The data volume of a memlet -- the number
of elements moved across the edge -- is what the minimum input-flow cut uses
as edge capacity (Sec. 4 of the paper).
"""

from __future__ import annotations

import copy
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.symbolic.expressions import Expr, sympify
from repro.symbolic.ranges import Subset
from repro.symbolic.simplify import simplify

ExprLike = Union[Expr, int, str]

__all__ = ["Memlet"]


class Memlet:
    """Data movement annotation attached to a dataflow edge."""

    __slots__ = ("data", "subset", "other_subset", "wcr", "_volume", "dynamic")

    def __init__(
        self,
        data: Optional[str] = None,
        subset: Optional[Union[Subset, str, Sequence]] = None,
        other_subset: Optional[Union[Subset, str, Sequence]] = None,
        wcr: Optional[str] = None,
        volume: Optional[ExprLike] = None,
        dynamic: bool = False,
    ) -> None:
        #: Name of the data container being accessed (``None`` for empty
        #: memlets, which only express ordering dependencies).
        self.data = data
        self.subset = self._as_subset(subset)
        self.other_subset = self._as_subset(other_subset)
        #: Write-conflict resolution: one of ``sum``, ``prod``, ``min``,
        #: ``max`` or ``None`` for plain assignment.
        self.wcr = wcr
        #: Whether the number of accessed elements is data-dependent (e.g.
        #: indirect accesses); treated conservatively by the analyses.
        self.dynamic = bool(dynamic)
        self._volume = sympify(volume) if volume is not None else None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_subset(value) -> Optional[Subset]:
        if value is None:
            return None
        if isinstance(value, Subset):
            return value
        if isinstance(value, str):
            return Subset.from_string(value)
        return Subset(value)

    @classmethod
    def simple(cls, data: str, subset: Union[str, Subset, Sequence], **kwargs) -> "Memlet":
        """Convenience constructor: ``Memlet.simple("A", "i, 0:N-1")``."""
        return cls(data=data, subset=subset, **kwargs)

    @classmethod
    def full(cls, data: str, shape: Sequence[ExprLike], **kwargs) -> "Memlet":
        """A memlet covering an entire container of the given shape."""
        return cls(data=data, subset=Subset.full(shape), **kwargs)

    @classmethod
    def empty(cls) -> "Memlet":
        """An empty memlet (pure ordering dependency, no data movement)."""
        return cls(data=None, subset=None)

    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        return self.data is None

    def volume(self) -> Expr:
        """Symbolic number of elements moved across this edge."""
        if self._volume is not None:
            return self._volume
        if self.subset is None:
            return sympify(0)
        return self.subset.num_elements()

    def volume_at(self, bindings: Mapping[str, int] | None = None) -> int:
        """Concrete number of elements moved."""
        return int(self.volume().evaluate(bindings))

    def set_volume(self, volume: ExprLike) -> None:
        self._volume = sympify(volume)

    @property
    def free_symbols(self) -> set:
        out: set = set()
        if self.subset is not None:
            out |= self.subset.free_symbols
        if self.other_subset is not None:
            out |= self.other_subset.free_symbols
        if self._volume is not None:
            out |= self._volume.free_symbols
        return out

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Memlet":
        """Substitute symbols in all subsets and the volume."""
        out = Memlet(
            data=self.data,
            subset=self.subset.subs(mapping) if self.subset is not None else None,
            other_subset=(
                self.other_subset.subs(mapping)
                if self.other_subset is not None
                else None
            ),
            wcr=self.wcr,
            volume=self._volume.subs(mapping) if self._volume is not None else None,
            dynamic=self.dynamic,
        )
        return out

    def clone(self) -> "Memlet":
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "data": self.data,
            "subset": str(self.subset) if self.subset is not None else None,
            "other_subset": (
                str(self.other_subset) if self.other_subset is not None else None
            ),
            "wcr": self.wcr,
            "volume": str(self._volume) if self._volume is not None else None,
            "dynamic": self.dynamic,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "Memlet":
        return cls(
            data=d.get("data"),
            subset=d.get("subset"),
            other_subset=d.get("other_subset"),
            wcr=d.get("wcr"),
            volume=d.get("volume"),
            dynamic=bool(d.get("dynamic", False)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memlet):
            return NotImplemented
        return (
            self.data == other.data
            and self.subset == other.subset
            and self.other_subset == other.other_subset
            and self.wcr == other.wcr
            and self.dynamic == other.dynamic
        )

    def __hash__(self) -> int:
        return hash((self.data, self.subset, self.other_subset, self.wcr))

    def __str__(self) -> str:
        if self.is_empty:
            return "Memlet(empty)"
        wcr = f" (wcr: {self.wcr})" if self.wcr else ""
        other = f" -> [{self.other_subset}]" if self.other_subset is not None else ""
        return f"{self.data}[{self.subset}]{other}{wcr}"

    def __repr__(self) -> str:
        return f"Memlet({self})"
