"""Structural validation of SDFGs.

Validation catches malformed programs early: dangling connectors, memlets
referring to unknown containers, subset dimensionality mismatches, map scopes
without matching exits, unreachable states, and cycles inside dataflow
states.  The differential-testing harness also relies on validation to detect
transformations that generate *invalid code* (one of the failure classes in
Table 2 of the paper).
"""

from __future__ import annotations

from typing import List

from repro.sdfg.nodes import (
    AccessNode,
    MapEntry,
    MapExit,
    NestedSDFGNode,
    Tasklet,
)
from repro.sdfg.graph import GraphError

__all__ = ["InvalidSDFGError", "validate_sdfg", "validate_state"]


class InvalidSDFGError(Exception):
    """Raised when an SDFG fails structural validation."""

    def __init__(self, message: str, sdfg=None, state=None, node=None) -> None:
        self.sdfg = sdfg
        self.state = state
        self.node = node
        location = []
        if sdfg is not None:
            location.append(f"sdfg '{sdfg.name}'")
        if state is not None:
            location.append(f"state '{state.label}'")
        if node is not None:
            location.append(f"node {node!r}")
        loc = " in " + ", ".join(location) if location else ""
        super().__init__(message + loc)


def validate_sdfg(sdfg) -> None:
    """Validate a whole SDFG; raises :class:`InvalidSDFGError` on problems."""
    if not sdfg.states():
        raise InvalidSDFGError("SDFG has no states", sdfg=sdfg)

    # Start state must exist and be part of the graph.
    start = sdfg.start_state
    if start not in sdfg.states():
        raise InvalidSDFGError("Start state is not part of the SDFG", sdfg=sdfg)

    # All states reachable from the start state.
    reachable = set(id(s) for s in sdfg._states.bfs_nodes([start]))
    for state in sdfg.states():
        if id(state) not in reachable:
            raise InvalidSDFGError(
                f"State '{state.label}' is unreachable from the start state",
                sdfg=sdfg,
            )

    # Interstate edge symbols must not collide with data container names
    # (assignments to containers are not allowed).
    for e in sdfg.edges():
        for sym in e.data.assignments:
            if sym in sdfg.arrays:
                raise InvalidSDFGError(
                    f"Interstate edge assigns to data container '{sym}'", sdfg=sdfg
                )

    for state in sdfg.states():
        validate_state(sdfg, state)


def validate_state(sdfg, state) -> None:
    """Validate a single dataflow state."""
    # Dataflow must be acyclic.
    try:
        state.graph.topological_sort()
    except GraphError as exc:
        raise InvalidSDFGError(
            f"Dataflow graph contains a cycle: {exc}", sdfg=sdfg, state=state
        ) from exc

    entries = [n for n in state.nodes() if isinstance(n, MapEntry)]
    exits = [n for n in state.nodes() if isinstance(n, MapExit)]

    # Every entry has exactly one exit with the same map object and vice versa.
    entry_maps = [id(n.map) for n in entries]
    exit_maps = [id(n.map) for n in exits]
    for n in entries:
        if exit_maps.count(id(n.map)) != 1:
            raise InvalidSDFGError(
                "Map entry without exactly one matching exit",
                sdfg=sdfg, state=state, node=n,
            )
    for n in exits:
        if entry_maps.count(id(n.map)) != 1:
            raise InvalidSDFGError(
                "Map exit without exactly one matching entry",
                sdfg=sdfg, state=state, node=n,
            )

    # Map ranges must have distinct parameters.
    for n in entries:
        if len(set(n.map.params)) != len(n.map.params):
            raise InvalidSDFGError(
                f"Map has duplicate parameters {n.map.params}",
                sdfg=sdfg, state=state, node=n,
            )

    sdict = state.scope_dict()

    for node in state.nodes():
        # Access nodes must refer to registered containers.
        if isinstance(node, AccessNode):
            if node.data not in sdfg.arrays:
                raise InvalidSDFGError(
                    f"Access node refers to unknown container '{node.data}'",
                    sdfg=sdfg, state=state, node=node,
                )
        # Isolated tasklets are almost always a transformation bug.
        if isinstance(node, Tasklet):
            if not state.in_edges(node) and not state.out_edges(node):
                raise InvalidSDFGError(
                    "Tasklet is disconnected from the dataflow graph",
                    sdfg=sdfg, state=state, node=node,
                )
            if not node.out_connectors and not state.out_edges(node):
                raise InvalidSDFGError(
                    "Tasklet produces no outputs",
                    sdfg=sdfg, state=state, node=node,
                )

    for edge in state.edges():
        memlet = edge.data
        # Connector consistency.
        if edge.src_conn is not None and edge.src_conn not in edge.src.out_connectors:
            raise InvalidSDFGError(
                f"Edge uses undeclared source connector '{edge.src_conn}'",
                sdfg=sdfg, state=state, node=edge.src,
            )
        if edge.dst_conn is not None and edge.dst_conn not in edge.dst.in_connectors:
            raise InvalidSDFGError(
                f"Edge uses undeclared destination connector '{edge.dst_conn}'",
                sdfg=sdfg, state=state, node=edge.dst,
            )
        if memlet is None or memlet.is_empty:
            continue
        # Memlet data must exist.
        if memlet.data not in sdfg.arrays:
            raise InvalidSDFGError(
                f"Memlet refers to unknown container '{memlet.data}'",
                sdfg=sdfg, state=state,
            )
        desc = sdfg.arrays[memlet.data]
        if memlet.subset is not None and memlet.subset.dims != len(desc.shape):
            raise InvalidSDFGError(
                f"Memlet subset [{memlet.subset}] has {memlet.subset.dims} "
                f"dimensions but container '{memlet.data}' has {len(desc.shape)}",
                sdfg=sdfg, state=state,
            )
        if memlet.wcr is not None and memlet.wcr not in ("sum", "prod", "min", "max"):
            raise InvalidSDFGError(
                f"Unknown write-conflict resolution '{memlet.wcr}'",
                sdfg=sdfg, state=state,
            )
        # Edges between two access nodes with other_subset must match dims of dst.
        if (
            isinstance(edge.src, AccessNode)
            and isinstance(edge.dst, AccessNode)
            and memlet.other_subset is not None
        ):
            dst_desc = sdfg.arrays[edge.dst.data]
            if memlet.other_subset.dims != len(dst_desc.shape):
                raise InvalidSDFGError(
                    f"Copy destination subset [{memlet.other_subset}] does not "
                    f"match container '{edge.dst.data}' dimensionality",
                    sdfg=sdfg, state=state,
                )

    # Scope consistency: edges crossing into a map scope must go through the
    # entry node; edges leaving must go through the exit.
    for edge in state.edges():
        src_scope = sdict.get(edge.src)
        dst_scope = sdict.get(edge.dst)
        if isinstance(edge.src, MapEntry):
            src_scope = edge.src
        if isinstance(edge.dst, MapExit):
            dst_scope = edge.dst.map
            # Normalize: the destination scope of an edge into an exit is the
            # scope the exit closes.
            dst_scope = state.entry_node_for_exit(edge.dst)
        if src_scope is not dst_scope and not isinstance(
            edge.dst, MapEntry
        ) and not isinstance(edge.src, MapExit):
            # Allowed: edges into an entry (outside -> boundary) and out of an
            # exit (boundary -> outside); anything else crossing scopes is
            # invalid.
            raise InvalidSDFGError(
                f"Edge {edge!r} crosses a map scope boundary without passing "
                "through the entry/exit node",
                sdfg=sdfg, state=state,
            )
