"""Type classes, storage locations and schedule types for the dataflow IR.

``typeclass`` wraps a NumPy dtype; :data:`float64`, :data:`float32`,
:data:`int32`, :data:`int64`, :data:`uint8` and :data:`bool_` are the
instances used throughout the repository.

:class:`StorageType` and :class:`ScheduleType` mirror the (much larger) DaCe
enumerations just enough to express the transformations evaluated in the
paper: host vs. (simulated) device memory, and sequential vs. parallel vs.
device map schedules.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Union

import numpy as np

__all__ = [
    "typeclass",
    "float32",
    "float64",
    "int8",
    "int32",
    "int64",
    "uint8",
    "bool_",
    "StorageType",
    "ScheduleType",
    "DTYPE_REGISTRY",
    "dtype_from_numpy",
    "REDUCTION_IDENTITIES",
    "reduction_function",
]


class typeclass:
    """A scalar element type backed by a NumPy dtype."""

    __slots__ = ("name", "nptype")

    def __init__(self, name: str, nptype: np.dtype) -> None:
        self.name = name
        self.nptype = np.dtype(nptype)

    @property
    def bytes(self) -> int:
        """Size of one element in bytes."""
        return self.nptype.itemsize

    @property
    def is_float(self) -> bool:
        return np.issubdtype(self.nptype, np.floating)

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.nptype, np.integer)

    @property
    def is_bool(self) -> bool:
        return self.nptype == np.dtype(bool)

    def as_numpy(self) -> np.dtype:
        return self.nptype

    def __call__(self, value: Any) -> Any:
        """Cast a Python value to this type (NumPy scalar)."""
        return self.nptype.type(value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, typeclass):
            return self.nptype == other.nptype
        if isinstance(other, (str, np.dtype, type)):
            try:
                return self.nptype == np.dtype(other)
            except TypeError:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("typeclass", self.nptype.str))

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"typeclass({self.name})"


float32 = typeclass("float32", np.float32)
float64 = typeclass("float64", np.float64)
int8 = typeclass("int8", np.int8)
int32 = typeclass("int32", np.int32)
int64 = typeclass("int64", np.int64)
uint8 = typeclass("uint8", np.uint8)
bool_ = typeclass("bool", np.bool_)

DTYPE_REGISTRY: Dict[str, typeclass] = {
    t.name: t for t in (float32, float64, int8, int32, int64, uint8, bool_)
}


def dtype_from_numpy(dtype: Union[np.dtype, str, type, typeclass]) -> typeclass:
    """Look up (or build) the typeclass matching a NumPy dtype."""
    if isinstance(dtype, typeclass):
        return dtype
    npdt = np.dtype(dtype)
    for t in DTYPE_REGISTRY.values():
        if t.nptype == npdt:
            return t
    t = typeclass(npdt.name, npdt)
    DTYPE_REGISTRY[t.name] = t
    return t


class StorageType(enum.Enum):
    """Where a data container lives.

    The GPU storage types model the *simulated* accelerator used by the
    GPU-kernel-extraction case study (Sec. 6.4): device containers are
    separate host-side NumPy buffers, and host<->device copies are explicit
    copy edges, which is exactly the structure whose bugs the paper reports.
    """

    Default = "Default"
    CPU_Heap = "CPU_Heap"
    Register = "Register"
    GPU_Global = "GPU_Global"
    GPU_Shared = "GPU_Shared"

    @property
    def is_device(self) -> bool:
        return self in (StorageType.GPU_Global, StorageType.GPU_Shared)


class ScheduleType(enum.Enum):
    """How a map scope is scheduled."""

    Sequential = "Sequential"
    CPU_Multicore = "CPU_Multicore"
    GPU_Device = "GPU_Device"
    Vectorized = "Vectorized"

    @property
    def is_parallel(self) -> bool:
        return self in (ScheduleType.CPU_Multicore, ScheduleType.GPU_Device)


# ---------------------------------------------------------------------- #
# Write-conflict resolution (reductions on memlets)
# ---------------------------------------------------------------------- #
REDUCTION_IDENTITIES: Dict[str, float] = {
    "sum": 0.0,
    "prod": 1.0,
    "max": -np.inf,
    "min": np.inf,
}


def reduction_function(wcr: str):
    """Return a binary NumPy ufunc-like callable for a WCR name."""
    table = {
        "sum": np.add,
        "prod": np.multiply,
        "max": np.maximum,
        "min": np.minimum,
    }
    if wcr not in table:
        raise ValueError(f"Unknown write-conflict resolution '{wcr}'")
    return table[wcr]
