"""The parametric dataflow intermediate representation.

This subpackage provides a self-contained re-implementation of the subset of
the Stateful Dataflow Multigraph (SDFG) representation that FuzzyFlow's
analyses rely on (see Table 1 of the paper):

* true per-operation read/write sets via memlets,
* parametric container shapes and access subsets,
* explicit transient/persistent data lifetime,
* hierarchical scopes (map scopes) and a control-flow state machine.
"""

from repro.sdfg.data import Array, Data, Scalar
from repro.sdfg.dtypes import (
    ScheduleType,
    StorageType,
    bool_,
    float32,
    float64,
    int32,
    int64,
    typeclass,
)
from repro.sdfg.graph import Edge, GraphError, OrderedMultiDiGraph
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    CodeNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFGNode,
    Node,
    Tasklet,
)
from repro.sdfg.sdfg import SDFG, InterstateEdge, SDFGError
from repro.sdfg.state import SDFGState, propagate_memlet
from repro.sdfg.validation import InvalidSDFGError, validate_sdfg

__all__ = [
    "SDFG",
    "SDFGState",
    "SDFGError",
    "InterstateEdge",
    "InvalidSDFGError",
    "validate_sdfg",
    "propagate_memlet",
    "Array",
    "Scalar",
    "Data",
    "Memlet",
    "Node",
    "AccessNode",
    "CodeNode",
    "Tasklet",
    "Map",
    "MapEntry",
    "MapExit",
    "NestedSDFGNode",
    "Edge",
    "OrderedMultiDiGraph",
    "GraphError",
    "typeclass",
    "float32",
    "float64",
    "int32",
    "int64",
    "bool_",
    "StorageType",
    "ScheduleType",
]
