"""Trace-file utilities: ``python -m repro.telemetry``.

* ``--validate PATH``  check a JSONL trace against the span schema
  (exit 1 listing the first violations otherwise) -- what ``make smoke``
  runs on the traced mini sweep;
* ``--chrome OUT PATH``  wrap a JSONL trace into a Chrome trace-event
  document loadable in ``chrome://tracing`` / https://ui.perfetto.dev;
* ``--summary PATH``  per-span-name count / total-duration table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.telemetry.trace import export_chrome, read_events, validate_event


def _validate(path: str, max_errors: int = 10) -> int:
    count = 0
    errors: List[str] = []
    try:
        for lineno, event in read_events(path):
            count += 1
            problem = validate_event(event)
            if problem is not None:
                errors.append(f"{path}:{lineno}: {problem}")
                if len(errors) >= max_errors:
                    break
    except (OSError, ValueError) as exc:
        print(f"trace validation FAILED: {exc}", file=sys.stderr)
        return 1
    if errors:
        print("trace validation FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    if count == 0:
        print(f"trace validation FAILED: {path} holds no events", file=sys.stderr)
        return 1
    print(f"trace OK: {count} event(s) in {path} conform to the span schema")
    return 0


def _summary(path: str) -> int:
    totals: Dict[str, Tuple[int, float]] = {}
    for _, event in read_events(path):
        n, dur = totals.get(event["name"], (0, 0.0))
        totals[event["name"]] = (n + 1, dur + event.get("dur", 0.0))
    print(f"{'span':<28}{'count':>10}{'total ms':>14}")
    for name in sorted(totals, key=lambda k: -totals[k][1]):
        n, dur = totals[name]
        print(f"{name:<28}{n:>10}{dur / 1e3:>14.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Validate, convert or summarize JSONL span traces.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--validate", metavar="PATH",
        help="check a JSONL trace against the span schema",
    )
    group.add_argument(
        "--chrome", nargs=2, metavar=("OUT", "PATH"),
        help="convert a JSONL trace to a Chrome trace-event file",
    )
    group.add_argument(
        "--summary", metavar="PATH",
        help="per-span-name count/duration table",
    )
    args = parser.parse_args(argv)
    if args.validate:
        return _validate(args.validate)
    if args.chrome:
        out, src = args.chrome
        count = export_chrome(src, out)
        print(f"wrote {count} event(s) to {out}")
        return 0
    return _summary(args.summary)


if __name__ == "__main__":
    raise SystemExit(main())
