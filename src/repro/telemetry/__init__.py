"""Opt-in, zero-dependency observability for the verification pipeline.

Three cooperating pieces, threaded through every layer of the system:

* :mod:`repro.telemetry.clock` -- the **clock seam**.  The only module
  (outside benchmarks) allowed to call ``time.monotonic`` /
  ``time.perf_counter`` (lint rule 5); everything timing-dependent
  injects or imports its clock from here, so tests drive time
  deterministically.
* :mod:`repro.telemetry.trace` -- the **span tracer**.  Context-manager
  spans over the analyze -> plan -> codegen -> execute prepare phases,
  per-trial fuzzing, per-state/per-scope execution and native
  compile/link steps; JSONL output that doubles as Chrome trace events.
  Disabled (the default) it allocates nothing.
* :mod:`repro.telemetry.metrics` -- the **metrics registry**.  Counters,
  gauges and fixed-log-bucket histograms for scope-lowering outcomes
  (keyed by the plan IR's rejection-reason strings), fusion chain
  lengths, cache hit/miss/stale/corrupt per tier, batch-vs-serial trial
  counts, crash-resample retries and worker latency EWMAs; snapshots are
  plain JSON that piggybacks worker result frames, merges fleet-wide in
  the service, and renders as Prometheus text exposition (``GET
  /metrics``).

Instrumentation invariant: telemetry observes, never participates --
verdicts, task ids and journals are bitwise identical with tracing on,
off, or half-configured.
"""

from repro.telemetry.clock import (
    Clock,
    get_clock,
    monotonic,
    perf_counter,
    set_clock,
)
from repro.telemetry.metrics import (
    GLOBAL,
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    capture,
    fallback_summary,
    inc,
    metric_key,
    observe,
    parse_metric_key,
    set_gauge,
)
from repro.telemetry.trace import (
    TRACE_ENV,
    TRACER,
    Tracer,
    configure_tracing,
    export_chrome,
    read_events,
    validate_event,
)

__all__ = [
    "Clock",
    "get_clock",
    "set_clock",
    "monotonic",
    "perf_counter",
    "GLOBAL",
    "HISTOGRAM_BUCKETS",
    "MetricsRegistry",
    "capture",
    "fallback_summary",
    "inc",
    "observe",
    "set_gauge",
    "metric_key",
    "parse_metric_key",
    "TRACE_ENV",
    "TRACER",
    "Tracer",
    "configure_tracing",
    "export_chrome",
    "read_events",
    "validate_event",
]
