"""Zero-dependency metrics: counters, gauges and log-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe bag of named series.  Series
are keyed by ``name`` plus an optional label mapping; the flat string
encoding (``name|label=value|...``, labels sorted) keeps snapshots plain
JSON so they can ride worker result frames and ``SweepResult.telemetry``
sections unchanged.

Three aggregation paths share one data model:

* **process-local**: instrumentation points call the module-level
  :func:`inc` / :func:`observe` / :func:`set_gauge` helpers, which write to
  the process :data:`GLOBAL` registry;
* **per-task deltas**: :func:`capture` additionally routes every write
  inside its scope into a fresh registry (a :mod:`contextvars` sink, so
  concurrent threads never see each other's deltas) -- workers snapshot it
  and piggyback the delta on their existing result frames;
* **fleet aggregation**: the verification service :meth:`~MetricsRegistry.
  merge`\\ s those snapshots into its scheduler-owned registry and renders
  the union as Prometheus text exposition (:meth:`~MetricsRegistry.
  render_prometheus` -- hand-rolled, no client library).

Histograms use fixed log-scale buckets (:data:`HISTOGRAM_BUCKETS`, powers
of two), so merged histograms from heterogeneous workers always align.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "HISTOGRAM_BUCKETS",
    "MetricsRegistry",
    "GLOBAL",
    "metric_key",
    "parse_metric_key",
    "inc",
    "observe",
    "set_gauge",
    "capture",
    "fallback_summary",
]

#: Histogram bucket upper bounds: powers of two from 2**-20 (~1 microsecond
#: when observing seconds) through 2**10 (~17 minutes); an implicit +Inf
#: overflow bucket follows.  Fixed for every histogram so snapshots merge
#: bucket-by-bucket across processes and schema-free JSON.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(2.0 ** k for k in range(-20, 11))


def metric_key(name: str, labels: Optional[Mapping[str, Any]] = None) -> str:
    """Flat series key: ``name`` or ``name|label=value|...`` (labels sorted)."""
    if not labels:
        return name
    return name + "|" + "|".join(f"{k}={labels[k]}" for k in sorted(labels))


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_key` (label values round-trip as strings)."""
    name, _, rest = key.partition("|")
    labels: Dict[str, str] = {}
    if rest:
        for part in rest.split("|"):
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class MetricsRegistry:
    """A thread-safe registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        #: key -> [per-bucket counts (len(HISTOGRAM_BUCKETS) + 1), sum, count]
        self._histograms: Dict[str, List[Any]] = {}

    # ------------------------------------------------------------------ #
    def inc(
        self, name: str, value: float = 1.0,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(
        self, name: str, value: float,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        with self._lock:
            self._gauges[metric_key(name, labels)] = float(value)

    def observe(
        self, name: str, value: float,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        key = metric_key(name, labels)
        bucket = bisect_left(HISTOGRAM_BUCKETS, value)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = [[0] * (len(HISTOGRAM_BUCKETS) + 1), 0.0, 0]
                self._histograms[key] = hist
            hist[0][bucket] += 1
            hist[1] += value
            hist[2] += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe copy of every series (the wire/report format)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {"buckets": list(h[0]), "sum": h[1], "count": h[2]}
                    for key, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the incoming value (last
        write wins -- they describe current state, not accumulation).
        Histograms with a different bucket count are ignored rather than
        corrupting aligned series (snapshots from a different code version).
        """
        with self._lock:
            for key, value in (snapshot.get("counters") or {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in (snapshot.get("gauges") or {}).items():
                self._gauges[key] = float(value)
            for key, doc in (snapshot.get("histograms") or {}).items():
                buckets = doc.get("buckets") or []
                if len(buckets) != len(HISTOGRAM_BUCKETS) + 1:
                    continue
                hist = self._histograms.get(key)
                if hist is None:
                    hist = [[0] * (len(HISTOGRAM_BUCKETS) + 1), 0.0, 0]
                    self._histograms[key] = hist
                for i, n in enumerate(buckets):
                    hist[0][i] += n
                hist[1] += doc.get("sum", 0.0)
                hist[2] += doc.get("count", 0)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)

    # ------------------------------------------------------------------ #
    # Prometheus text exposition (version 0.0.4), hand-rolled: the service
    # has no third-party dependencies, and the format is line-oriented
    # enough not to need any.
    # ------------------------------------------------------------------ #
    @staticmethod
    def _escape(value: str) -> str:
        return (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )

    @classmethod
    def _series_line(
        cls, name: str, labels: Mapping[str, str], value: Any,
        extra: Optional[Tuple[str, str]] = None,
    ) -> str:
        pairs = [(k, labels[k]) for k in sorted(labels)]
        if extra is not None:
            pairs.append(extra)
        label_str = (
            "{" + ",".join(f'{k}="{cls._escape(v)}"' for k, v in pairs) + "}"
            if pairs
            else ""
        )
        return f"{name}{label_str} {value}"

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format."""
        snap = self.snapshot()
        lines: List[str] = []

        def families(series: Mapping[str, Any]) -> Iterator[Tuple[str, List[str]]]:
            by_name: Dict[str, List[str]] = {}
            for key in series:
                by_name.setdefault(parse_metric_key(key)[0], []).append(key)
            for name in sorted(by_name):
                yield name, sorted(by_name[name])

        for name, keys in families(snap["counters"]):
            lines.append(f"# TYPE {name} counter")
            for key in keys:
                _, labels = parse_metric_key(key)
                lines.append(self._series_line(name, labels, snap["counters"][key]))
        for name, keys in families(snap["gauges"]):
            lines.append(f"# TYPE {name} gauge")
            for key in keys:
                _, labels = parse_metric_key(key)
                lines.append(self._series_line(name, labels, snap["gauges"][key]))
        for name, keys in families(snap["histograms"]):
            lines.append(f"# TYPE {name} histogram")
            for key in keys:
                _, labels = parse_metric_key(key)
                doc = snap["histograms"][key]
                cumulative = 0
                for bound, count in zip(HISTOGRAM_BUCKETS, doc["buckets"]):
                    cumulative += count
                    lines.append(
                        self._series_line(
                            f"{name}_bucket", labels, cumulative,
                            extra=("le", repr(bound)),
                        )
                    )
                cumulative += doc["buckets"][-1]
                lines.append(
                    self._series_line(
                        f"{name}_bucket", labels, cumulative, extra=("le", "+Inf")
                    )
                )
                lines.append(self._series_line(f"{name}_sum", labels, doc["sum"]))
                lines.append(self._series_line(f"{name}_count", labels, doc["count"]))
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumentation point writes to.
GLOBAL = MetricsRegistry()

#: Optional per-scope delta sink (see :func:`capture`).  A context variable
#: rather than a plain global: concurrent local-executor threads each
#: capture only their own task's writes.
_SINK: "ContextVar[Optional[MetricsRegistry]]" = ContextVar(
    "repro_metrics_sink", default=None
)


def inc(name: str, value: float = 1.0,
        labels: Optional[Mapping[str, Any]] = None) -> None:
    """Increment a counter in :data:`GLOBAL` (and the active capture sink)."""
    GLOBAL.inc(name, value, labels)
    sink = _SINK.get()
    if sink is not None:
        sink.inc(name, value, labels)


def observe(name: str, value: float,
            labels: Optional[Mapping[str, Any]] = None) -> None:
    """Record a histogram observation (GLOBAL plus the capture sink)."""
    GLOBAL.observe(name, value, labels)
    sink = _SINK.get()
    if sink is not None:
        sink.observe(name, value, labels)


def set_gauge(name: str, value: float,
              labels: Optional[Mapping[str, Any]] = None) -> None:
    """Set a gauge (GLOBAL plus the capture sink)."""
    GLOBAL.set_gauge(name, value, labels)
    sink = _SINK.get()
    if sink is not None:
        sink.set_gauge(name, value, labels)


@contextmanager
def capture() -> Iterator[MetricsRegistry]:
    """Collect the metric *delta* produced inside the ``with`` block.

    Yields a fresh registry that accumulates every write made on this
    thread (via the module-level helpers) for the duration of the block;
    :data:`GLOBAL` still sees everything.  Workers wrap task execution in
    this and ship ``registry.snapshot()`` on the result frame.
    """
    sink = MetricsRegistry()
    token = _SINK.set(sink)
    try:
        yield sink
    finally:
        _SINK.reset(token)


def fallback_summary(
    snapshot: Optional[Mapping[str, Any]], top: int = 5
) -> List[Tuple[str, int]]:
    """Top-``top`` scope fallback reasons from a metrics snapshot.

    Reads the ``repro_scope_fallback_total{reason=...}`` counter family
    (recorded by the analyze layer, keyed by the plan IR's rejection-reason
    strings); returns ``(reason, count)`` pairs, most frequent first, ties
    broken alphabetically.  Tolerates ``None`` / empty snapshots.
    """
    if not snapshot:
        return []
    totals: Dict[str, int] = {}
    for key, value in (snapshot.get("counters") or {}).items():
        name, labels = parse_metric_key(key)
        if name == "repro_scope_fallback_total":
            reason = labels.get("reason", "unknown")
            totals[reason] = totals.get(reason, 0) + int(value)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]
