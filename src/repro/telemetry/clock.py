"""The clock seam: every monotonic timestamp in ``repro`` flows through here.

Architecture rule 5 (``tools/lint_arch.py``): outside ``repro.telemetry``
and the benchmarks, no module may call :func:`time.monotonic` or
:func:`time.perf_counter` directly.  Timing-dependent code takes its clock
from this module instead -- either the module-level functions (which
indirect through the installed :class:`Clock` on every call, so a test can
swap the time source mid-run) or an injected callable defaulting to them.

That containment is what makes the tracer and every duration field
testable: :func:`set_clock` installs a deterministic fake, and *all*
spans, EWMAs and ``duration_seconds`` fields follow it.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "get_clock", "set_clock", "monotonic", "perf_counter"]


class Clock:
    """An injectable pair of monotonic time sources.

    ``monotonic`` is the coarse scheduler/deadline clock; ``perf_counter``
    the high-resolution profiling clock.  Both default to :mod:`time`'s
    real clocks; tests construct fakes (e.g. a manually stepped counter).
    """

    __slots__ = ("monotonic", "perf_counter")

    def __init__(
        self,
        monotonic: Callable[[], float] = time.monotonic,
        perf_counter: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.monotonic = monotonic
        self.perf_counter = perf_counter


_ACTIVE = Clock()


def get_clock() -> Clock:
    """The currently installed clock."""
    return _ACTIVE


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` process-wide; returns the previous one.

    Tests should restore the returned clock in a ``finally`` block.
    """
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, clock
    return previous


def monotonic() -> float:
    """Monotonic seconds via the installed clock (deadline/EWMA grade)."""
    return _ACTIVE.monotonic()


def perf_counter() -> float:
    """High-resolution monotonic seconds via the installed clock."""
    return _ACTIVE.perf_counter()
