"""Span tracing with JSONL / Chrome trace-event export.

Opt-in: the tracer is a process-wide singleton (:data:`TRACER`) that stays
a no-op until a trace path is configured -- via the ``REPRO_TRACE``
environment variable (read at import, so forked/spawned pool and cluster
workers inherit the parent's choice) or :func:`configure_tracing` (what the
pipeline CLI's ``--trace PATH`` calls).

**Disabled fast path.**  ``TRACER.span(...)`` returns a shared immutable
null span when disabled: no span object, no timestamp read, no argument
dict -- nothing is allocated (asserted by tests via
:attr:`Tracer.spans_started`, which counts real span allocations and must
stay zero while disabled).  Hot paths may therefore call it unconditionally.

**Event format.**  Each completed span is one JSON object that is *both* a
JSONL record and a valid Chrome trace-event (``ph: "X"`` complete event):

``{"name", "cat", "ph": "X", "ts", "dur", "pid", "tid", "args"}``

with ``ts``/``dur`` in microseconds on the clock seam's ``perf_counter``
(monotonic, machine-wide on Linux, so events from concurrent worker
processes align).  The trace file is append-only JSONL; every process
buffers locally and appends under an ``flock`` so concurrent writers never
interleave mid-line.  ``python -m repro.telemetry --chrome OUT IN`` wraps a
JSONL file into the ``{"traceEvents": [...]}`` document the Chrome /
Perfetto trace viewers load directly.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.telemetry import clock as _clock

__all__ = [
    "TRACE_ENV",
    "Tracer",
    "TRACER",
    "configure_tracing",
    "validate_event",
    "read_events",
    "export_chrome",
]

#: Environment variable naming the JSONL trace output path.
TRACE_ENV = "REPRO_TRACE"

#: Buffered events are appended to the trace file beyond this many.
_FLUSH_THRESHOLD = 4096


class _NullSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one argument (lazily allocates the args dict)."""
        if self.args is None:
            self.args = {}
        self.args[key] = value

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer._perf()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = self._tracer._perf()
        self._tracer._record(self, self._t0, end - self._t0)
        return False


class Tracer:
    """A thread/process-safe span recorder writing append-only JSONL.

    Thread safety: span objects are per-``with``-block locals; only the
    shared buffer is guarded.  Process safety: each process buffers its own
    events and appends whole lines under an exclusive ``flock``; a fork
    handler drops any buffer inherited from the parent so events are never
    written twice.
    """

    def __init__(self, perf: Optional[Any] = None) -> None:
        self._perf = perf or _clock.perf_counter
        self._lock = threading.Lock()
        self._buffer: List[Dict[str, Any]] = []
        self._path: Optional[str] = None
        #: Fast-path gate, read without the lock on every ``span()`` call.
        self.enabled = False
        #: Real span allocations since process start.  Stays 0 while the
        #: tracer is disabled -- the no-op-fast-path regression counter.
        self.spans_started = 0

    # ------------------------------------------------------------------ #
    def configure(self, path: Optional[str]) -> None:
        """Enable tracing to ``path`` (JSONL, appended); ``None`` disables."""
        with self._lock:
            if path is None and self._buffer and self._path:
                self._flush_locked()
            self._path = path
            self.enabled = path is not None

    def span(self, name: str, cat: str = "repro",
             args: Optional[Dict[str, Any]] = None):
        """A context-manager span; the shared null span when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        self.spans_started += 1
        return _Span(self, name, cat, args)

    # ------------------------------------------------------------------ #
    def _record(self, span: _Span, t0: float, dur: float) -> None:
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": t0 * 1e6,
            "dur": dur * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": span.args or {},
        }
        with self._lock:
            self._buffer.append(event)
            if len(self._buffer) >= _FLUSH_THRESHOLD:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer or self._path is None:
            return
        payload = "".join(
            json.dumps(event, separators=(",", ":"), default=str) + "\n"
            for event in self._buffer
        )
        self._buffer = []
        try:
            with open(self._path, "a", encoding="utf-8") as f:
                try:
                    import fcntl

                    fcntl.flock(f, fcntl.LOCK_EX)  # released by close()
                except (ImportError, OSError):
                    pass  # single-writer platforms still get whole-line appends
                f.write(payload)
        except OSError:
            pass  # an unwritable trace path must never fail the sweep

    def flush(self) -> None:
        """Append all buffered events to the trace file."""
        with self._lock:
            self._flush_locked()

    def _after_fork(self) -> None:
        # The child inherits the parent's buffer; the parent will flush its
        # own copy, so the child must drop it or events duplicate.
        self._lock = threading.Lock()
        self._buffer = []


#: The process-wide tracer every instrumentation point uses.
TRACER = Tracer()


def configure_tracing(path: Optional[str]) -> None:
    """Enable/disable the process tracer and export the choice to children.

    Also sets/clears :data:`TRACE_ENV` so worker subprocesses (cluster
    workers, spawned pools) started later trace to the same file.
    """
    if path is not None:
        path = os.path.abspath(path)
        os.environ[TRACE_ENV] = path
    else:
        os.environ.pop(TRACE_ENV, None)
    TRACER.configure(path)


TRACER.configure(os.environ.get(TRACE_ENV) or None)
atexit.register(TRACER.flush)
if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=TRACER._after_fork)


# ---------------------------------------------------------------------- #
# Trace-schema validation and Chrome export
# ---------------------------------------------------------------------- #
#: Required event fields and their types (the trace schema).
_SCHEMA: Tuple[Tuple[str, Any], ...] = (
    ("name", str),
    ("cat", str),
    ("ph", str),
    ("ts", (int, float)),
    ("dur", (int, float)),
    ("pid", int),
    ("tid", int),
    ("args", dict),
)


def validate_event(event: Any) -> Optional[str]:
    """``None`` if ``event`` conforms to the trace schema, else the error."""
    if not isinstance(event, dict):
        return f"event is {type(event).__name__}, expected object"
    for field, types in _SCHEMA:
        if field not in event:
            return f"missing field {field!r}"
        if not isinstance(event[field], types):
            return f"field {field!r} has type {type(event[field]).__name__}"
    if event["ph"] != "X":
        return f"unexpected phase {event['ph']!r} (spans are complete events)"
    if event["dur"] < 0:
        return "negative duration"
    return None


def read_events(path: str) -> Iterator[Tuple[int, Any]]:
    """Yield ``(line_number, parsed_event)`` from a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield lineno, json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc


def export_chrome(jsonl_path: str, out_path: str) -> int:
    """Wrap a JSONL trace into a Chrome trace-event document; returns the
    event count.  The output loads directly in ``chrome://tracing`` and
    https://ui.perfetto.dev."""
    events = [event for _, event in read_events(jsonl_path)]
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
    return len(events)
