"""Seeded, deterministic fault injection for the verification harness.

The verifier differential-tests backends against an oracle; this package
does the same for the *harness itself*.  A **fault plan** binds failure
kinds to named **fault points** (``task.execute``, ``protocol.send``,
``journal.record``, ``scheduler.dispatch``, ``native.call``,
``native.probe``) and is armed through the environment --
:data:`FAULTS_ENV` / :data:`SEED_ENV` -- so forked pool members and
spawned cluster workers inherit it without plumbing.

Grammar (clauses joined by ``,`` or ``;``)::

    POINT[KEY]=KIND[:ARG][@HITSPEC]

* ``POINT`` -- a fault-point name; the optional ``[KEY]`` scopes the
  clause to one context key (e.g. a workload name), so
  ``task.execute[gemm]=crash`` poisons exactly one task.
* ``KIND`` -- one of ``crash`` (hard ``os._exit``, like a segfault or
  SIGKILL), ``hang`` (sleep; default 3600 s), ``delay`` (sleep; default
  0.05 s), ``exception`` (raise :class:`FaultInjected`), ``garble``
  (corrupt a payload passed through :func:`garble_bytes` /
  :func:`garble_text`).
* ``ARG`` -- seconds for ``hang``/``delay``; a firing probability in
  ``(0, 1]`` for ``crash``/``exception``/``garble`` (default 1).
* ``HITSPEC`` -- ``@N`` fires only on the Nth hit of the point,
  ``@N+`` from the Nth hit onward; absent means every hit.

Every probabilistic decision hashes ``(seed, point, key, hit-index)``,
so two processes replaying the same call sequence with the same seed
make identical choices -- faults are reproducible, never flaky.  Hit
counters reset in forked children (:func:`os.register_at_fork`), giving
each pool member its own deterministic schedule.

Disabled is the common case and mirrors the telemetry null-span
pattern: until :data:`FAULTS_ENV` is seen, :func:`hit` is a sentinel
check and a return -- no locks, no counters, no allocation.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULTS_ENV",
    "SEED_ENV",
    "FaultInjected",
    "FaultSpecError",
    "FaultPlan",
    "parse_plan",
    "configure",
    "reload",
    "active",
    "hit",
    "garble_bytes",
    "garble_text",
    "hit_counts",
]

#: Environment variables carrying the armed plan into child processes.
FAULTS_ENV = "REPRO_FAULTS"
SEED_ENV = "REPRO_FAULT_SEED"

_KINDS = ("crash", "hang", "delay", "garble", "exception")
_DEFAULT_DELAY = 0.05
_DEFAULT_HANG = 3600.0


class FaultSpecError(ValueError):
    """A fault-plan spec string does not parse."""


class FaultInjected(RuntimeError):
    """The error raised by an ``exception`` fault clause."""


class _Clause:
    __slots__ = ("point", "key", "kind", "arg", "first", "once")

    def __init__(self, point: str, key: Optional[str], kind: str,
                 arg: Optional[float], first: int, once: bool) -> None:
        self.point = point
        self.key = key          # None -> any key at this point
        self.kind = kind
        self.arg = arg
        self.first = first      # first hit index that may fire (1-based)
        self.once = once        # True -> only hit `first`, not `first`+

    def hits(self, n: int) -> bool:
        return n == self.first if self.once else n >= self.first


def _parse_clause(text: str) -> _Clause:
    left, eq, right = text.partition("=")
    if not eq or not left or not right:
        raise FaultSpecError(f"fault clause {text!r}: expected POINT=KIND")
    left = left.strip()
    key: Optional[str] = None
    if left.endswith("]"):
        point, bracket, rest = left.partition("[")
        if not bracket or not rest[:-1]:
            raise FaultSpecError(f"fault clause {text!r}: bad [KEY] scope")
        key = rest[:-1]
    else:
        point = left
    if not point or not all(c.isalnum() or c in "._-" for c in point):
        raise FaultSpecError(f"fault clause {text!r}: bad point {point!r}")
    right = right.strip()
    first, once = 1, False
    if "@" in right:
        right, _, hitspec = right.rpartition("@")
        once = not hitspec.endswith("+")
        digits = hitspec.rstrip("+")
        if not digits.isdigit() or int(digits) < 1:
            raise FaultSpecError(f"fault clause {text!r}: bad @HITSPEC")
        first = int(digits)
    kind, _, argtext = right.partition(":")
    if kind not in _KINDS:
        raise FaultSpecError(
            f"fault clause {text!r}: kind {kind!r} not in {_KINDS}"
        )
    arg: Optional[float] = None
    if argtext:
        try:
            arg = float(argtext)
        except ValueError:
            raise FaultSpecError(f"fault clause {text!r}: bad arg {argtext!r}")
        if kind in ("crash", "exception", "garble") and not 0.0 < arg <= 1.0:
            raise FaultSpecError(
                f"fault clause {text!r}: probability must be in (0, 1]"
            )
        if kind in ("hang", "delay") and arg < 0.0:
            raise FaultSpecError(f"fault clause {text!r}: negative seconds")
    return _Clause(point, key, kind, arg, first, once)


def parse_plan(spec: str, seed: int = 0) -> "FaultPlan":
    """Parse a :data:`FAULTS_ENV`-style spec into a :class:`FaultPlan`."""
    clauses: List[_Clause] = []
    for part in spec.replace(";", ",").split(","):
        part = part.strip()
        if part:
            clauses.append(_parse_clause(part))
    if not clauses:
        raise FaultSpecError("fault spec contains no clauses")
    return FaultPlan(clauses, seed)


class FaultPlan:
    """An armed set of fault clauses plus per-point hit counters."""

    def __init__(self, clauses: List[_Clause], seed: int) -> None:
        self.seed = seed
        self._clauses = clauses
        self._lock = threading.Lock()
        #: (point, key-or-"") -> hits so far.  The "" entry counts every
        #: hit at the point; keyed entries count per-key hits, so scoped
        #: and unscoped clauses each see a stable 1-based index.
        self._counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------ #
    def _decide(self, point: str, key: Optional[str], n: int,
                prob: float, salt: str = "") -> bool:
        if prob >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}:{point}:{key}:{n}:{salt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64 < prob

    def _match(self, point: str, key: Optional[str]) -> Optional[Tuple[_Clause, int]]:
        """Count the hit; return the firing clause (if any) and hit index."""
        with self._lock:
            n_point = self._counts.get((point, ""), 0) + 1
            self._counts[(point, "")] = n_point
            n_key = n_point
            if key is not None:
                n_key = self._counts.get((point, key), 0) + 1
                self._counts[(point, key)] = n_key
        for clause in self._clauses:
            if clause.point != point:
                continue
            if clause.key is not None and clause.key != key:
                continue
            n = n_point if clause.key is None else n_key
            if not clause.hits(n):
                continue
            if clause.kind in ("crash", "exception", "garble"):
                if not self._decide(point, key, n, clause.arg or 1.0):
                    continue
            return clause, n
        return None

    def counts(self) -> Dict[Tuple[str, str], int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    # ------------------------------------------------------------------ #
    def hit(self, point: str, key: Optional[str]) -> None:
        found = self._match(point, key)
        if found is None:
            return
        clause, _ = found
        _record_fire(point, clause.kind)
        if clause.kind == "delay":
            time.sleep(clause.arg if clause.arg is not None else _DEFAULT_DELAY)
        elif clause.kind == "hang":
            time.sleep(clause.arg if clause.arg is not None else _DEFAULT_HANG)
        elif clause.kind == "exception":
            raise FaultInjected(
                f"injected exception at fault point {point!r}"
                + (f" (key {key!r})" if key is not None else "")
            )
        elif clause.kind == "crash":
            os._exit(137)  # hard death: nothing catches it, like SIGKILL
        # 'garble' clauses only act through garble_bytes / garble_text.

    def garble(self, point: str, key: Optional[str], size: int) -> int:
        """Offset to corrupt in a ``size``-byte payload, or -1 for none.

        Points are probed by both :func:`hit` and the garble helpers; to
        keep hit indices one-per-operation, this only consumes a hit when
        a garble clause actually targets the point.
        """
        if not any(c.point == point and c.kind == "garble"
                   for c in self._clauses):
            return -1
        found = self._match(point, key)
        if found is None or found[0].kind != "garble" or size <= 0:
            return -1
        clause, n = found
        _record_fire(point, clause.kind)
        digest = hashlib.sha256(
            f"{self.seed}:{point}:{key}:{n}:offset".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % size


def _record_fire(point: str, kind: str) -> None:
    from repro.telemetry import metrics

    metrics.inc(
        "repro_faults_injected_total", labels={"point": point, "kind": kind}
    )


# ---------------------------------------------------------------------- #
# Module-level arming.  `_UNLOADED` keeps the disabled fast path to one
# identity check; the plan loads lazily from the environment on first use.
# ---------------------------------------------------------------------- #

_UNLOADED = object()
_PLAN: object = _UNLOADED
_FORK_HOOK = False


def _arm_fork_reset() -> None:
    global _FORK_HOOK
    if _FORK_HOOK or not hasattr(os, "register_at_fork"):
        return
    os.register_at_fork(after_in_child=_reset_counts)
    _FORK_HOOK = True


def _reset_counts() -> None:
    if isinstance(_PLAN, FaultPlan):
        _PLAN.reset()


def _load() -> Optional[FaultPlan]:
    global _PLAN
    spec = os.environ.get(FAULTS_ENV)
    if spec:
        seed = int(os.environ.get(SEED_ENV, "0") or "0")
        _PLAN = parse_plan(spec, seed)
        _arm_fork_reset()
    else:
        _PLAN = None
    return _PLAN  # type: ignore[return-value]


def reload() -> None:
    """Re-read :data:`FAULTS_ENV` (tests; after external env changes)."""
    _load()


def configure(spec: Optional[str], seed: Optional[int] = None,
              export: bool = True) -> None:
    """Arm (or disarm, with a falsy ``spec``) fault injection in-process.

    With ``export=True`` (the default) the spec and seed are also written
    to the environment so forked pools and spawned workers inherit the
    plan; ``export=False`` arms only this process -- chaos drivers use it
    to fault the service without leaking faults into worker subprocesses.
    """
    global _PLAN
    if spec:
        _PLAN = parse_plan(spec, seed or 0)
        _arm_fork_reset()
        if export:
            os.environ[FAULTS_ENV] = spec
            os.environ[SEED_ENV] = str(seed or 0)
    else:
        _PLAN = None
        if export:
            os.environ.pop(FAULTS_ENV, None)
            os.environ.pop(SEED_ENV, None)


def active() -> bool:
    """True when a fault plan is armed (loading from the env if needed)."""
    plan = _PLAN
    if plan is _UNLOADED:
        plan = _load()
    return plan is not None


def hit(point: str, key: Optional[str] = None) -> None:
    """Pass through a fault point; may sleep, raise, or kill the process."""
    plan = _PLAN
    if plan is _UNLOADED:
        plan = _load()
    if plan is None:
        return
    plan.hit(point, key)  # type: ignore[union-attr]


def garble_bytes(point: str, data: bytes, key: Optional[str] = None) -> bytes:
    """Deterministically corrupt one byte of ``data`` if a garble clause
    fires at ``point``; otherwise return ``data`` unchanged.

    The corrupted byte becomes NUL, which no JSON payload may contain
    raw -- a garbled frame always fails to parse rather than silently
    decoding to different values.
    """
    plan = _PLAN
    if plan is _UNLOADED:
        plan = _load()
    if plan is None:
        return data
    offset = plan.garble(point, key, len(data))  # type: ignore[union-attr]
    if offset < 0:
        return data
    repl = b"\x00" if data[offset : offset + 1] != b"\x00" else b"\x01"
    return data[:offset] + repl + data[offset + 1 :]


def garble_text(point: str, text: str, key: Optional[str] = None) -> str:
    """Deterministically corrupt one character of single-line ``text``.

    The replacement is printable (never a newline), so a garbled journal
    line stays one record -- it either fails to parse or fails its
    checksum, and the loader skips it.
    """
    plan = _PLAN
    if plan is _UNLOADED:
        plan = _load()
    if plan is None:
        return text
    offset = plan.garble(point, key, len(text))  # type: ignore[union-attr]
    if offset < 0:
        return text
    repl = "~" if text[offset] != "~" else "#"
    return text[:offset] + repl + text[offset + 1 :]


def hit_counts() -> Dict[Tuple[str, str], int]:
    """Copy of the armed plan's hit counters ({} when disabled)."""
    plan = _PLAN
    return plan.counts() if isinstance(plan, FaultPlan) else {}
