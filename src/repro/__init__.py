"""repro -- a reproduction of FuzzyFlow (SC 2023).

FuzzyFlow leverages parametric dataflow program representations to extract
minimal, fully reproducible test cases ("cutouts") around program
optimizations, and checks the optimizations for semantics preservation with
gray-box differential fuzzing.

Top-level convenience re-exports::

    from repro import SDFG, Memlet, verify_transformation

See ``README.md`` for a quickstart and ``DESIGN.md`` for the system
inventory and the per-experiment index.
"""

from repro.sdfg import (
    SDFG,
    AccessNode,
    Array,
    InterstateEdge,
    MapEntry,
    MapExit,
    Memlet,
    Scalar,
    SDFGState,
    Tasklet,
    float32,
    float64,
    int32,
    int64,
)

__version__ = "1.0.0"

__all__ = [
    "SDFG",
    "SDFGState",
    "InterstateEdge",
    "Memlet",
    "AccessNode",
    "Tasklet",
    "MapEntry",
    "MapExit",
    "Array",
    "Scalar",
    "float32",
    "float64",
    "int32",
    "int64",
    "__version__",
]


def __getattr__(name):
    # Lazily re-export the high-level verification API to avoid import cycles
    # at package import time.
    if name in ("verify_transformation", "FuzzyFlowVerifier", "extract_cutout"):
        from repro import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
