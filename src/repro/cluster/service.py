"""The always-on verification service: asyncio transport over the scheduler.

This is the *only* cluster module that touches asyncio or opens listening
sockets (``tools/lint_arch.py`` enforces it).  It owns no task accounting:
every wire message translates into one call on the transport-free
:class:`~repro.cluster.scheduler.SweepScheduler` -- ``lease``,
``record_result``, ``release``, ``worker_joined`` -- and nothing else.

Three transports multiplex over one scheduler:

* **Worker socket** -- an asyncio rewrite of the accept/dispatch loop
  speaking the existing length-prefixed JSON protocol *unchanged*
  (:mod:`repro.cluster.protocol`): pre-service workers connect as-is.
  Workers are elastic -- they join and leave mid-service and are assigned
  shards from whichever active sweep fair-share picks.
* **HTTP/JSON** (optional second port) -- ``POST /sweeps`` submits a
  serialized task list, ``GET /sweeps/<id>`` / ``GET /status`` report
  progress, workers and ETA, ``GET /sweeps/<id>/result`` returns a
  completed sweep's full :class:`~repro.pipeline.result.SweepResult`
  document.  A tiny hand-rolled HTTP/1.1 server (one request per
  connection) keeps the dependency surface at zero.
* **Local executors** (``local_procs > 0``) -- in-process threads that
  lease from the scheduler directly and run
  :func:`~repro.pipeline.runner.execute_task`, so a ``--serve
  --local-procs N`` service makes progress with no external workers at
  all.

With a state directory (:class:`~repro.cluster.state.ServiceState`) every
submission is persisted (meta + per-sweep journal) before it is
acknowledged: killing the service process and starting a new one on the
same directory restores every in-flight sweep from its journal, completed
tasks are never re-dispatched, and reconnecting workers (bounded
reconnect-with-backoff in :mod:`repro.cluster.worker`) resume pulling
shards.

Non-loopback deployments can require a shared secret (``auth_token`` /
``REPRO_CLUSTER_TOKEN``): socket workers present it in ``hello``, HTTP
clients in the ``X-Repro-Token`` header; a bad token gets a clean refusal
(an ``error`` frame / HTTP 401), never a hang.  Loopback peers stay
tokenless.

The event loop runs in a dedicated daemon thread, so synchronous callers
(the pipeline CLI, tests, the one-shot coordinator wrapper) drive the
service with plain ``start()`` / ``submit()`` / ``wait_sweep()`` /
``stop()`` calls.

Entry point::

    python -m repro.cluster.service --listen :8765 --http :8766 \\
        --state-dir service-state --local-procs 2
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import struct
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import faultinject
from repro.cluster.protocol import MAX_MESSAGE_BYTES, ProtocolError, TOKEN_ENV
from repro.cluster.scheduler import COMPLETE, SweepScheduler
from repro.cluster.state import ServiceState, restore_sweeps
from repro.pipeline.result import SweepResult
from repro.pipeline.tasks import SweepTask
from repro.telemetry import monotonic as _monotonic

__all__ = ["VerificationService", "main"]

_LENGTH = struct.Struct(">I")

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
}


async def _read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """One length-prefixed JSON frame; ``None`` on clean EOF at a boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("Connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"Incoming frame claims {length} bytes (limit {MAX_MESSAGE_BYTES})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("Connection closed mid-frame") from exc
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"Undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"Frame is not a typed message object: {message!r}")
    return message


def _write_frame(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    # Same fault point as the worker-side send_message: one garble clause
    # corrupts frames in either direction (length is preserved, so framing
    # survives and the receiver sees a clean ProtocolError).
    payload = faultinject.garble_bytes("protocol.send", payload,
                                       key=message.get("type"))
    writer.write(_LENGTH.pack(len(payload)) + payload)


def _is_loopback(peer: Optional[Tuple[Any, ...]]) -> bool:
    if peer is None:
        return True  # socketpair / unix transport: local by construction
    host = str(peer[0])
    return host == "::1" or host.startswith("127.")


class VerificationService:
    """Persistent multi-tenant verification service (see module docstring).

    Typical embedded use::

        service = VerificationService(state_dir="svc", http_port=0)
        service.start()                      # addresses now concrete
        sid = service.submit(tasks)          # as many sweeps as you like
        result = service.wait_sweep(sid)
        service.stop()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        scheduler: Optional[SweepScheduler] = None,
        http_host: Optional[str] = None,
        http_port: Optional[int] = None,
        state_dir: Optional[str] = None,
        auth_token: Optional[str] = None,
        auth_exempt_loopback: bool = True,
        worker_timeout: float = 0.0,
        local_procs: int = 0,
        done_when_idle: bool = False,
        max_task_retries: int = 2,
        target_lease_seconds: float = 10.0,
        quarantine_workers: int = 3,
    ) -> None:
        self.host = host
        self.port = port
        self.http_host = http_host if http_host is not None else host
        #: ``None`` disables the HTTP endpoint; 0 picks a free port.
        self.http_port = http_port
        self.scheduler = scheduler or SweepScheduler(
            max_task_retries=max_task_retries,
            done_when_idle=done_when_idle,
            target_lease_seconds=target_lease_seconds,
            quarantine_workers=quarantine_workers,
        )
        self.state = ServiceState(state_dir) if state_dir else None
        self.auth_token = auth_token
        #: With the default ``True``, loopback peers never need the token
        #: (local tooling stays friction-free).  Tests set ``False`` to
        #: exercise refusals without a second network namespace.
        self.auth_exempt_loopback = auth_exempt_loopback
        self.worker_timeout = worker_timeout
        self.local_procs = max(0, int(local_procs))

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._sock_addr: Optional[Tuple[str, int]] = None
        self._http_addr: Optional[Tuple[str, int]] = None
        #: writer -> {"last": monotonic} for the hung-worker reaper.
        self._conn_meta: Dict[Any, Dict[str, float]] = {}
        self._submit_lock = threading.Lock()
        self._local_threads: List[threading.Thread] = []
        self._local_stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """Worker-socket (host, port); concrete only after :meth:`start`."""
        return self._sock_addr or (self.host, self.port)

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """HTTP (host, port), or ``None`` when the endpoint is disabled."""
        return self._http_addr

    def start(self) -> Tuple[str, int]:
        """Restore persisted sweeps, bind, listen; returns the socket address."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        if self.state is not None:
            restore_sweeps(self.scheduler, self.state)
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="verification-service",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join(timeout=2.0)
            raise self._startup_error
        for n in range(self.local_procs):
            thread = threading.Thread(
                target=self._local_loop, args=(n,),
                name=f"service-local-{n}", daemon=True,
            )
            thread.start()
            self._local_threads.append(thread)
        return self.address

    def stop(self) -> None:
        """Stop listening and abort live connections (idempotent).

        Deliberately *not* a graceful drain: in-flight leases die with
        their connections, exactly like a process kill -- restartability
        comes from the journals, not from shutdown choreography.
        """
        self._local_stop.set()
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:
                pass  # loop already closed
            self._thread.join(timeout=5.0)
        for thread in self._local_threads:
            thread.join(timeout=5.0)
        self.scheduler.close()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        http_server = None
        reaper = None
        try:
            server = await asyncio.start_server(
                self._handle_worker, self.host, self.port
            )
            self._sock_addr = server.sockets[0].getsockname()[:2]
            if self.http_port is not None:
                http_server = await asyncio.start_server(
                    self._handle_http, self.http_host, self.http_port
                )
                self._http_addr = http_server.sockets[0].getsockname()[:2]
            if self.worker_timeout > 0:
                reaper = asyncio.ensure_future(self._reap_loop())
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_async.wait()
        server.close()
        if http_server is not None:
            http_server.close()
        if reaper is not None:
            reaper.cancel()
        # Abort (not drain) live worker connections: a service bounce must
        # look like a crash to the requeue/retry machinery, which is the
        # path the journals make safe.
        for writer in list(self._conn_meta):
            try:
                writer.transport.abort()
            except Exception:  # noqa: BLE001 - already-dead transports
                pass
        await server.wait_closed()
        if http_server is not None:
            await http_server.wait_closed()

    async def _reap_loop(self) -> None:
        """Force-close connections silent for longer than ``worker_timeout``.

        A hung worker (wedged process, dead-but-undetected TCP peer) holds
        its leases forever without failing the socket; aborting from this
        side unwinds its handler through the ordinary lost-worker requeue
        path.  Healthy workers never trip this: they ping between tasks.
        """
        interval = max(0.05, min(self.worker_timeout / 4, 0.25))
        while True:
            await asyncio.sleep(interval)
            deadline = _monotonic() - self.worker_timeout
            for writer, meta in list(self._conn_meta.items()):
                if meta["last"] < deadline:
                    try:
                        writer.transport.abort()
                    except Exception:  # noqa: BLE001
                        pass

    # ------------------------------------------------------------------ #
    # Submission (thread-safe; used by CLI, HTTP and tests)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        tasks: Sequence[SweepTask],
        *,
        suite: Optional[str] = None,
        buggy: Optional[bool] = None,
        backend: Optional[str] = None,
        priority: float = 1.0,
        max_task_retries: Optional[int] = None,
        store: Optional[Any] = None,
        completed: Optional[Dict[str, Dict[str, Any]]] = None,
        progress_callback: Optional[Callable[..., None]] = None,
    ) -> str:
        """Register a sweep; with a state dir, persist it first.

        An explicitly passed ``store`` (the one-shot ``--journal`` path)
        bypasses state-dir journal multiplexing and stays caller-owned.
        """
        tasks = list(tasks)
        if self.state is None or store is not None:
            return self.scheduler.submit(
                tasks,
                suite=suite,
                buggy=buggy,
                backend=backend,
                priority=priority,
                max_task_retries=max_task_retries,
                store=store,
                completed=completed,
                progress_callback=progress_callback,
            )
        with self._submit_lock:
            sweep_id = self.state.allocate_sweep_id()
            entry_suite = suite or (tasks[0].suite if tasks else "npbench")
            entry_buggy = buggy if buggy is not None else any(
                bool(t.transformation.kwargs.get("inject_bug")) for t in tasks
            )
            entry_backend = backend or (
                tasks[0].verifier_kwargs.get("backend", "interpreter")
                if tasks
                else "interpreter"
            )
            self.state.persist(sweep_id, tasks, {
                "suite": entry_suite,
                "buggy": entry_buggy,
                "backend": entry_backend,
                "priority": priority,
                "max_task_retries": max_task_retries,
            })
            journal = self.state.open_store(
                sweep_id, tasks, entry_suite, entry_buggy, entry_backend
            )
            return self.scheduler.submit(
                tasks,
                sweep_id=sweep_id,
                suite=entry_suite,
                buggy=entry_buggy,
                backend=entry_backend,
                priority=priority,
                max_task_retries=max_task_retries,
                store=journal,
                owns_store=True,
                progress_callback=progress_callback,
            )

    def wait_sweep(self, sweep_id: str, timeout: Optional[float] = None) -> SweepResult:
        return self.scheduler.wait(sweep_id, timeout)

    # ------------------------------------------------------------------ #
    # Worker-socket transport
    # ------------------------------------------------------------------ #
    def _auth_required(self, peer: Optional[Tuple[Any, ...]]) -> bool:
        if self.auth_token is None:
            return False
        if self.auth_exempt_loopback and _is_loopback(peer):
            return False
        return True

    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_key = object()  # scheduler-side identity of this connection
        peer = writer.get_extra_info("peername")
        meta = {"last": _monotonic()}
        self._conn_meta[writer] = meta
        must_auth = self._auth_required(peer)
        authed = not must_auth
        try:
            while True:
                try:
                    message = await _read_frame(reader)
                except ProtocolError:
                    break  # died mid-frame: treat as a lost worker
                if message is None:
                    break  # clean disconnect
                meta["last"] = _monotonic()
                mtype = message.get("type")
                if mtype == "hello":
                    if must_auth and message.get("token") != self.auth_token:
                        _write_frame(writer, {
                            "type": "error",
                            "error": "authentication failed: missing or "
                            "invalid token (set --auth-token / "
                            f"{TOKEN_ENV})",
                        })
                        await writer.drain()
                        break  # clean refusal, never a hang
                    authed = True
                    _write_frame(
                        writer,
                        self.scheduler.worker_joined(
                            conn_key, message.get("worker") or {}
                        ),
                    )
                elif not authed:
                    _write_frame(writer, {
                        "type": "error",
                        "error": "authentication required: say hello with "
                        "a token first",
                    })
                    await writer.drain()
                    break
                elif mtype == "request":
                    _write_frame(
                        writer,
                        self.scheduler.lease(
                            conn_key, int(message.get("max_tasks", 1))
                        ),
                    )
                elif mtype == "result":
                    self.scheduler.record_result(conn_key, message)
                    _write_frame(writer, {"type": "ack"})
                elif mtype == "ping":
                    self.scheduler.record_heartbeat(
                        conn_key, message.get("metrics")
                    )
                    _write_frame(writer, {"type": "pong"})
                else:
                    _write_frame(writer, {
                        "type": "error",
                        "error": f"unknown message type {mtype!r}",
                    })
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # connection-level failure: fall through to requeue
        finally:
            self._conn_meta.pop(writer, None)
            self.scheduler.release(conn_key)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    # ------------------------------------------------------------------ #
    # HTTP transport
    # ------------------------------------------------------------------ #
    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, doc = 400, {"error": "malformed HTTP request"}
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) >= 2:
                method, path = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                body = await reader.readexactly(length) if length else b""
                status, doc = self._http_dispatch(
                    method, path, headers, body,
                    writer.get_extra_info("peername"),
                )
        except (asyncio.IncompleteReadError, ConnectionError, OSError, ValueError):
            pass
        try:
            if isinstance(doc, str):
                # Plain-text endpoint (GET /metrics): Prometheus exposition
                # format 0.0.4, hand-rolled like the rest of the server.
                payload = doc.encode("utf-8")
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
                ctype = "application/json"
            head = (
                f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    def _http_dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        peer: Optional[Tuple[Any, ...]],
    ) -> Tuple[int, Any]:  # doc: JSON-safe dict, or str for text/plain
        if self._auth_required(peer) and (
            headers.get("x-repro-token") != self.auth_token
        ):
            return 401, {
                "error": "authentication failed: missing or invalid "
                f"X-Repro-Token header (set --auth-token / {TOKEN_ENV})"
            }
        if method == "POST" and path == "/sweeps":
            return self._http_submit(body)
        if method == "GET" and path == "/status":
            return 200, self.scheduler.service_status()
        if method == "GET" and path == "/metrics":
            # Fleet-wide aggregation: every worker's piggybacked metric
            # deltas plus the scheduler's own per-sweep counters and
            # latency gauges, as Prometheus text (no client library).
            return 200, self.scheduler.metrics.render_prometheus()
        if method == "GET" and path.startswith("/sweeps/"):
            rest = path[len("/sweeps/"):]
            sweep_id, _, tail = rest.partition("/")
            try:
                status_doc = self.scheduler.sweep_status(sweep_id)
            except KeyError:
                return 404, {"error": f"unknown sweep {sweep_id!r}"}
            if not tail:
                return 200, status_doc
            if tail == "result":
                if status_doc["state"] != COMPLETE:
                    return 409, {
                        "error": f"sweep {sweep_id} is not complete",
                        "state": status_doc["state"],
                        "done": status_doc["done"],
                        "total": status_doc["total"],
                    }
                return 200, self.scheduler.result(sweep_id).to_dict()
            return 404, {"error": f"unknown endpoint {path!r}"}
        if method == "DELETE" and path.startswith("/sweeps/"):
            sweep_id = path[len("/sweeps/"):]
            try:
                doc = self.scheduler.cancel(sweep_id)
            except KeyError:
                return 404, {"error": f"unknown sweep {sweep_id!r}"}
            except ValueError:
                return 409, {
                    "error": f"sweep {sweep_id} is already complete; its "
                    f"result is immutable (GET /sweeps/{sweep_id}/result)"
                }
            if self.state is not None:
                # The scheduler closed the journal when it finished the
                # entry; dropping the state-dir pair makes the eviction
                # durable -- the sweep will not resurrect on restart.
                self.state.evict(sweep_id)
            return 200, doc
        if method not in ("GET", "POST", "DELETE"):
            return 405, {"error": f"method {method} not allowed"}
        return 404, {"error": f"unknown endpoint {path!r}"}

    def _http_submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            doc = json.loads(body.decode("utf-8"))
            task_dicts = doc["tasks"]
            if not isinstance(task_dicts, list):
                raise TypeError("'tasks' must be a list")
            tasks = [SweepTask.from_dict(d) for d in task_dicts]
        except Exception as exc:  # noqa: BLE001 - reported to the client
            return 400, {"error": f"bad submission: {type(exc).__name__}: {exc}"}
        sweep_id = self.submit(
            tasks,
            suite=doc.get("suite"),
            buggy=doc.get("buggy"),
            backend=doc.get("backend"),
            priority=float(doc.get("priority", 1.0)),
            max_task_retries=doc.get("max_task_retries"),
        )
        return 200, self.scheduler.sweep_status(sweep_id)

    # ------------------------------------------------------------------ #
    # Local in-process executors
    # ------------------------------------------------------------------ #
    def _local_loop(self, n: int) -> None:
        """One in-process execution client: lease, execute, record, repeat.

        Each task runs under a telemetry capture scope (ContextVar-backed,
        so concurrent executor threads never mix deltas) and piggybacks its
        metric delta on the result message, exactly like a remote worker.
        """
        from repro.pipeline.runner import execute_task_with_metrics

        conn_key = f"local-{n}"
        self.scheduler.worker_joined(conn_key, {
            "host": "in-process",
            "pid": os.getpid(),
            "backend": None,
            "procs": 1,
        })
        try:
            while not self._local_stop.is_set():
                reply = self.scheduler.lease(conn_key, 1)
                if reply["type"] == "done":
                    return
                if reply["type"] != "tasks":
                    self._local_stop.wait(0.05)
                    continue
                for entry in reply["tasks"]:
                    outcome, metrics = execute_task_with_metrics(
                        SweepTask.from_dict(entry["task"])
                    )
                    message = {
                        "type": "result",
                        "shard": reply["shard"],
                        "sweep": reply["sweep"],
                        "index": entry["index"],
                        "task_id": entry["task_id"],
                        "outcome": outcome,
                    }
                    if any(metrics.get(k) for k in
                           ("counters", "gauges", "histograms")):
                        message["metrics"] = metrics
                    self.scheduler.record_result(conn_key, message)
        finally:
            self.scheduler.release(conn_key)


# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.service",
        description="Always-on verification service: accepts sweep "
        "submissions over HTTP, serves task shards to elastic socket "
        "workers, journals every outcome, and restores all in-flight "
        "sweeps from its state directory after a restart.",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:8765", metavar="HOST:PORT",
        help="worker-socket endpoint (default 127.0.0.1:8765; port 0 picks "
        "a free port)",
    )
    parser.add_argument(
        "--http", default="127.0.0.1:0", metavar="HOST:PORT",
        help="HTTP submit/status endpoint (default 127.0.0.1 on a free "
        "port, printed at startup); 'off' disables",
    )
    parser.add_argument(
        "--state-dir", default=".repro-service", metavar="DIR",
        help="service state directory: one journal + meta file per sweep; "
        "restarting on the same directory restores every sweep "
        "(default .repro-service)",
    )
    parser.add_argument(
        "--local-procs", type=int, default=0, metavar="N",
        help="also execute tasks in-process with N local executor threads "
        "(default 0: external workers only)",
    )
    parser.add_argument(
        "--auth-token", default=os.environ.get(TOKEN_ENV),
        help="shared secret required from non-loopback workers and HTTP "
        f"clients (default: ${TOKEN_ENV}; loopback peers are exempt)",
    )
    parser.add_argument(
        "--worker-timeout", type=float, default=0.0,
        help="seconds of worker silence before its connection is reaped "
        "and its shard requeued; 0 disables (default)",
    )
    parser.add_argument(
        "--max-task-retries", type=int, default=2,
        help="default re-lease budget per task after lost workers "
        "(default 2)",
    )
    parser.add_argument(
        "--target-lease-seconds", type=float, default=10.0,
        help="latency-adaptive shard sizing target: shards are sized so "
        "one shard takes roughly this long on the requesting worker "
        "(default 10)",
    )
    parser.add_argument(
        "--quarantine-workers", type=int, default=3,
        help="quarantine a task once it has failed on this many distinct "
        "workers, even with retry budget left (default 3; 0 disables)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="arm deterministic fault injection (exported to local "
        f"executors via ${faultinject.FAULTS_ENV}); chaos testing only",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help=f"fault-injection decision seed (default: ${faultinject.SEED_ENV} "
        "or 0)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.cluster.worker import parse_endpoint

    args = build_parser().parse_args(argv)
    try:
        host, port = parse_endpoint(args.listen)
        http_endpoint = None if args.http == "off" else parse_endpoint(args.http)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        faultinject.configure(args.faults, seed=args.fault_seed)
    except faultinject.FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = VerificationService(
        host,
        port,
        http_host=http_endpoint[0] if http_endpoint else None,
        http_port=http_endpoint[1] if http_endpoint else None,
        state_dir=args.state_dir,
        auth_token=args.auth_token,
        worker_timeout=args.worker_timeout,
        local_procs=args.local_procs,
        max_task_retries=args.max_task_retries,
        target_lease_seconds=args.target_lease_seconds,
        quarantine_workers=args.quarantine_workers,
    )
    service.start()
    shost, sport = service.address
    print(f"[service] workers:  python -m repro.cluster.worker --connect {shost}:{sport}", flush=True)
    if service.http_address:
        hhost, hport = service.http_address
        print(f"[service] submit:   python -m repro.pipeline --submit {hhost}:{hport} ...", flush=True)
        print(f"[service] status:   curl http://{hhost}:{hport}/status", flush=True)
    print(f"[service] state dir {service.state.root}; Ctrl-C to stop "
          f"(sweeps resume on restart)", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("[service] stopping (journals preserved)", flush=True)
        service.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
