"""The sweep scheduler core: multi-tenant task accounting, no transport.

This module is the *service brain*: a registry of concurrently active
sweeps, each with its own task queue, journal, retry budget and lifecycle
state, plus weighted fair-share dispatch across them.  It deliberately
knows nothing about sockets, HTTP or asyncio -- the transport layer
(:mod:`repro.cluster.service`) translates wire messages into the three
scheduler verbs and nothing else:

* :meth:`SweepScheduler.lease` -- hand a connection a shard of tasks,
  picked from the active sweep with the smallest priority-weighted share
  of dispatched work (deficit fair-share: a sweep of priority 3 receives
  ~3x the leases of a priority-1 sweep while both have pending work);
* :meth:`SweepScheduler.record_result` -- route a finished outcome back to
  its sweep (connection lease table, then explicit sweep id, then a global
  task-id search, so pre-multi-tenant workers that never echo a sweep id
  still route correctly), journal it, and fire the progress callback;
* :meth:`SweepScheduler.release` -- return a lost connection's in-flight
  leases to their queues with bounded per-task retries.

Sweeps move through ``submitted -> running -> draining -> complete``
(*draining* once the queue is empty but leases are still in flight; a
per-sweep event wakes :meth:`wait` on completion).  Every invariant of
the one-shot coordinator survives multi-tenancy: requeue-on-disconnect
with bounded retries and retry anti-affinity, dedup by task ID (late
results from workers presumed lost are dropped), tail-leveled shard
sizing, and bitwise ``comparable_dict()`` parity with a serial run --
now *per sweep*.

Shard sizing is additionally **latency-adaptive**: a per-connection EWMA
of observed per-task wall-clock caps each shard near
``target_lease_seconds / ewma`` (slow workers take small, cheap-to-requeue
shards; fast ones amortize round-trips), with the pending-count tail cap
``ceil(pending / (2 * active))`` still applied on top; the chosen size
and latency estimate are recorded in each shard's metadata.

Everything is guarded by one lock and calls only the standard threading /
time modules, so the core is unit-testable with plain function calls (see
``tests/test_service.py::TestScheduler``) -- no event loop required.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import faultinject
from repro.core.reporting import Verdict
from repro.pipeline.result import SweepResult
from repro.pipeline.tasks import SweepTask
from repro.telemetry import MetricsRegistry
from repro.telemetry import monotonic as _monotonic
from repro.telemetry.metrics import parse_metric_key

__all__ = [
    "SweepScheduler",
    "SweepEntry",
    "SUBMITTED",
    "RUNNING",
    "DRAINING",
    "COMPLETE",
    "SWEEP_STATES",
]

#: Sweep lifecycle states, in order.
SUBMITTED, RUNNING, DRAINING, COMPLETE = (
    "submitted", "running", "draining", "complete")
SWEEP_STATES = (SUBMITTED, RUNNING, DRAINING, COMPLETE)

#: Smoothing factor of the per-connection task-latency EWMA.
_EWMA_ALPHA = 0.3


class SweepEntry:
    """One registered sweep: tasks, queue, outcomes, journal, lifecycle."""

    def __init__(
        self,
        sweep_id: str,
        tasks: Sequence[SweepTask],
        *,
        suite: str,
        buggy: bool,
        backend: str,
        priority: float,
        max_task_retries: int,
        store: Optional[Any],
        completed: Optional[Dict[str, Dict[str, Any]]],
        progress_callback: Optional[Callable[..., None]],
        owns_store: bool,
        clock: Callable[[], float],
    ) -> None:
        self.sweep_id = sweep_id
        self.tasks = list(tasks)
        self.suite = suite
        self.buggy = buggy
        self.backend = backend
        self.priority = max(priority, 1e-6)
        self.max_task_retries = max_task_retries
        self.store = store
        self.owns_store = owns_store
        self.progress_callback = progress_callback
        self.task_ids = [t.task_id for t in self.tasks]
        self.index_of = {tid: i for i, tid in enumerate(self.task_ids)}
        self.outcomes: List[Optional[Dict[str, Any]]] = [None] * len(self.tasks)
        self.pending: deque = deque()
        self.lost_leases: Dict[int, int] = {}
        #: index -> distinct worker numbers whose lease on it failed
        #: (connection loss, contained crash, or deadline timeout).
        self.failed_workers: Dict[int, set] = {}
        #: Quarantined-task records, surfaced through ``/status``.
        self.quarantined: List[Dict[str, Any]] = []
        self.done_count = 0
        self.leased_total = 0  # tasks ever dispatched (fair-share deficit)
        self.in_flight = 0
        self.shard_sizes: List[int] = []
        self.shard_meta: List[Dict[str, Any]] = []
        self.state = SUBMITTED
        self.done_event = threading.Event()
        self.submitted_at = clock()
        self.completed_at: Optional[float] = None
        self.first_fresh_at: Optional[float] = None
        self.fresh_count = 0  # outcomes executed this service life (not restored)
        #: Per-sweep metrics: deltas piggybacked on this sweep's result
        #: frames, merged as they land (attached to the sweep's result).
        self.metrics = MetricsRegistry()
        #: Fuzzing trials attempted across this sweep's landed outcomes.
        self.trials_attempted = 0

        completed = completed if completed is not None else (
            dict(store.completed) if store is not None else {}
        )
        for index, tid in enumerate(self.task_ids):
            outcome = completed.get(tid)
            if outcome is not None:
                self.outcomes[index] = outcome
                self.done_count += 1
            else:
                self.pending.append(index)
        if self.done_count == len(self.tasks):
            self._finish(clock)

    # -- helpers (caller holds the scheduler lock) --------------------- #
    @property
    def total(self) -> int:
        return len(self.tasks)

    @property
    def remaining(self) -> int:
        return self.total - self.done_count

    def _finish(self, clock: Callable[[], float]) -> None:
        self.state = COMPLETE
        self.completed_at = clock()
        self.done_event.set()
        if self.store is not None and self.owns_store:
            self.store.close()

    def _refresh_state(self, clock: Callable[[], float]) -> None:
        if self.done_count == self.total:
            if self.state != COMPLETE:
                self._finish(clock)
        elif self.state != SUBMITTED:
            # Draining: nothing queued, but leases still in flight.
            self.state = DRAINING if not self.pending else RUNNING

    def synthetic_outcome(
        self, index: int, error: str, worker: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """A journal-shaped UNTESTED outcome for a task that never ran."""
        task = self.tasks[index]
        return {
            "suite": task.suite,
            "workload": task.workload,
            "transformation": task.transformation.name,
            "match_index": task.match_index,
            "task_id": self.task_ids[index],
            "worker": worker,
            "verdict": Verdict.UNTESTED.value,
            "match_description": task.match_description,
            "error": error,
            "report": None,
        }

    def result(self) -> SweepResult:
        duration = (self.completed_at or self.submitted_at) - self.submitted_at
        return SweepResult(
            suite=self.suite,
            buggy=self.buggy,
            backend=self.backend,
            outcomes=list(self.outcomes),
            duration_seconds=duration,
            sweep_id=self.sweep_id,
            telemetry=(
                None
                if self.metrics.is_empty()
                else {"metrics": self.metrics.snapshot()}
            ),
        )

    def snapshot(self, clock: Callable[[], float]) -> Dict[str, Any]:
        """Progress/ETA introspection document (JSON-safe)."""
        now = clock()
        rate = None
        eta = None
        if self.fresh_count > 1 and self.first_fresh_at is not None:
            elapsed = now - self.first_fresh_at
            if elapsed > 0:
                # The anchoring outcome's latency was not observed.
                rate = (self.fresh_count - 1) / elapsed
                if rate > 0:
                    eta = self.remaining / rate
        return {
            "sweep_id": self.sweep_id,
            "state": self.state,
            "suite": self.suite,
            "buggy": self.buggy,
            "backend": self.backend,
            "priority": self.priority,
            "total": self.total,
            "done": self.done_count,
            "pending": len(self.pending),
            "in_flight": self.in_flight,
            "shards": len(self.shard_sizes),
            "shard_sizes": list(self.shard_sizes),
            "tasks_per_second": rate,
            "eta_seconds": eta,
            "age_seconds": now - self.submitted_at,
            "quarantined": [dict(q) for q in self.quarantined],
            "journal": getattr(self.store, "path", None),
            "counters": {
                "tasks_done": self.done_count,
                "tasks_fresh": self.fresh_count,
                "trials_attempted": self.trials_attempted,
            },
        }


class _ConnState:
    """Per-connection accounting: identity, lease table, latency EWMA."""

    def __init__(self, number: int, clock_now: float) -> None:
        self.number = number
        self.info: Dict[str, Any] = {"worker": number}
        self.introduced = False
        #: Outstanding leases: (sweep_id, index, task_id) triples.
        self.leases: List[Tuple[str, int, str]] = []
        #: EWMA of observed per-task wall-clock seconds; None until observed.
        self.latency_ewma: Optional[float] = None
        #: Monotonic time of the last lease or result on this connection.
        self.last_event = clock_now


class SweepScheduler:
    """Multi-sweep task scheduler behind the always-on service.

    Transport-free: drive it with plain method calls (tests), from the
    asyncio socket/HTTP service (:mod:`repro.cluster.service`), or from
    in-process local executor threads -- all three concurrently.
    """

    def __init__(
        self,
        *,
        max_task_retries: int = 2,
        batch_size: int = 0,
        target_lease_seconds: float = 10.0,
        done_when_idle: bool = False,
        quarantine_workers: int = 3,
        clock: Callable[[], float] = _monotonic,
    ) -> None:
        #: Default re-lease budget per task (per sweep override on submit).
        self.max_task_retries = max_task_retries
        #: A task whose lease fails on this many *distinct* workers is
        #: quarantined with a synthetic outcome even while retry budget
        #: remains (a poison task must not burn its budget against every
        #: worker in the fleet); 0 disables quarantine.
        self.quarantine_workers = quarantine_workers
        #: Global hard cap on tasks per shard; 0 defers to worker requests.
        self.batch_size = batch_size
        #: Latency-adaptive sizing target: a shard should take roughly this
        #: long on the requesting worker (given its observed per-task EWMA).
        self.target_lease_seconds = target_lease_seconds
        #: ``True``: an idle scheduler (every sweep complete) answers leases
        #: with ``done`` so workers drain and exit (one-shot coordinator
        #: mode); a persistent service leaves this ``False`` and idle
        #: workers park on ``wait`` until the next sweep arrives.
        self.done_when_idle = done_when_idle
        self._clock = clock
        self._lock = threading.Lock()
        #: Fleet-wide metrics: every sweep's piggybacked worker deltas plus
        #: the scheduler's own counters/gauges, rendered by ``GET /metrics``.
        self.metrics = MetricsRegistry()
        self._sweeps: Dict[str, SweepEntry] = {}  # insertion-ordered
        self._conns: Dict[Any, _ConnState] = {}
        self._shard_counter = 0
        self._worker_counter = 0
        self._active_workers = 0
        self._started_at = clock()

    # ------------------------------------------------------------------ #
    # Sweep registry
    # ------------------------------------------------------------------ #
    def submit(
        self,
        tasks: Sequence[SweepTask],
        *,
        sweep_id: Optional[str] = None,
        suite: Optional[str] = None,
        buggy: Optional[bool] = None,
        backend: Optional[str] = None,
        priority: float = 1.0,
        max_task_retries: Optional[int] = None,
        store: Optional[Any] = None,
        completed: Optional[Dict[str, Dict[str, Any]]] = None,
        progress_callback: Optional[Callable[..., None]] = None,
        owns_store: bool = False,
    ) -> str:
        """Register a sweep; returns its id.  Safe while workers run."""
        tasks = list(tasks)
        if suite is None:
            suite = tasks[0].suite if tasks else "npbench"
        if buggy is None:
            buggy = any(
                bool(t.transformation.kwargs.get("inject_bug")) for t in tasks
            )
        if backend is None:
            backend = (
                tasks[0].verifier_kwargs.get("backend", "interpreter")
                if tasks
                else "interpreter"
            )
        with self._lock:
            if sweep_id is None:
                sweep_id = f"sweep-{len(self._sweeps) + 1:03d}"
                while sweep_id in self._sweeps:
                    sweep_id = f"{sweep_id}x"
            elif sweep_id in self._sweeps:
                raise ValueError(f"sweep id {sweep_id!r} already registered")
            self._sweeps[sweep_id] = SweepEntry(
                sweep_id,
                tasks,
                suite=suite,
                buggy=buggy,
                backend=backend,
                priority=priority,
                max_task_retries=(
                    max_task_retries
                    if max_task_retries is not None
                    else self.max_task_retries
                ),
                store=store,
                completed=completed,
                progress_callback=progress_callback,
                owns_store=owns_store,
                clock=self._clock,
            )
        return sweep_id

    def sweep_ids(self) -> List[str]:
        with self._lock:
            return list(self._sweeps)

    def _entry(self, sweep_id: str) -> SweepEntry:
        entry = self._sweeps.get(sweep_id)
        if entry is None:
            raise KeyError(f"unknown sweep {sweep_id!r}")
        return entry

    # ------------------------------------------------------------------ #
    # Connection registry
    # ------------------------------------------------------------------ #
    def _conn(self, conn_key: Any) -> _ConnState:
        conn = self._conns.get(conn_key)
        if conn is None:
            self._worker_counter += 1
            conn = _ConnState(self._worker_counter, self._clock())
            self._conns[conn_key] = conn
        return conn

    def worker_joined(self, conn_key: Any, info: Dict[str, Any]) -> Dict[str, Any]:
        """Record a ``hello``; returns the welcome payload (JSON-safe)."""
        with self._lock:
            conn = self._conn(conn_key)
            if not conn.introduced:
                conn.introduced = True
                self._active_workers += 1
            conn.info = dict(info or {})
            conn.info["worker"] = conn.number
            active = [e for e in self._sweeps.values() if e.state != COMPLETE]
            first = active[0] if active else None
            return {
                "type": "welcome",
                "total": sum(e.total for e in active),
                "sweeps": len(active),
                "suite": first.suite if first else None,
                "buggy": first.buggy if first else False,
                "backend": first.backend if first else None,
            }

    def release(self, conn_key: Any) -> None:
        """Forget a connection, requeueing its in-flight leases.

        Each lost lease counts against the task's retry budget; exhaustion
        completes the task with a synthetic infrastructure-error outcome so
        a poisonous task cannot wedge its sweep forever.
        """
        with self._lock:
            conn = self._conns.pop(conn_key, None)
            if conn is None:
                return
            if conn.introduced:
                self._active_workers -= 1
            for sweep_id, index, task_id in conn.leases:
                entry = self._sweeps.get(sweep_id)
                if entry is None or entry.outcomes[index] is not None:
                    continue  # sweep gone, or its result raced the loss
                entry.in_flight -= 1
                self._fail_task(entry, index, task_id, conn, "connection lost")
            conn.leases.clear()

    def _fail_task(
        self,
        entry: SweepEntry,
        index: int,
        task_id: str,
        conn: "_ConnState",
        kind: str,
        worker_outcome: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Account one retryable failure of a leased task (lock held).

        ``kind``: ``"connection lost"`` (worker vanished mid-lease) or
        ``"timeout"`` / ``"crash"`` (a supervised worker contained it).
        Requeues at the front unless the distinct-worker quarantine
        threshold or retry budget is exhausted, in which case a synthetic
        UNTESTED outcome lands (the worker's own ``worker_outcome`` when
        one was reported) so a poisonous task can never wedge its sweep.
        """
        losses = entry.lost_leases[index] = entry.lost_leases.get(index, 0) + 1
        workers = entry.failed_workers.setdefault(index, set())
        workers.add(conn.number)
        quarantined = (
            self.quarantine_workers > 0
            and len(workers) >= self.quarantine_workers
        )
        if not quarantined and losses <= entry.max_task_retries:
            # Front of the queue: a requeued task is the oldest
            # outstanding work and must not starve behind the tail.
            entry.pending.appendleft(index)
            entry._refresh_state(self._clock)
            return
        error: Optional[str]
        if quarantined:
            error = (
                f"task quarantined: {kind} on {len(workers)} distinct "
                f"worker(s) (quarantine threshold: {self.quarantine_workers})"
            )
            entry.quarantined.append({
                "task_id": task_id,
                "workload": entry.tasks[index].workload,
                "reason": kind,
                "workers": sorted(workers),
            })
            self.metrics.inc(
                "repro_tasks_quarantined_total",
                labels={"sweep": entry.sweep_id},
            )
        elif kind == "connection lost":
            error = (
                f"worker connection lost {losses} time(s) while running "
                f"this task (retry budget: {entry.max_task_retries})"
            )
        elif worker_outcome is None:
            error = (
                f"task {kind} {losses} time(s) on supervised worker(s) "
                f"(retry budget: {entry.max_task_retries})"
            )
        else:
            error = None  # the worker's own contained-failure outcome lands
        if error is None and worker_outcome is not None:
            outcome = worker_outcome
        else:
            outcome = entry.synthetic_outcome(index, error, dict(conn.info))
        self._land(entry, index, task_id, outcome)

    # ------------------------------------------------------------------ #
    # Dispatch (fair share + adaptive sizing)
    # ------------------------------------------------------------------ #
    def _shard_cap(self, entry: SweepEntry, conn: _ConnState, max_tasks: int) -> int:
        """Bound a shard by the worker request, the global batch cap, the
        connection's latency estimate, and (with >1 active workers) the
        pending-count tail leveler."""
        max_tasks = max(1, max_tasks)
        if self.batch_size > 0:
            max_tasks = min(max_tasks, self.batch_size)
        if conn.latency_ewma and conn.latency_ewma > 0:
            latency_cap = max(
                1, int(self.target_lease_seconds / conn.latency_ewma)
            )
            max_tasks = min(max_tasks, latency_cap)
        if self._active_workers > 1:
            pending = len(entry.pending)
            tail_cap = max(1, -(-pending // (2 * self._active_workers)))
            max_tasks = min(max_tasks, tail_cap)
        return max_tasks

    def _fair_order(self) -> List[SweepEntry]:
        """Incomplete sweeps, smallest priority-weighted dispatch first."""
        candidates = [
            e for e in self._sweeps.values() if e.state != COMPLETE and e.pending
        ]
        return sorted(
            candidates, key=lambda e: (e.leased_total / e.priority, e.submitted_at)
        )

    def lease(self, conn_key: Any, max_tasks: int) -> Dict[str, Any]:
        """Serve a ``request``: a ``tasks`` shard, ``wait``, or ``done``."""
        faultinject.hit("scheduler.dispatch")
        with self._lock:
            conn = self._conn(conn_key)
            for entry in self._fair_order():
                cap = self._shard_cap(entry, conn, max_tasks)
                shard: List[Dict[str, Any]] = []
                deferred: List[int] = []
                while entry.pending and len(shard) < cap:
                    index = entry.pending.popleft()
                    if entry.outcomes[index] is not None:
                        # Requeued after a lost lease, but the "lost"
                        # worker's result landed anyway: don't re-run.
                        continue
                    if len(self._conns) > 1 and (
                        conn.number in entry.failed_workers.get(index, ())
                    ):
                        # Retry anti-affinity: while other workers are
                        # connected, steer a retry away from one that already
                        # failed this task (no new quarantine evidence there).
                        deferred.append(index)
                        continue
                    conn.leases.append((entry.sweep_id, index, entry.task_ids[index]))
                    shard.append({
                        "index": index,
                        "task_id": entry.task_ids[index],
                        "task": entry.tasks[index].to_dict(),
                    })
                if deferred:  # back at the front, for the next worker
                    entry.pending.extendleft(reversed(deferred))
                if not shard:
                    continue  # only complete/anti-affine indices were queued
                self._shard_counter += 1
                entry.leased_total += len(shard)
                entry.in_flight += len(shard)
                entry.shard_sizes.append(len(shard))
                entry.shard_meta.append({
                    "shard": self._shard_counter,
                    "size": len(shard),
                    "worker": conn.number,
                    "latency_ewma": conn.latency_ewma,
                })
                if entry.state == SUBMITTED:
                    entry.state = RUNNING
                entry._refresh_state(self._clock)
                conn.last_event = self._clock()
                return {
                    "type": "tasks",
                    "shard": self._shard_counter,
                    "sweep": entry.sweep_id,
                    "latency_ewma": conn.latency_ewma,
                    "tasks": shard,
                }
            if self.done_when_idle and all(
                e.state == COMPLETE for e in self._sweeps.values()
            ):
                return {"type": "done"}
            # Outstanding work is leased elsewhere (or no sweep is active):
            # the worker backs off briefly and asks again.
            return {"type": "wait"}

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _route(
        self, conn: _ConnState, task_id: Any, sweep_hint: Optional[str]
    ) -> Optional[Tuple[SweepEntry, int, bool]]:
        """Find (sweep, index, was_leased_here) for an arriving result.

        Priority: this connection's lease table (unambiguous even when two
        concurrent sweeps contain an identical task), then the message's
        explicit sweep id, then a global search -- preferring an incomplete
        match so a late duplicate never shadows fresh work elsewhere.
        """
        for pos, (sweep_id, index, tid) in enumerate(conn.leases):
            if tid == task_id:
                entry = self._sweeps.get(sweep_id)
                if entry is not None:
                    del conn.leases[pos]
                    return entry, index, True
        if sweep_hint is not None:
            entry = self._sweeps.get(sweep_hint)
            if entry is not None and task_id in entry.index_of:
                return entry, entry.index_of[task_id], False
        fallback = None
        for entry in self._sweeps.values():
            index = entry.index_of.get(task_id)
            if index is None:
                continue
            if entry.outcomes[index] is None:
                return entry, index, False
            fallback = fallback or (entry, index, False)
        return fallback

    def _land(
        self,
        entry: SweepEntry,
        index: int,
        task_id: str,
        outcome: Dict[str, Any],
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one completed outcome (journal + progress); lock held."""
        entry.outcomes[index] = outcome
        entry.done_count += 1
        now = self._clock()
        if entry.first_fresh_at is None:
            entry.first_fresh_at = now
        entry.fresh_count += 1
        if metrics:
            entry.metrics.merge(metrics)
            self.metrics.merge(metrics)
        labels = {"sweep": entry.sweep_id}
        self.metrics.inc("repro_sweep_tasks_total", labels=labels)
        report = outcome.get("report") or {}
        fuzzing = report.get("fuzzing") or {}
        trials = fuzzing.get("trials_attempted") or 0
        if trials:
            entry.trials_attempted += trials
            self.metrics.inc("repro_sweep_trials_total", trials, labels=labels)
        if entry.store is not None:
            entry.store.record(task_id, index, outcome)
        # Under the lock so concurrent deliveries cannot interleave
        # progress lines with out-of-order completed counts.
        if entry.progress_callback is not None:
            entry.progress_callback(index, outcome, entry.done_count, entry.total)
        entry._refresh_state(self._clock)

    def record_result(self, conn_key: Any, message: Dict[str, Any]) -> None:
        """Consume a ``result`` message (late duplicates are dropped)."""
        task_id = message.get("task_id")
        with self._lock:
            conn = self._conn(conn_key)
            # Latency observation: the gap since this connection's last
            # lease or result approximates one task's wall-clock (folding a
            # multi-process worker's parallelism into observed throughput).
            now = self._clock()
            elapsed = now - conn.last_event
            conn.last_event = now
            if elapsed > 0:
                conn.latency_ewma = (
                    elapsed
                    if conn.latency_ewma is None
                    else _EWMA_ALPHA * elapsed + (1 - _EWMA_ALPHA) * conn.latency_ewma
                )
                self.metrics.set_gauge(
                    "repro_worker_latency_ewma_seconds",
                    conn.latency_ewma,
                    labels={"worker": str(conn.number)},
                )
            routed = self._route(conn, task_id, message.get("sweep"))
            if routed is None:
                return  # a task of some forgotten sweep; drop it
            entry, index, was_leased = routed
            if was_leased:
                entry.in_flight -= 1
            if entry.outcomes[index] is not None:
                return  # late duplicate after a requeue: first result won
            outcome = dict(message.get("outcome") or {})
            outcome["task_id"] = task_id
            outcome["worker"] = {**conn.info, "shard": message.get("shard")}
            failure = outcome.get("failure")
            if failure in ("timeout", "crash") and was_leased:
                # A supervised worker contained this failure (deadline
                # watchdog or dead pool member).  Account it like a lost
                # lease -- retry elsewhere, quarantine on distinct workers,
                # land the worker's synthetic outcome only on exhaustion.
                if failure == "timeout":
                    self.metrics.inc(
                        "repro_task_timeouts_total",
                        labels={"sweep": entry.sweep_id},
                    )
                self._fail_task(entry, index, task_id, conn, failure,
                                worker_outcome=outcome)
                return
            self._land(entry, index, task_id, outcome, message.get("metrics"))

    def record_heartbeat(
        self, conn_key: Any, snapshot: Optional[Dict[str, Any]]
    ) -> None:
        """Fold a worker ping's status gauges into the fleet registry.

        Heartbeats carry only *gauges* of current worker state (in-flight
        count, oldest in-flight task age) so a hung task shows in
        ``GET /metrics`` before any result lands; counter/histogram deltas
        keep riding result frames exclusively (no double-counting).
        """
        if not snapshot:
            return
        with self._lock:
            conn = self._conn(conn_key)
            for key, value in (snapshot.get("gauges") or {}).items():
                name, labels = parse_metric_key(key)
                labels["worker"] = str(conn.number)
                self.metrics.set_gauge(name, value, labels)

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        """Cancel an incomplete sweep and forget it; returns a final
        status snapshot.

        Unfinished tasks get synthetic UNTESTED outcomes (not journaled:
        the caller is about to evict the sweep's state), the queue clears,
        outstanding leases drop (late results route nowhere), waiters wake.
        Raises KeyError for an unknown sweep, ValueError when already
        complete (the transport's 404/409).
        """
        with self._lock:
            entry = self._entry(sweep_id)
            if entry.state == COMPLETE:
                raise ValueError(f"sweep {sweep_id!r} is already complete")
            for index, outcome in enumerate(entry.outcomes):
                if outcome is not None:
                    continue
                entry.outcomes[index] = entry.synthetic_outcome(
                    index, "sweep cancelled", None
                )
                entry.done_count += 1
            entry.pending.clear()
            entry.in_flight = 0
            for conn in self._conns.values():
                conn.leases = [l for l in conn.leases if l[0] != sweep_id]
            entry._finish(self._clock)
            self.metrics.inc("repro_sweeps_cancelled_total")
            snapshot = entry.snapshot(self._clock)
            snapshot["cancelled"] = True
            del self._sweeps[sweep_id]
            return snapshot

    # ------------------------------------------------------------------ #
    # Introspection / completion
    # ------------------------------------------------------------------ #
    def wait(self, sweep_id: str, timeout: Optional[float] = None) -> SweepResult:
        """Block until ``sweep_id`` completes; returns its result."""
        with self._lock:
            entry = self._entry(sweep_id)
        if not entry.done_event.wait(timeout):
            raise TimeoutError(
                f"Sweep {sweep_id} incomplete after {timeout} s "
                f"({entry.remaining}/{entry.total} tasks outstanding)"
            )
        with self._lock:
            return entry.result()

    def result(self, sweep_id: str) -> SweepResult:
        with self._lock:
            return self._entry(sweep_id).result()

    def sweep_status(self, sweep_id: str) -> Dict[str, Any]:
        with self._lock:
            return self._entry(sweep_id).snapshot(self._clock)

    def service_status(self) -> Dict[str, Any]:
        with self._lock:
            sweeps = {
                sid: e.snapshot(self._clock) for sid, e in self._sweeps.items()
            }
            return {
                "uptime_seconds": self._clock() - self._started_at,
                "active_workers": self._active_workers,
                "workers_seen": self._worker_counter,
                "sweeps": sweeps,
                "total_tasks": sum(e.total for e in self._sweeps.values()),
                "done_tasks": sum(e.done_count for e in self._sweeps.values()),
            }

    @property
    def worker_count(self) -> int:
        with self._lock:
            return self._worker_counter

    @property
    def active_workers(self) -> int:
        with self._lock:
            return self._active_workers

    def close(self) -> None:
        """Close every journal the scheduler owns (service shutdown)."""
        with self._lock:
            for entry in self._sweeps.values():
                if entry.store is not None and entry.owns_store:
                    entry.store.close()
