"""Deadline-supervised task execution: disposable, killable members.

A :class:`multiprocessing.Pool` cannot enforce per-task deadlines: a hung
trial wedges one pool member forever and the whole sweep with it.  The
:class:`SupervisedExecutor` runs tasks on dedicated member processes it
can kill: each member executes one task at a time off its own queue and
reports on a shared result queue, while the parent watches wall-clock.

* A member that exceeds the per-task **deadline** is killed and respawned;
  the task completes with a synthetic UNTESTED outcome flagged
  ``"failure": "timeout"``.
* A member that **dies** mid-task (segfault, OOM kill, an injected
  ``crash`` fault) is detected by liveness polling and likewise yields a
  ``"failure": "crash"`` outcome instead of taking the worker down.

The ``failure`` flag tells the scheduler the outcome is *retryable*: it
counts against the task's retry budget and distinct-worker quarantine
threshold, and only lands in the journal when those are exhausted --
exactly like a lost lease, but without losing the worker's other work.

Used by the cluster worker when ``--task-timeout`` is set; without it the
worker keeps its plain in-process / pool execution paths (warm caches, no
supervision overhead).
"""

from __future__ import annotations

import queue
from collections import deque
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from repro.core.reporting import Verdict
from repro.pipeline.runner import _pool_context, execute_task_with_metrics
from repro.pipeline.tasks import SweepTask
from repro.telemetry import monotonic as _monotonic

__all__ = ["SupervisedExecutor"]

#: How long the supervisor blocks on the result queue per watchdog cycle.
_POLL_SECONDS = 0.05

#: One shard item: (index, task_id, task).
_Item = Tuple[int, str, SweepTask]


def _member_loop(member_id: int, task_queue: Any, result_queue: Any) -> None:
    """Body of one supervised member: execute tasks until told to stop."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, task_id, task = item
        outcome, metrics = execute_task_with_metrics(task)
        result_queue.put((member_id, index, task_id, outcome, metrics))


class _Member:
    def __init__(self, ctx: Any, member_id: int, result_queue: Any) -> None:
        self.id = member_id
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_member_loop,
            args=(member_id, self.task_queue, result_queue),
            name=f"supervised-member-{member_id}",
            daemon=True,
        )
        self.process.start()


class SupervisedExecutor:
    """Run shards on killable member processes with a per-task deadline."""

    def __init__(self, procs: int, task_timeout: float) -> None:
        self._ctx = _pool_context()
        self._timeout = float(task_timeout)
        self._results: Any = self._ctx.Queue()
        self._members: Dict[int, _Member] = {}
        self._next_id = 0
        for _ in range(max(1, int(procs))):
            self._spawn()

    def _spawn(self) -> None:
        member = _Member(self._ctx, self._next_id, self._results)
        self._next_id += 1
        self._members[member.id] = member

    def _retire(self, member_id: int) -> None:
        member = self._members.pop(member_id)
        member.process.kill()
        member.process.join(timeout=5.0)
        member.task_queue.close()

    @staticmethod
    def _failure_outcome(
        task: SweepTask, task_id: str, reason: str, timeout: float
    ) -> Dict[str, Any]:
        if reason == "timeout":
            error = (
                f"task exceeded its {timeout:g} s deadline; the stuck "
                f"worker process was killed and respawned"
            )
        else:
            error = "worker process died while running this task"
        return {
            "suite": task.suite,
            "workload": task.workload,
            "transformation": task.transformation.name,
            "match_index": task.match_index,
            "task_id": task_id,
            "worker": None,
            "verdict": Verdict.UNTESTED.value,
            "match_description": task.match_description,
            "error": error,
            "report": None,
            "failure": reason,
        }

    # ------------------------------------------------------------------ #
    def run_shard(
        self, indexed: Iterable[_Item]
    ) -> Iterator[Tuple[int, str, Dict[str, Any], Optional[Dict[str, Any]]]]:
        """Execute a shard, yielding ``(index, task_id, outcome, metrics)``
        as tasks finish (timeouts and member deaths included)."""
        pending: deque = deque(indexed)
        in_flight: Dict[int, Tuple[float, _Item]] = {}
        while pending or in_flight:
            for member_id, member in list(self._members.items()):
                if member_id in in_flight or not pending:
                    continue
                if not member.process.is_alive():
                    # Died while idle (e.g. a crash fault between tasks):
                    # replace it before trusting it with work.
                    self._retire(member_id)
                    self._spawn()
                    continue
                item = pending.popleft()
                member.task_queue.put(item)
                in_flight[member_id] = (_monotonic(), item)
            try:
                member_id, index, task_id, outcome, metrics = (
                    self._results.get(timeout=_POLL_SECONDS)
                )
            except queue.Empty:
                pass
            else:
                flight = in_flight.get(member_id)
                if flight is not None and flight[1][0] == index:
                    del in_flight[member_id]
                    yield index, task_id, outcome, metrics
                # else: a straggler from a member retired after its result
                # was already queued -- its timeout outcome won; drop it.
                continue
            now = _monotonic()
            for member_id in list(in_flight):
                started, (index, task_id, task) = in_flight[member_id]
                member = self._members[member_id]
                dead = not member.process.is_alive()
                late = self._timeout > 0 and (now - started) > self._timeout
                if not dead and not late:
                    continue
                reason = "crash" if dead else "timeout"
                del in_flight[member_id]
                self._retire(member_id)
                self._spawn()
                yield (
                    index,
                    task_id,
                    self._failure_outcome(task, task_id, reason, self._timeout),
                    None,
                )

    def close(self) -> None:
        for member_id in list(self._members):
            self._retire(member_id)
        self._results.close()
