"""The sweep worker: pulls task shards from a service, streams results.

Run one per machine (or several, they are independent)::

    python -m repro.cluster.worker --connect HOST:PORT --backend compiled --procs 4

The worker connects, introduces itself, and loops: request a shard sized to
its local process count, execute it, stream each outcome back the moment it
lands, repeat until the service says ``done``.  Execution reuses the
pipeline's :func:`~repro.pipeline.runner.execute_task` verbatim, so a
distributed sweep computes bitwise the same outcome dicts as a local one.

* ``--procs 1`` (the default) executes in-process, which keeps the chosen
  backend's content-hash program cache warm across all tasks of a shard --
  repeated (workload x transformation) cutouts compile once per worker, not
  once per task.
* ``--procs N`` drives a local fork pool (the same shared-nothing model as
  ``repro.pipeline --workers N``), streaming results as they complete.
* ``--backend B`` overrides the sweep's execution backend *for this worker
  only*.  Backends are bitwise-equivalent, so heterogeneous workers are a
  free cross-machine cross-check: the aggregated report must be identical
  no matter which worker ran which shard (``make smoke-dist`` exploits
  exactly this).

Workers are *elastic* against an always-on verification service
(:mod:`repro.cluster.service`): they may join mid-sweep, are handed shards
from whichever active sweep fair-share picks (echoing each lease's
``sweep`` id back with its results), park on ``wait`` when every task is
leased elsewhere, and may simply be killed -- the service requeues their
in-flight shard.  With ``--reconnect-seconds T`` a worker also *survives a
service bounce*: when the connection drops mid-service it retries the
connection with *jittered* exponential backoff for up to ``T`` seconds
(fresh budget per drop) instead of treating the EOF as end-of-sweep --
the jitter de-correlates a fleet's reconnect stampede after a bounce.
The default 0 keeps the one-shot behavior: a vanished coordinator means
the sweep is over.

With ``--task-timeout T`` tasks execute on *killable supervised
processes* (:mod:`repro.cluster.supervise`): a task that hangs past its
deadline, or whose process dies (segfault, OOM kill), is contained -- the
member is killed and respawned, and the task reports a retryable
``failure``-flagged UNTESTED outcome the scheduler can retry elsewhere or
quarantine, instead of stalling the sweep or losing the worker's other
in-flight work.

Talking to a non-loopback service started with an auth token requires the
shared secret (``--auth-token`` or ``REPRO_CLUSTER_TOKEN``), presented in
the ``hello`` message.  A refusal is fatal and never retried: a wrong
token cannot become right by reconnecting.

While executing tasks the worker keeps a *heartbeat* thread that pings the
service every ``--heartbeat-seconds`` (default 5; 0 disables).  All socket
transactions -- requests, result deliveries, pings -- are serialized
behind one lock, so the strict request/response protocol is preserved; the
heartbeat lets a service running with ``--worker-timeout`` distinguish a
*hung* worker (silent, leases wedged forever) from a merely *busy* one.

If the service is not up yet, the worker retries the initial connection
for ``--connect-retry-seconds`` before giving up, so workers may be
launched first (or supervised and restarted freely -- a reconnecting
worker simply requests the next shard; any shard it lost is requeued).
"""

from __future__ import annotations

import argparse
import os
import random
import socket
import sys
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro import faultinject
from repro.backends import get_backend
from repro.backends.vectorized import CACHE_DIR_ENV
from repro.cluster.protocol import (
    ProtocolError,
    TOKEN_ENV,
    recv_message,
    send_message,
)
from repro.cluster.supervise import SupervisedExecutor
from repro.pipeline.runner import _pool_context, execute_task_with_metrics
from repro.pipeline.tasks import SweepTask
from repro.telemetry import monotonic as _monotonic

__all__ = ["run_worker", "main", "parse_endpoint", "ServiceRefused"]


class ServiceRefused(ProtocolError):
    """The service replied with an ``error`` frame (e.g. a bad auth token).

    Fatal by design: unlike a dropped connection, a refusal is a policy
    decision that reconnecting cannot change, so the reconnect loop never
    retries it.
    """


def parse_endpoint(value: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``, implying loopback)."""
    host, sep, port = value.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", value
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ValueError(f"Invalid endpoint {value!r}: expected HOST:PORT") from None


def _backoff_delays(
    rng: Optional[random.Random] = None,
    base: float = 0.05,
    cap: float = 2.0,
) -> Iterator[float]:
    """Jittered exponential backoff delays: 50-100% of an exponentially
    growing ceiling (``base`` doubling up to ``cap``).

    The jitter matters with a fleet: after a service bounce every worker
    reconnects at once, and a fixed cadence keeps them synchronized --
    each retry wave hammers the listener together.  Randomizing within
    the window de-correlates the herd while keeping the same budget.
    """
    rng_random = (rng or random).random
    attempt = 0
    while True:
        ceiling = min(cap, base * (2.0 ** attempt))
        yield ceiling * (0.5 + rng_random() / 2.0)
        attempt += 1


def _connect(
    host: str,
    port: int,
    retry_seconds: float,
    rng: Optional[random.Random] = None,
) -> socket.socket:
    deadline = _monotonic() + retry_seconds
    delays = _backoff_delays(rng)
    while True:
        try:
            return socket.create_connection((host, port), timeout=30.0)
        except OSError:
            if _monotonic() >= deadline:
                raise
            time.sleep(next(delays))


def _worker_metadata(backend: Optional[str], procs: int) -> Dict[str, Any]:
    return {
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "backend": backend,
        "procs": procs,
    }


def _rebuild_tasks(
    entries: List[Dict[str, Any]],
    backend: Optional[str],
    trial_batch: Optional[int] = None,
) -> List[Tuple[int, str, SweepTask]]:
    """Deserialize a shard, applying this worker's backend and
    trial-batch overrides (both excluded from task identity, so overriding
    them never forks the sweep's accounting).

    The service-issued ``task_id`` travels with each task and is echoed
    back verbatim in the result message: the service keys its accounting
    on the IDs *it* issued, so the worker never recomputes them.
    """
    out = []
    for entry in entries:
        task = SweepTask.from_dict(entry["task"])
        if backend is not None:
            task.verifier_kwargs["backend"] = backend
        if trial_batch is not None:
            task.verifier_kwargs["trial_batch"] = trial_batch
        out.append((entry["index"], entry["task_id"], task))
    return out


class _Heartbeat:
    """Pings the service periodically from a background thread.

    All transactions on the shared socket (the main loop's requests and
    deliveries, and these pings) are serialized behind ``lock``, so every
    request still receives exactly its own response.  A failed ping stops
    the heartbeat silently: the main loop will hit the same broken socket
    and raise with full context.

    Each ping piggybacks the worker's current status gauges (``status``
    callable: in-flight task count, oldest in-flight task age) so a hung
    or long-running task is visible in the service's ``/metrics`` before
    its result frame lands.
    """

    def __init__(
        self,
        sock: socket.socket,
        lock: threading.Lock,
        interval: float,
        status: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> None:
        self._sock = sock
        self._lock = lock
        self._interval = interval
        self._status = status
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._interval <= 0:
            return
        self._thread = threading.Thread(
            target=self._run, name="worker-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                ping: Dict[str, Any] = {"type": "ping"}
                gauges = self._status() if self._status is not None else None
                if gauges:
                    ping["metrics"] = {"gauges": gauges}
                with self._lock:
                    if self._stop.is_set():
                        return
                    send_message(self._sock, ping)
                    reply = recv_message(self._sock)
                if reply is None or reply.get("type") != "pong":
                    return
            except (OSError, ProtocolError):
                return


def run_worker(
    host: str,
    port: int,
    backend: Optional[str] = None,
    trial_batch: Optional[int] = None,
    procs: int = 1,
    connect_retry_seconds: float = 10.0,
    heartbeat_seconds: float = 5.0,
    reconnect_seconds: float = 0.0,
    task_timeout: float = 0.0,
    auth_token: Optional[str] = None,
    quiet: bool = False,
) -> int:
    """Serve one service/coordinator until it reports the sweeps complete.

    With ``reconnect_seconds > 0`` a dropped connection (service bounce,
    network flake) is retried with jittered exponential backoff for up to
    that many seconds per drop; an auth refusal (:class:`ServiceRefused`)
    is always fatal.  With ``task_timeout > 0`` tasks run on killable
    supervised processes (:class:`~repro.cluster.supervise.
    SupervisedExecutor`): a hung or crashed task yields a retryable
    ``failure``-flagged outcome instead of stalling or killing the worker.
    Returns the number of tasks this worker executed.
    """
    if backend is not None:
        get_backend(backend)  # fail fast on a typo, before connecting
    procs = max(1, int(procs))

    def say(text: str) -> None:
        if not quiet:
            print(f"[worker {os.getpid()}] {text}", flush=True)

    executed = 0
    pool = None
    supervisor: Optional[SupervisedExecutor] = None

    # In-flight task starts, keyed by task_id -- feeds the heartbeat's
    # status gauges so the service can see a hung task's age.
    in_flight: Dict[str, float] = {}
    in_flight_lock = threading.Lock()

    def status_gauges() -> Dict[str, float]:
        with in_flight_lock:
            gauges = {"repro_worker_tasks_inflight": float(len(in_flight))}
            if in_flight:
                gauges["repro_worker_oldest_task_age_seconds"] = (
                    _monotonic() - min(in_flight.values())
                )
            return gauges

    def session(sock: socket.socket) -> bool:
        """One connection's request/execute/deliver loop.

        Returns ``True`` when the service said ``done`` (drain and exit),
        ``False`` on a clean EOF (the peer went away mid-service).
        """
        nonlocal executed
        sock_lock = threading.Lock()
        heartbeat = _Heartbeat(
            sock, sock_lock, heartbeat_seconds, status=status_gauges
        )
        try:
            hello: Dict[str, Any] = {
                "type": "hello",
                "worker": _worker_metadata(backend, procs),
            }
            if auth_token is not None:
                hello["token"] = auth_token
            with sock_lock:
                send_message(sock, hello)
                welcome = recv_message(sock)
            if welcome is not None and welcome.get("type") == "error":
                raise ServiceRefused(
                    f"service refused this worker: {welcome.get('error')}"
                )
            if welcome is None or welcome.get("type") != "welcome":
                raise ProtocolError(f"Expected welcome, got {welcome!r}")
            say(
                f"connected to {host}:{port}: "
                f"{welcome.get('total')} task(s) across "
                f"{welcome.get('sweeps', 1)} sweep(s), "
                f"backend {backend or welcome.get('backend')!r}, {procs} proc(s)"
            )
            heartbeat.start()

            def deliver(
                shard: Any, sweep: Any, index: int, task_id: str,
                outcome: Dict[str, Any],
                metrics: Optional[Dict[str, Any]] = None,
            ) -> None:
                message = {
                    "type": "result",
                    "shard": shard,
                    "index": index,
                    "task_id": task_id,
                    "outcome": outcome,
                }
                if sweep is not None:
                    message["sweep"] = sweep
                if metrics and any(
                    metrics.get(k)
                    for k in ("counters", "gauges", "histograms")
                ):
                    message["metrics"] = metrics
                with sock_lock:
                    send_message(sock, message)
                    ack = recv_message(sock)
                with in_flight_lock:
                    in_flight.pop(task_id, None)
                if ack is None or ack.get("type") != "ack":
                    raise ProtocolError(f"Expected ack, got {ack!r}")

            while True:
                with sock_lock:
                    send_message(sock, {"type": "request", "max_tasks": procs})
                    reply = recv_message(sock)
                if reply is None:
                    return False  # peer hung up between messages
                if reply.get("type") == "done":
                    return True
                if reply.get("type") == "wait":
                    time.sleep(0.05)
                    continue
                if reply.get("type") == "error":
                    raise ServiceRefused(
                        f"service refused this worker: {reply.get('error')}"
                    )
                if reply.get("type") != "tasks":
                    raise ProtocolError(f"Expected tasks/wait/done, got {reply!r}")
                shard = reply.get("shard")
                sweep = reply.get("sweep")
                indexed = _rebuild_tasks(reply.get("tasks", []), backend, trial_batch)
                now = _monotonic()
                with in_flight_lock:
                    for _, task_id, _ in indexed:
                        in_flight[task_id] = now
                if supervisor is not None:
                    for index, task_id, outcome, metrics in (
                        supervisor.run_shard(indexed)
                    ):
                        deliver(shard, sweep, index, task_id, outcome, metrics)
                        executed += 1
                elif pool is not None:
                    for index, task_id, outcome, metrics in pool.imap_unordered(
                        _execute_indexed_entry, indexed
                    ):
                        deliver(shard, sweep, index, task_id, outcome, metrics)
                        executed += 1
                else:
                    for index, task_id, task in indexed:
                        outcome, metrics = execute_task_with_metrics(task)
                        deliver(shard, sweep, index, task_id, outcome, metrics)
                        executed += 1
        finally:
            heartbeat.stop()
            sock.close()
            with in_flight_lock:
                in_flight.clear()

    try:
        if task_timeout > 0:
            supervisor = SupervisedExecutor(procs, task_timeout)
        elif procs > 1:
            pool = _pool_context().Pool(processes=procs)
        retry_budget = connect_retry_seconds
        while True:
            sock = _connect(host, port, retry_budget)
            try:
                done = session(sock)
            except ServiceRefused:
                raise
            except (OSError, ProtocolError) as exc:
                if reconnect_seconds <= 0:
                    raise
                say(f"connection lost ({exc}); reconnecting")
                done = False
            if done or reconnect_seconds <= 0:
                break
            # A clean EOF mid-service (or a caught drop): the service
            # bounced.  Each drop gets a fresh backoff budget; a requeued
            # shard is re-leased after we re-introduce ourselves.
            retry_budget = reconnect_seconds
            say(f"service went away; retrying for up to {reconnect_seconds:g} s")
        say(f"sweeps complete; this worker executed {executed} task(s)")
    finally:
        if supervisor is not None:
            supervisor.close()
        if pool is not None:
            pool.terminate()
            pool.join()
    return executed


def _execute_indexed_entry(
    item: Tuple[int, str, SweepTask]
) -> Tuple[int, str, Dict[str, Any], Dict[str, Any]]:
    index, task_id, task = item
    outcome, metrics = execute_task_with_metrics(task)
    return index, task_id, outcome, metrics


# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Sweep worker: pulls task shards from a verification "
        "service (repro.pipeline --serve / repro.cluster.service) and "
        "streams outcomes back.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="service endpoint to pull tasks from",
    )
    parser.add_argument(
        "--backend", default=None, metavar="BACKEND",
        help="override the sweep's execution backend for this worker only "
        "(backends are bitwise-equivalent; mixing them cross-checks the "
        "execution layer across machines)",
    )
    parser.add_argument(
        "--trial-batch", type=int, default=None, metavar="K",
        help="override the sweep's trials-per-batch for this worker only "
        "(batch-capable backends execute K trials along a leading batch "
        "axis; verdicts are serial-identical, so this never forks task "
        "identity)",
    )
    parser.add_argument(
        "--procs", type=int, default=1,
        help="local worker processes; 1 (default) executes in-process and "
        "shares the backend program cache across a shard's tasks",
    )
    parser.add_argument(
        "--connect-retry-seconds", type=float, default=10.0,
        help="keep retrying the initial connection this long (workers may "
        "be launched before the service is listening)",
    )
    parser.add_argument(
        "--reconnect-seconds", type=float, default=0.0,
        help="survive a service bounce: when an established connection "
        "drops, retry it with backoff for up to this many seconds per "
        "drop instead of exiting; 0 (default) treats a vanished service "
        "as end-of-sweep",
    )
    parser.add_argument(
        "--heartbeat-seconds", type=float, default=5.0,
        help="ping the service this often from a background thread so a "
        "--worker-timeout service can tell busy from hung; 0 disables "
        "(pings piggyback in-flight status gauges for /metrics)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=0.0, metavar="SECONDS",
        help="per-task wall-clock deadline: tasks run on killable "
        "supervised processes, and a hung or crashed task yields a "
        "retryable UNTESTED outcome instead of stalling or killing this "
        "worker; 0 (default) disables supervision",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="arm deterministic fault injection (see repro.faultinject; "
        f"exported as {faultinject.FAULTS_ENV} so task processes inherit it)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed for probabilistic fault decisions (default 0)",
    )
    parser.add_argument(
        "--auth-token", default=os.environ.get(TOKEN_ENV),
        help="shared secret presented in the hello message; required when "
        "the service was started with --auth-token and this worker is "
        f"not on its loopback (default: ${TOKEN_ENV})",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent compiled-program cache directory (sets "
        f"{CACHE_DIR_ENV}); share it between workers on one machine to "
        "compile each distinct program once",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress status lines")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.backend is not None:
        try:
            get_backend(args.backend)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.cache_dir:
        os.environ[CACHE_DIR_ENV] = os.path.abspath(args.cache_dir)
    if args.faults:
        try:
            faultinject.configure(args.faults, seed=args.fault_seed)
        except faultinject.FaultSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        run_worker(
            host,
            port,
            backend=args.backend,
            trial_batch=args.trial_batch,
            procs=args.procs,
            connect_retry_seconds=args.connect_retry_seconds,
            heartbeat_seconds=args.heartbeat_seconds,
            reconnect_seconds=args.reconnect_seconds,
            task_timeout=args.task_timeout,
            auth_token=args.auth_token,
            quiet=args.quiet,
        )
    except (OSError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
