"""Loopback distributed-sweep smoke checks (``make smoke-dist``).

**Default scenario** -- runs the npbench mini sweep twice: once through
the serial in-process runner, once through a loopback coordinator feeding
two worker *subprocesses* -- and diffs the two reports field by field
(:meth:`SweepResult.comparable_dict`, i.e. modulo timing and per-outcome
worker metadata).  The two workers deliberately run *different* execution
backends (interpreter and compiled), so the diff simultaneously checks:

* the wire protocol and shard accounting deliver every task exactly once,
* ordered reassembly matches the serial runner bit for bit,
* backend bitwise-equivalence holds across process boundaries.

The distributed run also journals to a temp file, and the journal is
re-loaded and reassembled as a second independent cross-check of the
store-backed path.

**Service scenario** (``--two-sweeps``) -- exercises the always-on
verification service end to end: two *concurrent* sweeps over disjoint
kernel subsets are submitted over HTTP to one service with a state
directory, a shared pool of two reconnecting worker subprocesses pulls
shards from both, and mid-run the service is hard-stopped and a fresh
instance started on the same state directory and port.  Checks: both
sweeps finish bitwise identical to their serial references, their journals
are isolated (each holds exactly its own sweep's task ids, one outcome
line per task -- i.e. the restart re-ran nothing already journaled), and
the elastic workers survived the bounce.

Exit status 0 on a clean run; any mismatch prints the first differing
outcome and exits 1.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import shutil
import socket as socket_module
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

import repro

from repro.cluster.coordinator import SweepCoordinator
from repro.cluster.journal import ResultStore
from repro.pipeline.result import SweepResult
from repro.pipeline.runner import SweepRunner
from repro.pipeline.tasks import enumerate_sweep_tasks
from repro.telemetry import monotonic as _monotonic

__all__ = ["main"]

#: Backends the two loopback workers run (heterogeneous on purpose).
WORKER_BACKENDS = ("interpreter", "compiled")


def _first_difference(a: Dict[str, Any], b: Dict[str, Any], path: str = "") -> Optional[str]:
    """Human-readable location of the first difference between two docs."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key}: only in {'serial' if key in a else 'distributed'}"
            found = _first_difference(a[key], b[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            found = _first_difference(x, y, f"{path}[{i}]")
            if found:
                return found
        return None
    if a != b and not (a != a and b != b):  # NaN == NaN for this purpose
        return f"{path}: {a!r} vs {b!r}"
    return None


def _worker_env() -> Dict[str, str]:
    """Environment for worker subprocesses: make ``repro`` importable for
    fresh interpreters no matter where the smoke check was launched from."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    return env


def _free_port() -> int:
    """A currently-free loopback port the service can bind (twice: the
    restarted instance must come back on the same address the workers
    reconnect to)."""
    probe = socket_module.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def _enumerate(kernels: Optional[List[str]], args: argparse.Namespace):
    return enumerate_sweep_tasks(
        suite="npbench",
        workloads=kernels,
        buggy=args.buggy,
        max_instances=args.max_instances,
        verifier_kwargs=dict(
            num_trials=args.trials,
            seed=0,
            size_max=10,
            minimize_inputs=False,
            backend="interpreter",
        ),
    )


#: One non-comment Prometheus text-exposition sample line:
#: ``name{label="value",...} number`` (the label block optional).
_EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9a-zA-Z+.eE-]+$"
)


def _scrape_metrics(host: str, port: int) -> str:
    """``GET /metrics`` (plain text, not JSON -- the service's one
    non-JSON endpoint, so the JSON client wrapper does not apply)."""
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    if response.status != 200:
        raise RuntimeError(f"GET /metrics failed: HTTP {response.status}")
    return raw.decode("utf-8")


def _two_sweep_service_scenario(args: argparse.Namespace) -> int:
    """Two concurrent HTTP-submitted sweeps, one shared elastic worker
    pool, and a kill/restore of the service in the middle."""
    from repro.cluster.client import submit_sweep, sweep_status, wait_sweep
    from repro.cluster.service import VerificationService

    subsets = (["gemm", "atax"], ["mvt", "bicg"])
    task_sets = [_enumerate(subset, args) for subset in subsets]
    print(
        f"[smoke-svc] sweeps of {[len(t) for t in task_sets]} task(s) "
        f"({' | '.join(','.join(s) for s in subsets)}); serial references ...",
        flush=True,
    )
    serials = [SweepRunner(workers=1).run(tasks) for tasks in task_sets]

    state_dir = tempfile.mkdtemp(prefix="smoke_svc_state_")
    port = _free_port()
    workers: List[subprocess.Popen] = []
    service = VerificationService(
        "127.0.0.1", port, http_port=0, state_dir=state_dir,
    )
    try:
        service.start()
        http_host, http_port = service.http_address
        sweep_ids = [
            submit_sweep(http_host, http_port, tasks)["sweep_id"]
            for tasks in task_sets
        ]
        print(
            f"[smoke-svc] service on 127.0.0.1:{port} "
            f"(http {http_host}:{http_port}, state {state_dir}); "
            f"submitted {sweep_ids}; spawning 2 reconnecting workers ...",
            flush=True,
        )
        env = _worker_env()
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cluster.worker",
                    "--connect", f"127.0.0.1:{port}",
                    "--backend", backend,
                    "--reconnect-seconds", "120",
                    "--quiet",
                ],
                env=env,
            )
            for backend in WORKER_BACKENDS
        ]

        # Let both sweeps make real progress, then bounce the service.
        deadline = _monotonic() + 300.0
        while True:
            done = [
                sweep_status(http_host, http_port, sid)["done"]
                for sid in sweep_ids
            ]
            if all(d >= 1 for d in done):
                break
            if _monotonic() > deadline:
                print(
                    f"[smoke-svc] FAIL: no progress on both sweeps "
                    f"(done counts {done})",
                    file=sys.stderr,
                )
                return 1
            time.sleep(0.2)
        # Fleet-wide observability: the workers piggyback metric deltas on
        # their result frames, so with >= 1 result landed per sweep the
        # first instance's /metrics must already expose aggregated
        # counters for both sweeps.  (Scraped before the bounce: the
        # restarted instance starts with fresh registries and may receive
        # no fresh results at all if the sweeps finished early.)
        exposition = _scrape_metrics(http_host, http_port)
        print(
            f"[smoke-svc] progress {done}; hard-stopping the service "
            f"mid-run ...",
            flush=True,
        )
        service.stop()

        # Fresh instance, same state dir and socket address: every sweep is
        # restored from its journal, the workers reconnect on their own.
        # done_when_idle lets the workers drain once everything completes.
        service = VerificationService(
            "127.0.0.1", port, http_port=0, state_dir=state_dir,
            done_when_idle=True,
        )
        service.start()
        http_host, http_port = service.http_address
        restored = service.scheduler.sweep_ids()
        if sorted(restored) != sorted(sweep_ids):
            print(
                f"[smoke-svc] FAIL: restart restored {restored}, "
                f"expected {sweep_ids}",
                file=sys.stderr,
            )
            return 1
        print(
            f"[smoke-svc] restarted on the same address; restored "
            f"{restored}; waiting for completion ...",
            flush=True,
        )
        results = [
            wait_sweep(http_host, http_port, sid, timeout=300.0, poll_seconds=0.2)
            for sid in sweep_ids
        ]
    finally:
        for proc in workers:
            try:
                proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
        for proc in workers:
            proc.wait(timeout=30.0)
        service.stop()

    failures = [p.returncode for p in workers if p.returncode != 0]
    if failures:
        print(
            f"[smoke-svc] FAIL: worker exit codes {failures} (a reconnecting "
            f"worker must survive the service bounce)",
            file=sys.stderr,
        )
        return 1

    for sid, serial, result, tasks in zip(sweep_ids, serials, results, task_sets):
        diff = _first_difference(serial.comparable_dict(), result.comparable_dict())
        if diff:
            print(
                f"[smoke-svc] FAIL: sweep {sid} differs from its serial "
                f"reference at {diff}",
                file=sys.stderr,
            )
            return 1
        # Journal isolation + no re-runs across the restart: exactly one
        # outcome line per task, all belonging to this sweep.
        journal = os.path.join(state_dir, f"{sid}.jsonl")
        with open(journal, "r", encoding="utf-8") as f:
            records = [json.loads(line) for line in f if line.strip()]
        outcome_ids = [r["task_id"] for r in records if r.get("kind") == "outcome"]
        expected = {t.task_id for t in tasks}
        if set(outcome_ids) != expected or len(outcome_ids) != len(tasks):
            print(
                f"[smoke-svc] FAIL: journal {journal} holds "
                f"{len(outcome_ids)} outcome(s) over "
                f"{len(set(outcome_ids))} task id(s); expected exactly "
                f"{len(tasks)} of this sweep's tasks (isolation or re-run "
                f"violation)",
                file=sys.stderr,
            )
            return 1

    bad = [
        line
        for line in exposition.splitlines()
        if line and not line.startswith("#")
        and not _EXPOSITION_LINE.match(line)
    ]
    if bad:
        print(
            f"[smoke-svc] FAIL: /metrics line(s) violate the Prometheus "
            f"text exposition format: {bad[:3]!r}",
            file=sys.stderr,
        )
        return 1
    wanted = ["repro_worker_latency_ewma_seconds"] + [
        f'repro_sweep_tasks_total{{sweep="{sid}"}}' for sid in sweep_ids
    ]
    for needle in wanted:
        if needle not in exposition:
            print(
                f"[smoke-svc] FAIL: /metrics is missing {needle} "
                f"(worker metric piggyback broken?)",
                file=sys.stderr,
            )
            return 1

    shutil.rmtree(state_dir, ignore_errors=True)  # keep state only on failure
    total = sum(len(t) for t in task_sets)
    print(
        f"[smoke-svc] OK: {total} task(s) across 2 concurrent sweeps "
        f"identical to serial references, journals isolated, service "
        f"kill/restore re-ran nothing, both workers survived the bounce, "
        f"/metrics exposed fleet-wide counters"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.smoke",
        description="Loopback coordinator + 2 heterogeneous workers vs. the "
        "serial runner on the npbench mini sweep.",
    )
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--max-instances", type=int, default=1)
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated kernel subset (default: full npbench suite)",
    )
    parser.add_argument(
        "--buggy", action="store_true",
        help="sweep the injected-bug transformation variants",
    )
    parser.add_argument(
        "--two-sweeps", action="store_true",
        help="run the always-on service scenario instead: two concurrent "
        "HTTP-submitted sweeps on one service, kill/restore mid-run, "
        "elastic reconnecting workers",
    )
    args = parser.parse_args(argv)

    if args.two_sweeps:
        return _two_sweep_service_scenario(args)

    kernels = None
    if args.kernels:
        kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    tasks = _enumerate(kernels, args)
    print(f"[smoke-dist] {len(tasks)} task(s); serial reference run ...", flush=True)
    serial = SweepRunner(workers=1).run(tasks)

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".jsonl", prefix="smoke_dist_journal_", delete=False
    ) as tmp:
        journal_path = tmp.name
    store = ResultStore.open(
        journal_path, tasks, serial.suite, serial.buggy, serial.backend
    )
    coordinator = SweepCoordinator(tasks, "127.0.0.1", 0, store=store)
    host, port = coordinator.start()
    print(
        f"[smoke-dist] coordinator on {host}:{port}; spawning workers "
        f"{' + '.join(WORKER_BACKENDS)} ...",
        flush=True,
    )
    env = _worker_env()
    workers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.cluster.worker",
                "--connect", f"{host}:{port}",
                "--backend", backend,
                "--quiet",
            ],
            env=env,
        )
        for backend in WORKER_BACKENDS
    ]
    try:
        distributed = coordinator.wait(timeout=600.0)
    finally:
        # The sweep is complete (or failed) -- workers exit on their own
        # after their final request is answered with "done"; give them that
        # round-trip before resorting to SIGTERM.
        for proc in workers:
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
        for proc in workers:
            proc.wait(timeout=30.0)
        store.close()

    failures = [p.returncode for p in workers if p.returncode != 0]
    if failures:
        print(f"[smoke-dist] FAIL: worker exit codes {failures}", file=sys.stderr)
        return 1

    diff = _first_difference(serial.comparable_dict(), distributed.comparable_dict())
    if diff:
        print(f"[smoke-dist] FAIL: serial vs distributed differ at {diff}", file=sys.stderr)
        return 1

    # Independent check of the journaled path: reload the journal and
    # reassemble a result from it alone.
    reloaded_header, completed = ResultStore._load(journal_path)
    journaled = SweepResult(
        suite=reloaded_header["suite"],
        buggy=reloaded_header["buggy"],
        backend=reloaded_header["backend"],
        outcomes=[completed[t.task_id] for t in tasks],
    )
    diff = _first_difference(serial.comparable_dict(), journaled.comparable_dict())
    if diff:
        print(f"[smoke-dist] FAIL: serial vs journal differ at {diff}", file=sys.stderr)
        return 1

    os.unlink(journal_path)  # keep the journal around only on failure
    table = distributed.render_text()
    print(table)
    print(
        f"[smoke-dist] OK: {len(tasks)} task(s) identical across serial, "
        f"distributed ({' + '.join(WORKER_BACKENDS)}) and journal reassembly"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
