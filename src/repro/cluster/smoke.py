"""Loopback distributed-sweep smoke check (``make smoke-dist``).

Runs the npbench mini sweep twice -- once through the serial in-process
runner, once through a loopback coordinator feeding two worker
*subprocesses* -- and diffs the two reports field by field
(:meth:`SweepResult.comparable_dict`, i.e. modulo timing and per-outcome
worker metadata).  The two workers deliberately run *different* execution
backends (interpreter and compiled), so the diff simultaneously checks:

* the wire protocol and shard accounting deliver every task exactly once,
* ordered reassembly matches the serial runner bit for bit,
* backend bitwise-equivalence holds across process boundaries.

The distributed run also journals to a temp file, and the journal is
re-loaded and reassembled as a second independent cross-check of the
store-backed path.  Exit status 0 on a clean diff; any mismatch prints the
first differing outcome and exits 1.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional

import repro

from repro.cluster.coordinator import SweepCoordinator
from repro.cluster.journal import ResultStore
from repro.pipeline.result import SweepResult
from repro.pipeline.runner import SweepRunner
from repro.pipeline.tasks import enumerate_sweep_tasks

__all__ = ["main"]

#: Backends the two loopback workers run (heterogeneous on purpose).
WORKER_BACKENDS = ("interpreter", "compiled")


def _first_difference(a: Dict[str, Any], b: Dict[str, Any], path: str = "") -> Optional[str]:
    """Human-readable location of the first difference between two docs."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key}: only in {'serial' if key in a else 'distributed'}"
            found = _first_difference(a[key], b[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            found = _first_difference(x, y, f"{path}[{i}]")
            if found:
                return found
        return None
    if a != b and not (a != a and b != b):  # NaN == NaN for this purpose
        return f"{path}: {a!r} vs {b!r}"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.smoke",
        description="Loopback coordinator + 2 heterogeneous workers vs. the "
        "serial runner on the npbench mini sweep.",
    )
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--max-instances", type=int, default=1)
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated kernel subset (default: full npbench suite)",
    )
    parser.add_argument(
        "--buggy", action="store_true",
        help="sweep the injected-bug transformation variants",
    )
    args = parser.parse_args(argv)

    kernels = None
    if args.kernels:
        kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    tasks = enumerate_sweep_tasks(
        suite="npbench",
        workloads=kernels,
        buggy=args.buggy,
        max_instances=args.max_instances,
        verifier_kwargs=dict(
            num_trials=args.trials,
            seed=0,
            size_max=10,
            minimize_inputs=False,
            backend="interpreter",
        ),
    )
    print(f"[smoke-dist] {len(tasks)} task(s); serial reference run ...", flush=True)
    serial = SweepRunner(workers=1).run(tasks)

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".jsonl", prefix="smoke_dist_journal_", delete=False
    ) as tmp:
        journal_path = tmp.name
    store = ResultStore.open(
        journal_path, tasks, serial.suite, serial.buggy, serial.backend
    )
    coordinator = SweepCoordinator(tasks, "127.0.0.1", 0, store=store)
    host, port = coordinator.start()
    print(
        f"[smoke-dist] coordinator on {host}:{port}; spawning workers "
        f"{' + '.join(WORKER_BACKENDS)} ...",
        flush=True,
    )
    # Workers run in fresh interpreters: make `repro` importable for them
    # no matter where the smoke check itself was launched from.
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    workers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.cluster.worker",
                "--connect", f"{host}:{port}",
                "--backend", backend,
                "--quiet",
            ],
            env=env,
        )
        for backend in WORKER_BACKENDS
    ]
    try:
        distributed = coordinator.wait(timeout=600.0)
    finally:
        # The sweep is complete (or failed) -- workers exit on their own
        # after their final request is answered with "done"; give them that
        # round-trip before resorting to SIGTERM.
        for proc in workers:
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
        for proc in workers:
            proc.wait(timeout=30.0)
        store.close()

    failures = [p.returncode for p in workers if p.returncode != 0]
    if failures:
        print(f"[smoke-dist] FAIL: worker exit codes {failures}", file=sys.stderr)
        return 1

    diff = _first_difference(serial.comparable_dict(), distributed.comparable_dict())
    if diff:
        print(f"[smoke-dist] FAIL: serial vs distributed differ at {diff}", file=sys.stderr)
        return 1

    # Independent check of the journaled path: reload the journal and
    # reassemble a result from it alone.
    reloaded_header, completed = ResultStore._load(journal_path)
    journaled = SweepResult(
        suite=reloaded_header["suite"],
        buggy=reloaded_header["buggy"],
        backend=reloaded_header["backend"],
        outcomes=[completed[t.task_id] for t in tasks],
    )
    diff = _first_difference(serial.comparable_dict(), journaled.comparable_dict())
    if diff:
        print(f"[smoke-dist] FAIL: serial vs journal differ at {diff}", file=sys.stderr)
        return 1

    os.unlink(journal_path)  # keep the journal around only on failure
    table = distributed.render_text()
    print(table)
    print(
        f"[smoke-dist] OK: {len(tasks)} task(s) identical across serial, "
        f"distributed ({' + '.join(WORKER_BACKENDS)}) and journal reassembly"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
