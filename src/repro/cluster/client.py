"""Thin HTTP client for the always-on verification service.

Wraps the service's JSON API (``POST /sweeps``, ``GET /sweeps/<id>``,
``GET /sweeps/<id>/result``, ``DELETE /sweeps/<id>``, ``GET /status``) in
plain functions built on
:mod:`http.client` -- no third-party dependency, usable from scripts and
from the pipeline CLI's ``--submit HOST:PORT`` mode.  Auth tokens (needed
only when talking to a non-loopback service started with ``--auth-token``)
travel in the ``X-Repro-Token`` header.

All functions raise :class:`ServiceClientError` for transport failures and
non-2xx replies, carrying the HTTP status and the service's JSON error
document when one was returned.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.pipeline.result import SweepResult
from repro.pipeline.tasks import SweepTask
from repro.telemetry import monotonic as _monotonic

__all__ = [
    "ServiceClientError",
    "submit_sweep",
    "sweep_status",
    "service_status",
    "fetch_result",
    "cancel_sweep",
    "wait_sweep",
]


class ServiceClientError(Exception):
    """A failed service call: transport error or non-2xx HTTP reply."""

    def __init__(self, message: str, status: Optional[int] = None,
                 doc: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.doc = doc or {}


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    token: Optional[str] = None,
    timeout: float = 30.0,
) -> Dict[str, Any]:
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["X-Repro-Token"] = token
    payload = json.dumps(body, separators=(",", ":")) if body is not None else None
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
    except OSError as exc:
        raise ServiceClientError(
            f"cannot reach verification service at {host}:{port}: {exc}"
        ) from exc
    try:
        doc = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceClientError(
            f"service at {host}:{port} returned non-JSON "
            f"({response.status} {method} {path})"
        ) from exc
    if response.status >= 300:
        detail = doc.get("error") or repr(raw[:200])
        raise ServiceClientError(
            f"{method} {path} failed: HTTP {response.status}: {detail}",
            status=response.status,
            doc=doc,
        )
    return doc


def submit_sweep(
    host: str,
    port: int,
    tasks: Sequence[SweepTask],
    *,
    suite: Optional[str] = None,
    buggy: Optional[bool] = None,
    backend: Optional[str] = None,
    priority: float = 1.0,
    max_task_retries: Optional[int] = None,
    token: Optional[str] = None,
) -> Dict[str, Any]:
    """``POST /sweeps``; returns the new sweep's status document.

    The returned document's ``sweep_id`` is the handle for
    :func:`sweep_status` / :func:`fetch_result` / :func:`wait_sweep`.
    """
    body: Dict[str, Any] = {
        "tasks": [t.to_dict() for t in tasks],
        "priority": priority,
    }
    if suite is not None:
        body["suite"] = suite
    if buggy is not None:
        body["buggy"] = buggy
    if backend is not None:
        body["backend"] = backend
    if max_task_retries is not None:
        body["max_task_retries"] = max_task_retries
    return _request(host, port, "POST", "/sweeps", body=body, token=token)


def sweep_status(
    host: str, port: int, sweep_id: str, *, token: Optional[str] = None
) -> Dict[str, Any]:
    """``GET /sweeps/<id>``: lifecycle state, progress counts, ETA."""
    return _request(host, port, "GET", f"/sweeps/{sweep_id}", token=token)


def service_status(
    host: str, port: int, *, token: Optional[str] = None
) -> Dict[str, Any]:
    """``GET /status``: uptime, worker counts, every sweep's snapshot."""
    return _request(host, port, "GET", "/status", token=token)


def fetch_result(
    host: str, port: int, sweep_id: str, *, token: Optional[str] = None
) -> SweepResult:
    """``GET /sweeps/<id>/result`` for a *complete* sweep.

    Raises :class:`ServiceClientError` with ``status == 409`` while the
    sweep is still running (poll :func:`sweep_status`, or use
    :func:`wait_sweep`).
    """
    doc = _request(host, port, "GET", f"/sweeps/{sweep_id}/result", token=token)
    return SweepResult.from_dict(doc)


def cancel_sweep(
    host: str, port: int, sweep_id: str, *, token: Optional[str] = None
) -> Dict[str, Any]:
    """``DELETE /sweeps/<id>``: cancel a running sweep and evict its state.

    Unfinished tasks land as synthetic UNTESTED outcomes and the sweep's
    journal + meta files are removed.  Raises :class:`ServiceClientError`
    with ``status == 409`` for a *complete* sweep (its result is immutable;
    fetch it instead) and ``status == 404`` for an unknown id.  Returns
    the sweep's final status snapshot.
    """
    return _request(host, port, "DELETE", f"/sweeps/{sweep_id}", token=token)


def wait_sweep(
    host: str,
    port: int,
    sweep_id: str,
    *,
    token: Optional[str] = None,
    timeout: Optional[float] = None,
    poll_seconds: float = 1.0,
    on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> SweepResult:
    """Poll until ``sweep_id`` completes, then fetch its result.

    ``on_progress`` (if given) receives each polled status document --
    enough for a ``[done/total]`` progress line.  Raises
    :class:`TimeoutError` if the deadline passes first.
    """
    deadline = None if timeout is None else _monotonic() + timeout
    last_done = -1
    while True:
        status = sweep_status(host, port, sweep_id, token=token)
        if on_progress is not None and status["done"] != last_done:
            last_done = status["done"]
            on_progress(status)
        if status["state"] == "complete":
            return fetch_result(host, port, sweep_id, token=token)
        if deadline is not None and _monotonic() >= deadline:
            raise TimeoutError(
                f"Sweep {sweep_id} incomplete after {timeout} s "
                f"({status['done']}/{status['total']} done)"
            )
        time.sleep(poll_seconds)
