"""The journaled sweep result store: append-only JSONL keyed by task IDs.

A sweep -- single-machine or distributed -- can journal every completed
task outcome to disk the moment it lands.  The journal is an append-only
JSON-lines file:

* line 1 is a **header** recording the sweep's identity: schema version,
  suite/buggy/backend labels, the task count and a ``sweep_id`` (a hash of
  the sorted deterministic task IDs, see :attr:`SweepTask.task_id`),
* every further line is one **outcome** record
  ``{"kind": "outcome", "task_id": ..., "index": ..., "outcome": {...}}``.

Append-only makes the journal crash-safe by construction: a hard kill can
at worst truncate the final line, which the loader detects and drops (that
task simply re-runs on resume).  Every outcome record also carries a CRC-32
of its outcome payload, so a record corrupted *in place* (bit rot, a
``garble`` fault, a torn write that still parses) is skipped on load -- the
task re-runs -- instead of poisoning the resumed sweep with altered
verdicts.  Only the line-0 header stays strict: a file whose first line is
not a valid journal header is rejected outright, because at that point
there is no evidence the file is a journal at all.  Task IDs -- not list
indices -- are the keys, so a resumed sweep re-matches journaled outcomes
even though it re-enumerates its task list from scratch; the ``sweep_id`` check refuses to
resume a journal written for a *different* task set (changed trial budget,
different kernels, ...) instead of silently mixing two sweeps.  Duplicate
records for one task (possible only across separate journaling runs -- the
coordinator drops a late duplicate result *before* it reaches the journal)
resolve last-wins on load.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from repro import faultinject
from repro.pipeline.result import SCHEMA_VERSION
from repro.pipeline.tasks import SweepTask
from repro.telemetry import metrics

__all__ = ["ResultStore", "JournalError", "sweep_identity"]


class JournalError(Exception):
    """An unusable journal: wrong sweep, malformed header, bad version."""


def sweep_identity(task_ids: Sequence[str]) -> str:
    """Order-insensitive identity of a task set (for resume validation)."""
    digest = hashlib.sha256("\n".join(sorted(task_ids)).encode("utf-8"))
    return digest.hexdigest()[:16]


def _outcome_crc(outcome: Dict[str, Any]) -> int:
    """CRC-32 of an outcome payload in canonical (sorted-key) JSON form."""
    canon = json.dumps(outcome, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(canon.encode("utf-8"))


class ResultStore:
    """An append-only JSONL journal of per-task sweep outcomes.

    Open with :meth:`open` for a fresh sweep (truncates) or
    ``resume=True`` to load completed outcomes and append to the same file.
    """

    def __init__(
        self,
        path: str,
        header: Dict[str, Any],
        completed: Dict[str, Dict[str, Any]],
        handle: IO[str],
    ) -> None:
        self.path = path
        self.header = header
        #: task_id -> journaled outcome dict (last record wins).
        self.completed = completed
        self._handle = handle

    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        path: str,
        tasks: Sequence[SweepTask],
        suite: str,
        buggy: bool,
        backend: str,
        resume: bool = False,
        service_sweep_id: Optional[str] = None,
    ) -> "ResultStore":
        """Create (or, with ``resume=True``, reopen) a journal for ``tasks``.

        Without ``resume``, an existing file is truncated and a fresh header
        written.  With ``resume``, an existing journal is validated against
        the task set's :func:`sweep_identity` and its completed outcomes
        loaded; a missing (or empty -- a crash before the header flushed)
        file degrades to a fresh start so ``--resume`` is safe to pass
        unconditionally.

        ``service_sweep_id`` labels a journal owned by the always-on
        verification service with its *submission* id (``sweep-NNN``) --
        distinct from the content-derived ``sweep_id`` identity hash, which
        keeps guarding against resuming a journal of a different task set.
        """
        task_ids = [t.task_id for t in tasks]
        header = {
            "kind": "header",
            "schema_version": SCHEMA_VERSION,
            "suite": suite,
            "buggy": buggy,
            "backend": backend,
            "total_tasks": len(task_ids),
            "sweep_id": sweep_identity(task_ids),
        }
        if service_sweep_id is not None:
            header["service_sweep_id"] = service_sweep_id
        # A crash between creating the file and flushing the header leaves
        # an empty journal: zero outcomes were recorded, so "resuming" it is
        # just starting fresh.
        if resume and os.path.exists(path) and os.path.getsize(path) > 0:
            existing_header, completed = cls._load(path)
            if existing_header.get("sweep_id") != header["sweep_id"]:
                raise JournalError(
                    f"Journal {path!r} belongs to a different sweep "
                    f"(journal sweep_id {existing_header.get('sweep_id')!r}, "
                    f"this task set {header['sweep_id']!r}); refusing to mix. "
                    f"Delete the journal or re-run with the original "
                    f"suite/kernels/trials configuration."
                )
            # Discard journaled results for tasks no longer enumerated
            # (cannot happen when sweep_ids match, but keeps the invariant
            # local and cheap to check).
            wanted = set(task_ids)
            completed = {k: v for k, v in completed.items() if k in wanted}
            cls._trim_partial_tail(path)
            handle = open(path, "a", encoding="utf-8")
            return cls(path, existing_header, completed, handle)
        handle = open(path, "w", encoding="utf-8")
        handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        handle.flush()
        return cls(path, header, {}, handle)

    @staticmethod
    def _trim_partial_tail(path: str) -> None:
        """Drop a crash-truncated final line (no trailing newline) so the
        next append starts on a clean line boundary."""
        with open(path, "rb+") as f:
            data = f.read()
            if not data or data.endswith(b"\n"):
                return
            cut = data.rfind(b"\n")
            tail = data[cut + 1 :]
            try:
                json.loads(tail.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # Genuinely truncated record: drop it (the task re-runs).
                f.truncate(cut + 1)
            else:
                # Complete record that merely lost its newline to the
                # crash: finish the line rather than discarding data.
                f.write(b"\n")

    @staticmethod
    def _load(path: str) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
        """Parse a journal, tolerating a truncated (crash-cut) final line."""
        header: Optional[Dict[str, Any]] = None
        completed: Dict[str, Dict[str, Any]] = {}
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == 0:
                    raise JournalError(
                        f"{path!r} line 1 is not valid JSON; "
                        f"not a sweep journal"
                    ) from None
                # A crash-cut trailing line or a corrupted record: the
                # header already proved this file is a journal, so skip
                # just this record (the task re-runs on resume).
                metrics.inc("repro_journal_records_skipped_total")
                continue
            if lineno == 0:
                if record.get("kind") != "header":
                    raise JournalError(
                        f"{path!r} does not start with a journal header"
                    )
                if record.get("schema_version", 0) > SCHEMA_VERSION:
                    raise JournalError(
                        f"{path!r} was written by a newer schema "
                        f"(version {record['schema_version']}, "
                        f"this build reads <= {SCHEMA_VERSION})"
                    )
                header = record
            elif record.get("kind") == "outcome":
                task_id = record.get("task_id")
                outcome = record.get("outcome")
                crc = record.get("crc")  # absent in pre-checksum journals
                if (
                    not isinstance(task_id, str)
                    or not isinstance(outcome, dict)
                    or (crc is not None and crc != _outcome_crc(outcome))
                ):
                    metrics.inc("repro_journal_records_skipped_total")
                    continue
                completed[task_id] = outcome
        if header is None:
            raise JournalError(f"{path!r} is empty; not a sweep journal")
        return header, completed

    # ------------------------------------------------------------------ #
    def record(
        self,
        task_id: str,
        index: int,
        outcome: Dict[str, Any],
    ) -> None:
        """Append one completed outcome (flushed immediately)."""
        line = json.dumps(
            {
                "kind": "outcome",
                "task_id": task_id,
                "index": index,
                "outcome": outcome,
                "crc": _outcome_crc(outcome),
            },
            separators=(",", ":"),
        )
        line = faultinject.garble_text("journal.record", line, key=task_id)
        self._handle.write(line + "\n")
        self._handle.flush()
        self.completed[task_id] = outcome

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
