"""Length-prefixed JSON message framing for the sweep cluster.

Every message on a coordinator/worker connection is one UTF-8 JSON object
preceded by a 4-byte big-endian length.  JSON keeps the protocol
debuggable (``nc`` + a hex dump suffices) and reuses the sweep's existing
JSON-safe outcome dicts verbatim; the length prefix makes message
boundaries explicit so a reader never has to guess where one document ends.

The conversation is strictly request/response, always initiated by the
worker:

========================  ===========================================
worker sends              service replies
========================  ===========================================
``hello`` {worker: {...}, ``welcome`` {total, sweeps, suite, buggy,
  token?}                 backend} | ``error`` {error} on auth refusal
``request`` {max_tasks}   ``tasks`` {shard, sweep, latency_ewma,
                          tasks: [{index, task_id, task}]}
                          | ``wait`` {} (nothing leasable right now)
                          | ``done`` {} (one-shot mode, all sweeps done)
``result`` {index, shard, ``ack`` {}
  sweep?, task_id,
  outcome, metrics?}
``ping`` {metrics?}       ``pong`` {} (heartbeat; proves a busy worker is
                          alive so a ``worker_timeout`` service does not
                          requeue its in-flight shard; ``metrics`` carries
                          optional worker gauges, e.g. tasks in flight and
                          oldest-task age, for hung-task visibility)
========================  ===========================================

Multi-tenancy rides on two optional fields: leases carry the ``sweep``
submission id and workers echo it back in results.  Pre-service workers
that echo only ``task_id`` still route correctly -- the service resolves
results through the connection's lease table first -- so old workers
connect to the always-on service unchanged.

``result`` frames may additionally carry an optional ``metrics`` field:
the task's telemetry delta snapshot (``{counters, gauges, histograms}``,
see :class:`repro.telemetry.MetricsRegistry`), which the service merges
into its fleet-wide and per-sweep registries for ``GET /metrics``.
Metrics never touch the ``outcome`` dict itself, so journals and verdicts
stay bitwise identical whether or not a worker reports them; a receiver
that does not understand the field ignores it.

A clean EOF between messages returns ``None`` from :func:`recv_message`
(the peer hung up); an EOF *inside* a frame raises :class:`ProtocolError`
(the peer died mid-send, and the partial frame must not be interpreted).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from repro import faultinject

__all__ = [
    "ProtocolError",
    "send_message",
    "recv_message",
    "MAX_MESSAGE_BYTES",
    "TOKEN_ENV",
]

#: Frames above this size indicate a bug (or a stream desync), not a
#: legitimate message: even a full npbench sweep outcome is a few KiB.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024

#: Environment variable carrying the shared cluster secret.  A service
#: started with an auth token requires it from *non-loopback* peers: in the
#: ``hello`` message (``token`` field) on socket connections and in the
#: ``X-Repro-Token`` header over HTTP.  Loopback peers stay tokenless.
TOKEN_ENV = "REPRO_CLUSTER_TOKEN"

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, truncated or oversized protocol frame."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize ``message`` and send it as one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"Refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_MESSAGE_BYTES})"
        )
    try:
        faultinject.hit("protocol.send", key=message.get("type"))
    except faultinject.FaultInjected as exc:
        raise ProtocolError(str(exc)) from exc
    # A garbled payload keeps its length (framing stays synchronized) but
    # can no longer decode as JSON: the receiver sees ProtocolError, drops
    # the connection, and the requeue/retry machinery takes over.
    payload = faultinject.garble_bytes("protocol.send", payload,
                                       key=message.get("type"))
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on EOF before the first byte."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"Connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` on clean EOF at a message boundary."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"Incoming frame claims {length} bytes (limit {MAX_MESSAGE_BYTES}); "
            f"stream is desynchronized or the peer is not speaking this protocol"
        )
    payload = _recv_exact(sock, length)
    if payload is None:  # EOF exactly between header and payload
        raise ProtocolError("Connection closed between frame header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"Undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"Frame is not a typed message object: {message!r}")
    return message
