"""Chaos smoke checks: the kill-matrix behind ``make smoke-chaos``.

Where :mod:`repro.cluster.smoke` proves the distributed pipeline matches
the serial runner on a *clean* day, this module proves it on a bad one.
Both scenarios drive real worker subprocesses against a real service with
:mod:`repro.faultinject` armed, and every fault is seeded -- a failing run
replays exactly.

**Scenario A -- parity under the kill matrix.**  One sweep, three
workers: one crashes hard (``os._exit``, like SIGKILL) mid-lease on its
third task, one delays every task and garbles a fraction of its protocol
frames, one is clean.  The service itself garbles a journal record and a
fraction of its outgoing frames (armed in-process only, via
``configure(export=False)``).  Mid-run the service is hard-stopped, the
journal tail is torn (a partial line appended, simulating a write cut off
by the kill), and a fresh instance restores from the state directory.
The check: the final result is **bitwise identical** to a serial run with
faults disabled -- lost leases re-ran, the garbled record failed its CRC
and was skipped (re-run, not resurrected corrupt), the torn tail was
repaired, and no task ran zero or two times into the final report.

**Scenario B -- containment of poison and hung tasks.**  One sweep with
two poisoned workloads -- every ``gemm`` execution crashes its process,
every ``atax`` execution hangs -- run by two ``--task-timeout`` workers.
The supervised executor kills and respawns stuck members, the scheduler
retries the contained failures, and once a task has failed on the
quarantine threshold of distinct workers it lands as a synthetic UNTESTED
outcome.  The check: the sweep *completes* (nothing poisoned stalls it),
poisoned outcomes carry the quarantine/deadline error taxonomy, clean
tasks' verdicts match their serial reference, ``/status`` surfaces the
quarantine records, and ``/metrics`` shows the timeout and hung-task
gauges the workers piggybacked on their heartbeats.

Exit status 0 on a clean run; the first violated invariant prints and
exits 1.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro import faultinject
from repro.cluster.smoke import (
    _enumerate,
    _first_difference,
    _free_port,
    _scrape_metrics,
    _worker_env,
)
from repro.core.reporting import Verdict
from repro.pipeline.runner import SweepRunner
from repro.telemetry import monotonic as _monotonic
from repro.telemetry.metrics import GLOBAL as _GLOBAL_METRICS

__all__ = ["main"]

#: Fault plan armed inside the service process only (never exported to
#: worker subprocesses): one deterministic journal garble plus a low-rate
#: frame garble on the service's outgoing writes.
SERVICE_FAULTS = "journal.record=garble@2,protocol.send=garble:0.1"

#: Per-worker fault plans for scenario A (passed via ``--faults``).
CRASHER_FAULTS = "task.execute=crash@3"
JITTER_FAULTS = "task.execute=delay:0.05,protocol.send=garble:0.15"

#: Scenario B: every gemm execution dies, every atax execution hangs.
POISON_FAULTS = "task.execute[gemm]=crash,task.execute[atax]=hang:30"


def _spawn_worker(
    port: int, *extra: str, faults: Optional[str] = None
) -> subprocess.Popen:
    cmd = [
        sys.executable, "-m", "repro.cluster.worker",
        "--connect", f"127.0.0.1:{port}",
        "--quiet",
        *extra,
    ]
    if faults:
        cmd += ["--faults", faults, "--fault-seed", "7"]
    return subprocess.Popen(cmd, env=_worker_env())


def _drain(workers: List[subprocess.Popen]) -> None:
    for proc in workers:
        try:
            proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.terminate()
    for proc in workers:
        proc.wait(timeout=30.0)


def _counter(name: str) -> float:
    total = 0.0
    for key, value in _GLOBAL_METRICS.snapshot().get("counters", {}).items():
        if key == name or key.startswith(name + "{"):
            total += value
    return total


def _kill_matrix_scenario(args: argparse.Namespace) -> int:
    """Scenario A: serial parity through crashes, garbling, and a bounce."""
    from repro.cluster.client import submit_sweep, sweep_status, wait_sweep
    from repro.cluster.service import VerificationService

    tasks = _enumerate(["gemm", "atax", "mvt", "bicg"], args)
    print(
        f"[smoke-chaos/A] {len(tasks)} task(s); serial reference "
        f"(faults disabled) ...",
        flush=True,
    )
    serial = SweepRunner(workers=1).run(tasks)

    skipped_before = _counter("repro_journal_records_skipped_total")
    # Arm the service-side faults in this process only: worker subprocesses
    # get their own plans on their own command lines.
    faultinject.configure(SERVICE_FAULTS, seed=7, export=False)
    state_dir = tempfile.mkdtemp(prefix="chaos_state_")
    port = _free_port()
    workers: List[subprocess.Popen] = []
    service = VerificationService(
        "127.0.0.1", port, http_port=0, state_dir=state_dir,
    )
    try:
        service.start()
        http_host, http_port = service.http_address
        sweep_id = submit_sweep(http_host, http_port, tasks)["sweep_id"]
        print(
            f"[smoke-chaos/A] service on 127.0.0.1:{port} (state "
            f"{state_dir}); sweep {sweep_id}; workers: crasher@3, "
            f"jitter+garble, clean ...",
            flush=True,
        )
        workers = [
            _spawn_worker(
                port, "--reconnect-seconds", "120", faults=CRASHER_FAULTS
            ),
            _spawn_worker(
                port, "--reconnect-seconds", "120", faults=JITTER_FAULTS
            ),
            _spawn_worker(port, "--reconnect-seconds", "120"),
        ]

        # Let the sweep journal a few outcomes (the deterministic garble
        # clause corrupts record #2), then kill the service mid-drain.
        deadline = _monotonic() + 300.0
        while True:
            done = sweep_status(http_host, http_port, sweep_id)["done"]
            if done >= 3:
                break
            if _monotonic() > deadline:
                print(
                    f"[smoke-chaos/A] FAIL: only {done} task(s) done before "
                    f"the bounce deadline",
                    file=sys.stderr,
                )
                return 1
            time.sleep(0.2)
        print(
            f"[smoke-chaos/A] {done} done; hard-stopping the service and "
            f"tearing the journal tail ...",
            flush=True,
        )
        service.stop()
        journal = os.path.join(state_dir, f"{sweep_id}.jsonl")
        with open(journal, "a", encoding="utf-8") as f:
            # A write cut off mid-record: no trailing newline, broken JSON.
            f.write('{"kind":"outcome","task_id":"torn-')

        service = VerificationService(
            "127.0.0.1", port, http_port=0, state_dir=state_dir,
            done_when_idle=True,
        )
        service.start()
        http_host, http_port = service.http_address
        result = wait_sweep(
            http_host, http_port, sweep_id, timeout=600.0, poll_seconds=0.2
        )
    finally:
        _drain(workers)
        service.stop()
        faultinject.configure(None, export=False)

    # The crasher must die with the injected hard-exit code; the other two
    # must survive every garbled frame and the bounce, and drain cleanly.
    codes = [p.returncode for p in workers]
    if codes[0] != 137 or codes[1] != 0 or codes[2] != 0:
        print(
            f"[smoke-chaos/A] FAIL: worker exit codes {codes}, expected "
            f"[137, 0, 0] (crash containment / reconnect broken)",
            file=sys.stderr,
        )
        return 1

    diff = _first_difference(serial.comparable_dict(), result.comparable_dict())
    if diff:
        print(
            f"[smoke-chaos/A] FAIL: chaos run differs from the serial "
            f"reference at {diff}",
            file=sys.stderr,
        )
        return 1

    # The deterministically garbled record must have been caught by its
    # checksum on restore (skipped and re-run, not trusted).
    skipped = _counter("repro_journal_records_skipped_total") - skipped_before
    if skipped < 1:
        print(
            "[smoke-chaos/A] FAIL: the garbled journal record was not "
            "skipped on restore (CRC validation broken?)",
            file=sys.stderr,
        )
        return 1

    shutil.rmtree(state_dir, ignore_errors=True)
    print(
        f"[smoke-chaos/A] OK: {len(tasks)} task(s) bitwise identical to "
        f"serial through a worker SIGKILL mid-lease, garbled frames both "
        f"directions, a service bounce, {int(skipped)} checksum-skipped "
        f"journal record(s), and a torn journal tail"
    )
    return 0


def _containment_scenario(args: argparse.Namespace) -> int:
    """Scenario B: poison and hung tasks are contained, not contagious."""
    from repro.cluster.client import service_status, submit_sweep, wait_sweep
    from repro.cluster.service import VerificationService

    poisoned = {"gemm", "atax"}
    tasks = _enumerate(["gemm", "atax", "mvt"], args)
    clean_tasks = [t for t in tasks if t.workload not in poisoned]
    print(
        f"[smoke-chaos/B] {len(tasks)} task(s) "
        f"({len(tasks) - len(clean_tasks)} poisoned); serial reference for "
        f"the clean subset ...",
        flush=True,
    )
    serial_clean = SweepRunner(workers=1).run(clean_tasks)
    clean_verdicts = {
        o["task_id"]: o["verdict"] for o in serial_clean.outcomes
    }

    state_dir = tempfile.mkdtemp(prefix="chaos_poison_state_")
    port = _free_port()
    workers: List[subprocess.Popen] = []
    service = VerificationService(
        "127.0.0.1", port, http_port=0, state_dir=state_dir,
        done_when_idle=True, max_task_retries=6, quarantine_workers=2,
    )
    try:
        service.start()
        http_host, http_port = service.http_address
        sweep_id = submit_sweep(http_host, http_port, tasks)["sweep_id"]
        print(
            f"[smoke-chaos/B] service on 127.0.0.1:{port}; sweep "
            f"{sweep_id}; 2 supervised workers (--task-timeout 1.5) with "
            f"gemm=crash, atax=hang ...",
            flush=True,
        )
        workers = [
            _spawn_worker(
                port,
                "--task-timeout", "1.5",
                "--heartbeat-seconds", "0.5",
                "--reconnect-seconds", "60",
                faults=POISON_FAULTS,
            )
            for _ in range(2)
        ]
        result = wait_sweep(
            http_host, http_port, sweep_id, timeout=600.0, poll_seconds=0.2
        )
        status = service_status(http_host, http_port)
        exposition = _scrape_metrics(http_host, http_port)
    finally:
        _drain(workers)
        service.stop()

    codes = [p.returncode for p in workers if p.returncode != 0]
    if codes:
        print(
            f"[smoke-chaos/B] FAIL: worker exit codes {codes} (supervised "
            f"workers must survive member crashes and hangs)",
            file=sys.stderr,
        )
        return 1

    # Every poisoned task must be contained: UNTESTED with the quarantine
    # or contained-failure taxonomy.  Every clean task must match serial.
    quarantined_count = 0
    for outcome in result.outcomes:
        if outcome["workload"] in poisoned:
            error = outcome.get("error") or ""
            contained = (
                "quarantined" in error
                or "deadline" in error
                or "died" in error
                or "connection lost" in error
            )
            if outcome["verdict"] != Verdict.UNTESTED.value or not contained:
                print(
                    f"[smoke-chaos/B] FAIL: poisoned task "
                    f"{outcome['task_id']} escaped containment: "
                    f"verdict={outcome['verdict']!r} error={error!r}",
                    file=sys.stderr,
                )
                return 1
            if "quarantined" in error:
                quarantined_count += 1
        else:
            if outcome["verdict"] != clean_verdicts[outcome["task_id"]]:
                print(
                    f"[smoke-chaos/B] FAIL: clean task "
                    f"{outcome['task_id']} verdict "
                    f"{outcome['verdict']!r} differs from its serial "
                    f"reference {clean_verdicts[outcome['task_id']]!r} "
                    f"(poison leaked?)",
                    file=sys.stderr,
                )
                return 1

    # With 8 poisoned tasks failing on every execution and 2 eager
    # workers, the distinct-worker threshold must have tripped for most
    # of them; requiring one keeps the check timing-robust.
    sweep_doc = status["sweeps"][sweep_id]
    if quarantined_count < 1 or not sweep_doc.get("quarantined"):
        print(
            f"[smoke-chaos/B] FAIL: no quarantine recorded "
            f"(outcomes with quarantine error: {quarantined_count}, "
            f"/status records: {sweep_doc.get('quarantined')!r})",
            file=sys.stderr,
        )
        return 1

    for needle in ("repro_task_timeouts_total", "repro_worker_tasks_inflight"):
        if needle not in exposition:
            print(
                f"[smoke-chaos/B] FAIL: /metrics is missing {needle} "
                f"(deadline accounting / heartbeat gauge piggyback broken)",
                file=sys.stderr,
            )
            return 1

    # The quarantine outcomes are journaled (checksummed) like any other.
    journal = os.path.join(state_dir, f"{sweep_id}.jsonl")
    with open(journal, "r", encoding="utf-8") as f:
        records = [json.loads(line) for line in f if line.strip()]
    journaled: Dict[str, Dict[str, Any]] = {
        r["task_id"]: r for r in records if r.get("kind") == "outcome"
    }
    for task in tasks:
        record = journaled.get(task.task_id)
        if record is None or "crc" not in record:
            print(
                f"[smoke-chaos/B] FAIL: task {task.task_id} missing a "
                f"checksummed journal record",
                file=sys.stderr,
            )
            return 1

    shutil.rmtree(state_dir, ignore_errors=True)
    print(
        f"[smoke-chaos/B] OK: sweep completed with every poisoned task "
        f"contained ({quarantined_count} quarantined, "
        f"{len(sweep_doc['quarantined'])} /status record(s)), clean "
        f"verdicts identical to serial, deadline + hung-task metrics "
        f"exposed"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.chaos",
        description="Chaos kill-matrix: serial parity through worker "
        "crashes, frame/journal garbling and a service bounce, plus "
        "containment of poison and hung tasks.",
    )
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--max-instances", type=int, default=1)
    parser.add_argument(
        "--buggy", action="store_true",
        help="sweep the injected-bug transformation variants",
    )
    parser.add_argument(
        "--scenario", choices=("all", "parity", "containment"),
        default="all",
    )
    args = parser.parse_args(argv)

    if args.scenario in ("all", "parity"):
        rc = _kill_matrix_scenario(args)
        if rc:
            return rc
    if args.scenario in ("all", "containment"):
        rc = _containment_scenario(args)
        if rc:
            return rc
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
