"""The one-shot sweep coordinator: a single-sweep facade over the service.

Historically this module *was* the cluster: one thread-per-connection
socket server owning one task list.  The always-on verification service
generalized both halves -- task accounting moved into the transport-free
:class:`~repro.cluster.scheduler.SweepScheduler` (multi-sweep, fair-share,
latency-adaptive) and the socket loop into the asyncio
:class:`~repro.cluster.service.VerificationService` (plus an HTTP submit
API).  What remains here is the original convenience shape, unchanged for
callers: *one* coordinator owns *one* sweep, serves it to workers, and
:meth:`wait` returns when every task has an outcome.

All the one-shot invariants live on in the scheduler, now shared with the
service: journaling on arrival, requeue-on-disconnect with bounded retries
(exhaustion records an ``UNTESTED`` infrastructure error instead of
wedging the sweep), dedup by task ID so late results from workers presumed
lost are dropped, tail-leveled + latency-adaptive shard sizing, hung-worker
reaping (``worker_timeout``), and ``comparable_dict()`` parity with a
serial in-process run.

The one behavioral difference from a persistent service: the coordinator
runs its scheduler with ``done_when_idle=True``, so once the sweep
completes workers are told ``done`` and drain, exactly as before.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.journal import ResultStore
from repro.cluster.scheduler import SweepScheduler
from repro.cluster.service import VerificationService
from repro.pipeline.result import SweepResult
from repro.pipeline.runner import ProgressCallback
from repro.pipeline.tasks import SweepTask

__all__ = ["SweepCoordinator"]


class SweepCoordinator:
    """Serves one sweep's tasks to remote workers and aggregates the result.

    Typical use (the ``--serve`` path of the pipeline CLI)::

        coordinator = SweepCoordinator(tasks, host, port, store=store)
        coordinator.start()              # binds; .address is now concrete
        result = coordinator.wait()      # blocks until every task completed
    """

    def __init__(
        self,
        tasks: Sequence[SweepTask],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store: Optional[ResultStore] = None,
        completed: Optional[Dict[str, Dict[str, Any]]] = None,
        max_task_retries: int = 2,
        batch_size: int = 0,
        worker_timeout: float = 0.0,
        progress_callback: Optional[ProgressCallback] = None,
        suite: Optional[str] = None,
        buggy: Optional[bool] = None,
        backend: Optional[str] = None,
        auth_token: Optional[str] = None,
        local_procs: int = 0,
        http_host: Optional[str] = None,
        http_port: Optional[int] = None,
    ) -> None:
        self.tasks = list(tasks)
        self.host = host
        self.port = port
        self.store = store
        #: Re-leases allowed per task after a lost worker before the task is
        #: recorded as an infrastructure error.
        self.max_task_retries = max_task_retries
        #: Upper bound on tasks per shard; 0 lets the worker's requested
        #: ``max_tasks`` (its process count) decide (both further capped by
        #: the latency-adaptive and tail-leveling bounds).
        self.batch_size = batch_size
        #: Seconds of connection silence after which a worker is declared
        #: hung and its leases requeued; 0 disables.  Enable only when every
        #: worker sends heartbeat pings, or long tasks will be misdeclared.
        self.worker_timeout = worker_timeout
        self.progress_callback = progress_callback

        self.scheduler = SweepScheduler(
            max_task_retries=max_task_retries,
            batch_size=batch_size,
            done_when_idle=True,
        )
        # Registered immediately (not at start()): .remaining and journal
        # preloading work before the socket exists, as they always did.
        self.sweep_id = self.scheduler.submit(
            self.tasks,
            suite=suite,
            buggy=buggy,
            backend=backend,
            store=store,
            completed=completed,
            progress_callback=progress_callback,
        )
        entry = self.scheduler._entry(self.sweep_id)
        self.suite = entry.suite
        self.buggy = entry.buggy
        self.backend = entry.backend
        self._service = VerificationService(
            host,
            port,
            scheduler=self.scheduler,
            http_host=http_host,
            http_port=http_port,
            auth_token=auth_token,
            worker_timeout=worker_timeout,
            local_procs=local_procs,
        )
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); concrete only after :meth:`start`."""
        return self._service.address

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """The HTTP status endpoint, when one was requested."""
        return self._service.http_address

    @property
    def remaining(self) -> int:
        entry = self.scheduler._entry(self.sweep_id)
        with self.scheduler._lock:
            return entry.remaining

    @property
    def shard_sizes(self) -> List[int]:
        """Shard sizes issued, in lease order (observability + tests)."""
        entry = self.scheduler._entry(self.sweep_id)
        with self.scheduler._lock:
            return list(entry.shard_sizes)

    @property
    def shard_meta(self) -> List[Dict[str, Any]]:
        """Per-shard metadata: size, worker, latency estimate at lease time."""
        entry = self.scheduler._entry(self.sweep_id)
        with self.scheduler._lock:
            return [dict(m) for m in entry.shard_meta]

    def start(self) -> Tuple[str, int]:
        """Bind, listen and start accepting workers; returns the address."""
        if not self._started:
            self._started = True
            self._service.start()
        return self._service.address

    def wait(self, timeout: Optional[float] = None) -> SweepResult:
        """Block until every task has an outcome; returns the sweep result.

        With ``timeout``, raises :class:`TimeoutError` if the sweep has not
        completed in time (the server keeps running; call again to keep
        waiting).
        """
        result = self.scheduler.wait(self.sweep_id, timeout)
        self._shutdown()
        result.workers = max(1, self.scheduler.worker_count)
        result.sweep_id = None  # a one-shot sweep has no service identity
        return result

    def run(self, timeout: Optional[float] = None) -> SweepResult:
        """:meth:`start` + :meth:`wait` in one call."""
        self.start()
        try:
            return self.wait(timeout)
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        if self._started:
            self._started = False
            self._service.stop()
