"""The sweep coordinator: shards tasks to socket workers, survives them.

One coordinator owns the full task list of a sweep.  Workers connect over
TCP (:mod:`repro.cluster.protocol`), introduce themselves, and then pull
*shards* -- batches of tasks leased to exactly one worker at a time --
executing each task locally and streaming the outcome back.  The
coordinator:

* **journals** every outcome the moment it arrives (when given a
  :class:`~repro.cluster.journal.ResultStore`), so a killed sweep resumes
  from its last completed task;
* **requeues** the in-flight shard of a worker whose connection drops, with
  bounded retries per task -- a task whose leases keep dying is recorded as
  an infrastructure error (``UNTESTED`` + ``error``) instead of wedging the
  sweep forever;
* **deduplicates** by task ID: if a worker declared lost still delivers its
  result (network flake rather than crash), the late duplicate of an
  already-completed task is acknowledged and dropped, so progress counts
  never drift and the journal stays last-wins-consistent;
* **adapts shard sizes to the sweep tail**: a lease never exceeds
  ``ceil(pending / (2 * active_workers))``, so early shards amortize
  round-trips while late shards shrink toward single tasks -- one slow
  worker can no longer strand a large final batch while its siblings idle;
* **times out hung workers** (``worker_timeout``): workers ping between
  tasks, and a connection silent for longer than the timeout is closed,
  requeueing its in-flight shard exactly like a disconnect -- covering
  workers that are wedged rather than dead;
* **reassembles** outcomes into task-enumeration order, producing a
  :class:`~repro.pipeline.result.SweepResult` identical (modulo timing and
  per-outcome ``worker`` metadata) to a serial in-process run.

Workers may run *different execution backends* (``--backend`` per worker):
since backends are bitwise-equivalent by contract, a heterogeneous cluster
doubles as a free cross-machine backend cross-check -- the aggregated
verdict table must not depend on which worker ran which shard.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.journal import ResultStore
from repro.cluster.protocol import ProtocolError, recv_message, send_message
from repro.core.reporting import Verdict
from repro.pipeline.result import SweepResult
from repro.pipeline.runner import ProgressCallback
from repro.pipeline.tasks import SweepTask

__all__ = ["SweepCoordinator"]


class SweepCoordinator:
    """Serves a sweep's tasks to remote workers and aggregates the result.

    Typical use (the ``--serve`` path of the pipeline CLI)::

        coordinator = SweepCoordinator(tasks, host, port, store=store)
        coordinator.start()              # binds; .address is now concrete
        result = coordinator.wait()      # blocks until every task completed
    """

    def __init__(
        self,
        tasks: Sequence[SweepTask],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store: Optional[ResultStore] = None,
        completed: Optional[Dict[str, Dict[str, Any]]] = None,
        max_task_retries: int = 2,
        batch_size: int = 0,
        worker_timeout: float = 0.0,
        progress_callback: Optional[ProgressCallback] = None,
        suite: Optional[str] = None,
        buggy: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.tasks = list(tasks)
        self.host = host
        self.port = port
        self.store = store
        #: Re-leases allowed per task after a lost worker before the task is
        #: recorded as an infrastructure error.
        self.max_task_retries = max_task_retries
        #: Upper bound on tasks per shard; 0 lets the worker's requested
        #: ``max_tasks`` (its process count) decide (both further capped by
        #: the adaptive tail-leveling bound).
        self.batch_size = batch_size
        #: Seconds of connection silence after which a worker is declared
        #: hung and its leases requeued; 0 disables.  Enable only when every
        #: worker sends heartbeat pings, or long tasks will be misdeclared.
        self.worker_timeout = worker_timeout
        self.progress_callback = progress_callback
        self.suite = suite if suite is not None else (
            self.tasks[0].suite if self.tasks else "npbench"
        )
        self.buggy = buggy if buggy is not None else any(
            bool(t.transformation.kwargs.get("inject_bug")) for t in self.tasks
        )
        self.backend = backend if backend is not None else (
            self.tasks[0].verifier_kwargs.get("backend", "interpreter")
            if self.tasks
            else "interpreter"
        )

        self._task_ids = [t.task_id for t in self.tasks]
        self._index_of = {tid: i for i, tid in enumerate(self._task_ids)}
        self._lock = threading.Lock()
        self._outcomes: List[Optional[Dict[str, Any]]] = [None] * len(self.tasks)
        self._pending: deque = deque()
        self._lost_leases: Dict[int, int] = {}  # task index -> lost-lease count
        self._done_count = 0
        self._shard_counter = 0
        self._worker_counter = 0
        self._start_time: Optional[float] = None
        self._done_event = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closing = False
        #: Live connections and the monotonic time of their last message.
        self._conns: Dict[socket.socket, float] = {}
        #: Connections that completed the hello handshake (real workers);
        #: the adaptive shard sizing divides by these, not raw connections,
        #: so probes and not-yet-introduced peers cannot shrink shards.
        self._active_workers = 0
        #: Shard sizes issued, in lease order (observability + tests).
        self.shard_sizes: List[int] = []

        # Preload journaled outcomes (the resume path).
        completed = completed if completed is not None else (
            dict(store.completed) if store is not None else {}
        )
        for index, tid in enumerate(self._task_ids):
            outcome = completed.get(tid)
            if outcome is not None:
                self._outcomes[index] = outcome
                self._done_count += 1
            else:
                self._pending.append(index)
        if self._done_count == len(self.tasks):
            self._done_event.set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); concrete only after :meth:`start`."""
        if self._listener is None:
            return (self.host, self.port)
        return self._listener.getsockname()[:2]

    @property
    def remaining(self) -> int:
        with self._lock:
            return len(self.tasks) - self._done_count

    def start(self) -> Tuple[str, int]:
        """Bind, listen and start accepting workers; returns the address."""
        self._start_time = time.perf_counter()
        self._listener = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        self._listener.settimeout(0.2)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sweep-coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def wait(self, timeout: Optional[float] = None) -> SweepResult:
        """Block until every task has an outcome; returns the sweep result.

        With ``timeout``, raises :class:`TimeoutError` if the sweep has not
        completed in time (the server keeps running; call again to keep
        waiting).
        """
        if not self._done_event.wait(timeout):
            raise TimeoutError(
                f"Sweep incomplete after {timeout} s "
                f"({self.remaining}/{len(self.tasks)} tasks outstanding)"
            )
        self._shutdown()
        duration = (
            time.perf_counter() - self._start_time if self._start_time else 0.0
        )
        return SweepResult(
            suite=self.suite,
            buggy=self.buggy,
            workers=max(1, self._worker_counter),
            backend=self.backend,
            outcomes=list(self._outcomes),
            duration_seconds=duration,
        )

    def run(self, timeout: Optional[float] = None) -> SweepResult:
        """:meth:`start` + :meth:`wait` in one call."""
        self.start()
        try:
            return self.wait(timeout)
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None and self._accept_thread.is_alive():
            self._accept_thread.join(timeout=2.0)

    # ------------------------------------------------------------------ #
    # Accept / connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closing:
            self._reap_hung_workers()
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us during shutdown
            with self._lock:
                self._worker_counter += 1
                worker_number = self._worker_counter
                self._conns[conn] = time.monotonic()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, worker_number),
                name=f"sweep-worker-{worker_number}",
                daemon=True,
            )
            thread.start()

    def _reap_hung_workers(self) -> None:
        """Force-close connections silent for longer than ``worker_timeout``.

        A *hung* worker (wedged process, dead-but-undetected TCP peer) holds
        its leases forever without ever failing the socket; closing the
        connection from this side makes its serve thread unwind through the
        ordinary lost-worker path, requeueing the in-flight shard.  Healthy
        workers never trip this: they ping between tasks.
        """
        if self.worker_timeout <= 0:
            return
        deadline = time.monotonic() - self.worker_timeout
        with self._lock:
            stale = [c for c, seen in self._conns.items() if seen < deadline]
        for conn in stale:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _serve_connection(self, conn: socket.socket, worker_number: int) -> None:
        """One worker's request/response loop; requeues its leases on loss."""
        leases: List[int] = []  # task indices currently leased to this worker
        worker_info: Dict[str, Any] = {"worker": worker_number}
        introduced = False
        try:
            with conn:
                while True:
                    try:
                        message = recv_message(conn)
                    except ProtocolError:
                        break  # died mid-frame: treat as a lost worker
                    if message is None:
                        break  # clean disconnect
                    with self._lock:
                        self._conns[conn] = time.monotonic()
                    mtype = message.get("type")
                    if mtype == "hello":
                        if not introduced:
                            introduced = True
                            with self._lock:
                                self._active_workers += 1
                        worker_info = dict(message.get("worker") or {})
                        worker_info["worker"] = worker_number
                        send_message(conn, {
                            "type": "welcome",
                            "total": len(self.tasks),
                            "suite": self.suite,
                            "buggy": self.buggy,
                            "backend": self.backend,
                        })
                    elif mtype == "request":
                        send_message(
                            conn,
                            self._lease(leases, int(message.get("max_tasks", 1))),
                        )
                    elif mtype == "result":
                        self._record_result(leases, worker_info, message)
                        send_message(conn, {"type": "ack"})
                    elif mtype == "ping":
                        # Heartbeat: the last-seen update above is the point;
                        # the reply keeps the strict request/response rhythm.
                        send_message(conn, {"type": "pong"})
                    else:
                        send_message(conn, {
                            "type": "error",
                            "error": f"unknown message type {mtype!r}",
                        })
        except (OSError, ProtocolError):
            pass  # connection-level failure: fall through to requeue
        finally:
            with self._lock:
                self._conns.pop(conn, None)
                if introduced:
                    self._active_workers -= 1
            self._requeue_lost(leases, worker_info)

    # ------------------------------------------------------------------ #
    # Task accounting (all under the lock)
    # ------------------------------------------------------------------ #
    def _lease(self, leases: List[int], max_tasks: int) -> Dict[str, Any]:
        """Pop up to ``max_tasks`` pending tasks into a shard lease.

        With several workers connected, the requested size (the worker's
        process count) is additionally capped by
        ``ceil(pending / (2 * active_workers))`` -- guided self-scheduling.
        Early in the sweep the cap is far above any request and shards
        amortize round-trips; near the tail it falls to one, so the last
        tasks spread across all workers instead of stranding in one
        straggler's final batch.  A lone worker is never capped: there is
        nobody to level against, only round-trips to waste.
        """
        max_tasks = max(1, max_tasks)
        if self.batch_size > 0:
            max_tasks = min(max_tasks, self.batch_size)
        with self._lock:
            if self._done_count == len(self.tasks):
                return {"type": "done"}
            active = self._active_workers
            if active > 1:
                pending = len(self._pending)
                adaptive = max(1, -(-pending // (2 * active)))  # ceil division
                max_tasks = min(max_tasks, adaptive)
            shard: List[Dict[str, Any]] = []
            while self._pending and len(shard) < max_tasks:
                index = self._pending.popleft()
                if self._outcomes[index] is not None:
                    # Requeued after a lost lease, but the "lost" worker's
                    # result arrived anyway: already complete, don't re-run.
                    continue
                leases.append(index)
                shard.append({
                    "index": index,
                    "task_id": self._task_ids[index],
                    "task": self.tasks[index].to_dict(),
                })
            if not shard:
                # Everything outstanding is leased elsewhere; the worker
                # backs off briefly and asks again (its lease might yet be
                # requeued if the other worker dies).
                return {"type": "wait"}
            self._shard_counter += 1
            self.shard_sizes.append(len(shard))
            return {"type": "tasks", "shard": self._shard_counter, "tasks": shard}

    def _record_result(
        self,
        leases: List[int],
        worker_info: Dict[str, Any],
        message: Dict[str, Any],
    ) -> None:
        task_id = message.get("task_id")
        index = self._index_of.get(task_id)
        if index is None:
            return  # result for a task of some other sweep; drop it
        outcome = dict(message.get("outcome") or {})
        outcome["task_id"] = task_id
        outcome["worker"] = {**worker_info, "shard": message.get("shard")}
        with self._lock:
            if index in leases:
                leases.remove(index)
            if self._outcomes[index] is not None:
                return  # late duplicate after a requeue: first result won
            self._outcomes[index] = outcome
            self._done_count += 1
            done, total = self._done_count, len(self.tasks)
            if self.store is not None:
                self.store.record(task_id, index, outcome)
            # Under the lock so concurrent workers cannot interleave
            # progress lines with out-of-order completed counts.
            if self.progress_callback is not None:
                self.progress_callback(index, outcome, done, total)
        if done == total:
            self._done_event.set()

    def _requeue_lost(
        self, leases: List[int], worker_info: Dict[str, Any]
    ) -> None:
        """Return a lost worker's in-flight tasks to the queue.

        Each lost lease counts against the task's retry budget; a task
        exceeding it is completed with a synthetic infrastructure-error
        outcome so the sweep terminates with the failure on record instead
        of looping the same poisonous task forever.
        """
        with self._lock:
            for index in leases:
                if self._outcomes[index] is not None:
                    continue  # its result arrived before the disconnect
                self._lost_leases[index] = self._lost_leases.get(index, 0) + 1
                if self._lost_leases[index] <= self.max_task_retries:
                    # Requeue at the front: a resumed task is the oldest
                    # outstanding work and should not starve behind the
                    # whole remaining queue.
                    self._pending.appendleft(index)
                    continue
                task = self.tasks[index]
                outcome = {
                    "suite": task.suite,
                    "workload": task.workload,
                    "transformation": task.transformation.name,
                    "match_index": task.match_index,
                    "task_id": self._task_ids[index],
                    "worker": dict(worker_info),
                    "verdict": Verdict.UNTESTED.value,
                    "match_description": task.match_description,
                    "error": (
                        f"worker connection lost {self._lost_leases[index]} "
                        f"time(s) while running this task "
                        f"(retry budget: {self.max_task_retries})"
                    ),
                    "report": None,
                }
                self._outcomes[index] = outcome
                self._done_count += 1
                if self.store is not None:
                    self.store.record(self._task_ids[index], index, outcome)
                if self.progress_callback is not None:
                    self.progress_callback(
                        index, outcome, self._done_count, len(self.tasks)
                    )
            done, total = self._done_count, len(self.tasks)
            leases.clear()
        if done == total:
            self._done_event.set()
