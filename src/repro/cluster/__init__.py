"""Distributed sweep verification: scheduler, transports, journal, workers.

``repro.cluster`` turns the sweep pipeline (:mod:`repro.pipeline`) into a
distributed, fault-tolerant, resumable *service*.  The pieces compose in
layers:

1. **Protocol** (:mod:`repro.cluster.protocol`) -- length-prefixed JSON
   messages over TCP; strictly worker-initiated request/response.
2. **Journal** (:mod:`repro.cluster.journal`) -- an append-only JSONL
   result store keyed by deterministic task IDs
   (:attr:`repro.pipeline.tasks.SweepTask.task_id`), crash-safe by
   construction; any sweep (distributed or single-machine) journals its
   outcomes and can be killed and resumed, re-running only incomplete
   tasks.
3. **Scheduler core** (:mod:`repro.cluster.scheduler`) -- the transport-free
   service brain: a registry of concurrently active sweeps, each with its
   own queue, journal, retry budget and lifecycle state
   (``submitted -> running -> draining -> complete``), dispatched to
   workers by weighted fair share with latency-adaptive shard sizing.
4. **Transport** (:mod:`repro.cluster.service`) -- the asyncio
   :class:`VerificationService`: the worker socket loop, an HTTP
   submit/status API, shared-secret auth for non-loopback peers, and
   optional in-process local executors.  State-dir persistence
   (:mod:`repro.cluster.state`) makes the whole service
   kill-and-restartable with every in-flight sweep restored.
5. **Execution clients** -- elastic socket workers
   (:mod:`repro.cluster.worker`) that join/leave mid-service and survive
   service bounces (``--reconnect-seconds``), and the thin HTTP client
   (:mod:`repro.cluster.client`) behind ``repro.pipeline --submit``.

:class:`SweepCoordinator` (:mod:`repro.cluster.coordinator`) remains as the
one-shot convenience facade: one sweep, served until complete, workers
drained with ``done`` -- now a thin wrapper over scheduler + service.

Entry points::

    python -m repro.cluster.service --listen :8765 --http :8766 \\
        --state-dir svc                  # the always-on service
    python -m repro.pipeline --submit HOST:8766 ...   # thin submit client
    python -m repro.pipeline --serve :8765 --journal sweep.jsonl [--resume]
    python -m repro.cluster.worker --connect HOST:8765 --backend B --procs N
    python -m repro.cluster.smoke        # loopback service + workers,
                                         # diffed against the serial runner

The invariant everything here defends: a distributed, killed-and-resumed,
heterogeneous-backend sweep -- even one of several running concurrently on
a shared worker pool -- aggregates to a :class:`SweepResult` whose
:meth:`~repro.pipeline.result.SweepResult.comparable_dict` is identical to
a plain serial run's.
"""

from repro.cluster.coordinator import SweepCoordinator
from repro.cluster.journal import JournalError, ResultStore, sweep_identity
from repro.cluster.protocol import (
    ProtocolError,
    TOKEN_ENV,
    recv_message,
    send_message,
)
from repro.cluster.scheduler import SweepScheduler
from repro.cluster.service import VerificationService
from repro.cluster.state import ServiceState, restore_sweeps

__all__ = [
    "SweepCoordinator",
    "SweepScheduler",
    "VerificationService",
    "ServiceState",
    "restore_sweeps",
    "ResultStore",
    "JournalError",
    "sweep_identity",
    "ProtocolError",
    "TOKEN_ENV",
    "send_message",
    "recv_message",
    "run_worker",
    "parse_endpoint",
]


def __getattr__(name):
    # The worker module is imported lazily so `python -m repro.cluster.worker`
    # does not see itself pre-imported by this package (runpy would warn).
    if name in ("run_worker", "parse_endpoint"):
        from repro.cluster import worker

        return getattr(worker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
