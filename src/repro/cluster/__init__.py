"""Distributed sweep service: coordinator/worker orchestration + journal.

``repro.cluster`` turns the sweep pipeline (:mod:`repro.pipeline`) into a
distributed, fault-tolerant, resumable service.  Three pieces compose:

1. **Protocol** (:mod:`repro.cluster.protocol`) -- length-prefixed JSON
   messages over TCP; strictly worker-initiated request/response.
2. **Journal** (:mod:`repro.cluster.journal`) -- an append-only JSONL
   result store keyed by deterministic task IDs
   (:attr:`repro.pipeline.tasks.SweepTask.task_id`), crash-safe by
   construction; any sweep (distributed or single-machine) journals its
   outcomes and can be killed and resumed, re-running only incomplete
   tasks.
3. **Coordinator / worker** (:mod:`repro.cluster.coordinator`,
   :mod:`repro.cluster.worker`) -- the coordinator shards the task list
   over connected workers, requeues the in-flight shard of a lost worker
   with bounded per-task retries, and reassembles outcomes into task order;
   each worker drives a local process pool and may run a different
   execution backend (a free cross-machine backend cross-check, since
   backends are bitwise-equivalent).

Entry points::

    python -m repro.pipeline --serve :8765 --journal sweep.jsonl [--resume]
    python -m repro.cluster.worker --connect HOST:8765 --backend B --procs N
    python -m repro.cluster.smoke        # loopback coordinator + 2 workers,
                                         # diffed against the serial runner

The invariant everything here defends: a distributed, killed-and-resumed,
heterogeneous-backend sweep aggregates to a :class:`SweepResult` whose
:meth:`~repro.pipeline.result.SweepResult.comparable_dict` is identical to
a plain serial run's.
"""

from repro.cluster.coordinator import SweepCoordinator
from repro.cluster.journal import JournalError, ResultStore, sweep_identity
from repro.cluster.protocol import ProtocolError, recv_message, send_message

__all__ = [
    "SweepCoordinator",
    "ResultStore",
    "JournalError",
    "sweep_identity",
    "ProtocolError",
    "send_message",
    "recv_message",
    "run_worker",
    "parse_endpoint",
]


def __getattr__(name):
    # The worker module is imported lazily so `python -m repro.cluster.worker`
    # does not see itself pre-imported by this package (runpy would warn).
    if name in ("run_worker", "parse_endpoint"):
        from repro.cluster import worker

        return getattr(worker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
