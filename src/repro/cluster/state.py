"""Service state directory: per-sweep journals + submission metadata.

An always-on verification service owns many sweeps at once, each needing a
crash-safe journal *and* enough metadata to re-register the sweep after a
service restart (an HTTP-submitted task list exists nowhere else).  The
state directory multiplexes both, one pair of files per sweep::

    <state_dir>/
        sweep-001.meta.json     # serialized task list + submission params
        sweep-001.jsonl         # that sweep's append-only outcome journal
        sweep-002.meta.json
        sweep-002.jsonl
        ...

The meta file is written atomically (tmp + rename) *before* the sweep is
registered, so a service killed at any instant restores every submitted
sweep: :func:`restore_sweeps` re-reads each meta file, reopens its journal
in resume mode (truncated-tail repair included, via
:class:`~repro.cluster.journal.ResultStore`), and re-submits the sweep to a
fresh scheduler -- completed tasks are restored from the journal, only the
unfinished remainder is dispatched again.  Completed sweeps re-register
too (cheaply, straight to the ``complete`` state) so their results stay
queryable over HTTP across restarts.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.journal import ResultStore
from repro.pipeline.tasks import SweepTask

__all__ = ["ServiceState", "restore_sweeps"]

_SWEEP_ID_RE = re.compile(r"^sweep-(\d+)$")


class ServiceState:
    """Filesystem layout and persistence of one service's sweep registry."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------ #
    def meta_path(self, sweep_id: str) -> str:
        return os.path.join(self.root, f"{sweep_id}.meta.json")

    def journal_path(self, sweep_id: str) -> str:
        return os.path.join(self.root, f"{sweep_id}.jsonl")

    def list_sweeps(self) -> List[str]:
        """Registered sweep ids, in numeric submission order."""
        ids = []
        for name in os.listdir(self.root):
            if name.endswith(".meta.json"):
                ids.append(name[: -len(".meta.json")])

        def order(sweep_id: str) -> Any:
            match = _SWEEP_ID_RE.match(sweep_id)
            return (0, int(match.group(1))) if match else (1, sweep_id)

        return sorted(ids, key=order)

    def allocate_sweep_id(self) -> str:
        """Next unused ``sweep-NNN`` id (monotonic across restarts)."""
        highest = 0
        for sweep_id in self.list_sweeps():
            match = _SWEEP_ID_RE.match(sweep_id)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"sweep-{highest + 1:03d}"

    # ------------------------------------------------------------------ #
    def persist(
        self,
        sweep_id: str,
        tasks: Sequence[SweepTask],
        params: Dict[str, Any],
    ) -> None:
        """Atomically write a sweep's meta file (tasks + submission params).

        Runs *before* the sweep is registered with the scheduler: a crash
        after the rename restores the sweep on restart; a crash before it
        loses nothing the submitter was ever told about.
        """
        doc = {
            "sweep_id": sweep_id,
            "tasks": [t.to_dict() for t in tasks],
            **params,
        }
        path = self.meta_path(sweep_id)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(doc, f, separators=(",", ":"))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    def evict(self, sweep_id: str) -> None:
        """Delete a sweep's meta and journal files (cancellation/GC).

        Tolerates files that never existed or are already gone -- eviction
        must be idempotent so a cancel raced with a restart cannot fail.
        """
        for path in (self.meta_path(sweep_id), self.journal_path(sweep_id)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    def load_meta(self, sweep_id: str) -> Dict[str, Any]:
        with open(self.meta_path(sweep_id), "r", encoding="utf-8") as f:
            return json.load(f)

    def open_store(
        self,
        sweep_id: str,
        tasks: Sequence[SweepTask],
        suite: str,
        buggy: bool,
        backend: str,
        resume: bool = False,
    ) -> ResultStore:
        return ResultStore.open(
            self.journal_path(sweep_id),
            tasks,
            suite,
            buggy,
            backend,
            resume=resume,
            service_sweep_id=sweep_id,
        )


def restore_sweeps(scheduler: Any, state: ServiceState) -> List[str]:
    """Re-register every persisted sweep with ``scheduler`` after a restart.

    Journals reopen in resume mode, so completed tasks are restored and
    never re-dispatched; a sweep whose journal already covers every task
    lands directly in the ``complete`` state.  Returns the restored ids.
    """
    restored = []
    already = set(scheduler.sweep_ids())
    for sweep_id in state.list_sweeps():
        if sweep_id in already:
            continue  # submitted live before start(); nothing to restore
        meta = state.load_meta(sweep_id)
        tasks = [SweepTask.from_dict(d) for d in meta["tasks"]]
        store = state.open_store(
            sweep_id,
            tasks,
            meta.get("suite", "npbench"),
            bool(meta.get("buggy", False)),
            meta.get("backend", "interpreter"),
            resume=True,
        )
        scheduler.submit(
            tasks,
            sweep_id=sweep_id,
            suite=meta.get("suite"),
            buggy=meta.get("buggy"),
            backend=meta.get("backend"),
            priority=float(meta.get("priority", 1.0)),
            max_task_retries=meta.get("max_task_retries"),
            store=store,
            owns_store=True,
        )
        restored.append(sweep_id)
    return restored
