"""Program transformations (optimizations) and the matching framework.

Every transformation named in the paper's evaluation is re-implemented here,
each with an optional *injected bug* reproducing the failure class FuzzyFlow
uncovered (Table 2 and Sec. 6.4):

==============================  =============================================
Transformation                  Failure class reproduced (when buggy)
==============================  =============================================
MapTiling                       off-by-one tile bound (Fig. 2), non-divisible
                                sizes out-of-bounds (Sec. 2.1)
Vectorization                   correctness depends on input size divisibility
TaskletFusion                   change in semantics (wrong operand forwarded)
BufferTiling                    change in semantics (remainder tile dropped)
MapExpansion                    generates invalid code (missing connectors)
MapReduceFusion                 generates invalid code (dangling container)
StateAssignElimination          generates invalid code (symbol still needed)
SymbolAliasPromotion            generates invalid code (alias dropped too early)
LoopUnrolling                   wrong unroll count for negative loop steps
RedundantWriteElimination       removes a write that is read again later
GPUKernelExtraction             copies whole containers back from the device
                                without copying them in first
==============================  =============================================
"""

from repro.transforms.base import (
    Match,
    PatternTransformation,
    TransformationError,
    all_builtin_transformations,
    register_transformation,
)
from repro.transforms.fusion_transforms import (
    MapReduceFusion,
    RedundantWriteElimination,
    TaskletFusion,
)
from repro.transforms.gpu_transforms import GPUKernelExtraction
from repro.transforms.map_transforms import (
    BufferTiling,
    MapExpansion,
    MapTiling,
    Vectorization,
)
from repro.transforms.state_transforms import (
    LoopUnrolling,
    StateAssignElimination,
    SymbolAliasPromotion,
)

__all__ = [
    "PatternTransformation",
    "Match",
    "TransformationError",
    "register_transformation",
    "all_builtin_transformations",
    "MapTiling",
    "Vectorization",
    "MapExpansion",
    "BufferTiling",
    "TaskletFusion",
    "MapReduceFusion",
    "RedundantWriteElimination",
    "StateAssignElimination",
    "SymbolAliasPromotion",
    "LoopUnrolling",
    "GPUKernelExtraction",
]
