"""Simulated GPU-kernel extraction.

The CLOUDSC case study (Sec. 6.4) tests a custom transformation that turns
suitable loop nests into GPU kernels by inserting host/device copies around
them.  The accelerator is *simulated* here: "device" containers are ordinary
transient buffers with ``StorageType.GPU_Global`` and host<->device copies
are explicit access-to-access copy edges -- exactly the structure whose bug
the paper describes:

    the transformation generates data copies for the *entire* data containers
    touched by extracted GPU kernels [...] if the data written to by the
    kernel is not also first copied onto the GPU in its entirety, this causes
    garbage values to be copied back to the host.

The faithful variant copies every touched container to the device before the
kernel runs; the buggy variant only copies containers the kernel *reads*, so
partially-written outputs drag uninitialized device memory back over valid
host data.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.sdfg.dtypes import ScheduleType, StorageType
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.transforms.base import (
    Match,
    PatternTransformation,
    TransformationError,
    register_transformation,
)

__all__ = ["GPUKernelExtraction"]


@register_transformation
class GPUKernelExtraction(PatternTransformation):
    """Extract a top-level map scope into a (simulated) GPU kernel."""

    name = "GPUKernelExtraction"
    description = (
        "Runs a loop nest as a device kernel, inserting host/device copies"
    )
    builtin = False  # a custom optimization in the CLOUDSC case study

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        for state in sdfg.states():
            sdict = state.scope_dict()
            for entry in [n for n in state.nodes() if isinstance(n, MapEntry)]:
                if sdict.get(entry) is not None:
                    continue
                if entry.map.schedule == ScheduleType.GPU_Device:
                    continue
                matches.append(Match(self, state=state, nodes={"map_entry": entry}))
        return matches

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        exit_ = state.exit_node(entry)
        # All boundary edges must connect to access nodes of array containers.
        for e in state.in_edges(entry):
            if e.data.is_empty:
                continue
            if not isinstance(e.src, AccessNode):
                return False
        for e in state.out_edges(exit_):
            if e.data.is_empty:
                continue
            if not isinstance(e.dst, AccessNode):
                return False
        # Kernels with opaque callbacks cannot be extracted.
        for n in state.scope_subgraph_nodes(entry, include_boundary=False):
            if isinstance(n, Tasklet) and n.side_effect_callback:
                return False
        return True

    # .................................................................. #
    def _device_name(self, sdfg: SDFG, data: str) -> str:
        name = f"gpu_{data}"
        if name not in sdfg.arrays:
            desc = sdfg.arrays[data].clone()
            desc.transient = True
            desc.storage = StorageType.GPU_Global
            sdfg.add_datadesc(name, desc)
        return name

    def _rename_scope_memlets(
        self, state: SDFGState, entry: MapEntry, mapping: Dict[str, str]
    ) -> None:
        exit_ = state.exit_node(entry)
        scope_nodes = set(
            id(n) for n in state.scope_subgraph_nodes(entry, include_boundary=True)
        )
        for e in state.edges():
            if id(e.src) in scope_nodes and id(e.dst) in scope_nodes:
                if e.data is not None and not e.data.is_empty and e.data.data in mapping:
                    e.data.data = mapping[e.data.data]

    def apply(self, sdfg: SDFG, match: Match) -> None:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        exit_ = state.exit_node(entry)

        read_containers: Set[str] = set()
        written_containers: Set[str] = set()
        for e in state.in_edges(entry):
            if not e.data.is_empty:
                read_containers.add(e.data.data)
        for e in state.out_edges(exit_):
            if not e.data.is_empty:
                written_containers.add(e.data.data)
        touched = read_containers | written_containers

        mapping = {data: self._device_name(sdfg, data) for data in touched}

        # Existing host access nodes adjacent to the kernel boundary.
        read_nodes: Dict[str, AccessNode] = {}
        for e in state.in_edges(entry):
            if not e.data.is_empty and isinstance(e.src, AccessNode):
                read_nodes.setdefault(e.data.data, e.src)
        write_nodes: Dict[str, AccessNode] = {}
        for e in state.out_edges(exit_):
            if not e.data.is_empty and isinstance(e.dst, AccessNode):
                write_nodes.setdefault(e.data.data, e.dst)

        # Host -> device copies.  The faithful variant copies every touched
        # container in its entirety; the buggy variant only copies containers
        # the kernel reads.
        copy_in = touched if not self.inject_bug else read_containers
        device_in_nodes: Dict[str, AccessNode] = {}
        for data in sorted(copy_in):
            gpu = mapping[data]
            if data in read_nodes:
                host_node = read_nodes[data]
            else:
                # Write-only container: source the copy from an existing
                # access node (correctly ordered after any producer) if one
                # exists, but never from the node the kernel writes back to
                # (that would create a cycle).
                existing = [
                    n
                    for n in state.access_nodes_for(data)
                    if n is not write_nodes.get(data)
                ]
                host_node = existing[0] if existing else state.add_access(data)
            dev_node = state.add_access(gpu)
            shape = [str(s) for s in sdfg.arrays[data].shape]
            full = ", ".join(f"0:({s})-1" for s in shape)
            state.add_nedge(host_node, dev_node, Memlet(data, full, other_subset=full))
            device_in_nodes[data] = dev_node

        # Rewire kernel inputs to the device containers.
        for e in list(state.in_edges(entry)):
            if e.data.is_empty:
                continue
            data = e.data.data
            gpu = mapping[data]
            dev_node = device_in_nodes.get(data)
            if dev_node is None:
                dev_node = state.add_access(gpu)
                device_in_nodes[data] = dev_node
            new_memlet = e.data.clone()
            new_memlet.data = gpu
            state.remove_edge(e)
            state.add_edge(dev_node, None, entry, e.dst_conn, new_memlet)

        # Rewire kernel outputs to device containers and copy whole
        # containers back to the host (this is what the engineers' original
        # transformation did; it is only safe if the container was copied to
        # the device in its entirety beforehand).
        for e in list(state.out_edges(exit_)):
            if e.data.is_empty:
                continue
            data = e.data.data
            gpu = mapping[data]
            host_out = e.dst
            dev_out = state.add_access(gpu)
            new_memlet = e.data.clone()
            new_memlet.data = gpu
            state.remove_edge(e)
            state.add_edge(exit_, e.src_conn, dev_out, None, new_memlet)
            shape = [str(s) for s in sdfg.arrays[data].shape]
            full = ", ".join(f"0:({s})-1" for s in shape)
            state.add_nedge(dev_out, host_out, Memlet(gpu, full, other_subset=full))
            # Ensure the copy-in (if any) is ordered before the kernel writes.
            if data in device_in_nodes and data not in read_containers:
                state.add_nedge(device_in_nodes[data], entry, Memlet.empty())

        # Rename all memlets inside the kernel scope to the device containers.
        self._rename_scope_memlets(state, entry, mapping)

        entry.map.schedule = ScheduleType.GPU_Device

    def modified_nodes(self, sdfg: SDFG, match: Match) -> List[Tuple[SDFGState, Node]]:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        out = [(state, n) for n in state.scope_subgraph_nodes(entry)]
        exit_ = state.exit_node(entry)
        # The host access nodes around the kernel are also affected (copies
        # are inserted next to them).
        for e in state.in_edges(entry):
            if isinstance(e.src, AccessNode):
                out.append((state, e.src))
        for e in state.out_edges(exit_):
            if isinstance(e.dst, AccessNode):
                out.append((state, e.dst))
        return out
