"""The transformation framework.

A :class:`PatternTransformation` finds *matches* (program locations it can
rewrite), checks applicability, applies the rewrite in place, and -- crucially
for FuzzyFlow's white-box change isolation (Sec. 3, step 2) -- reports which
nodes/states it modifies (the change set ΔT).

Transformations may carry an ``inject_bug`` flag.  With the flag off they are
faithful, semantics-preserving optimizations; with it on they reproduce the
bug class the paper's evaluation found in the corresponding DaCe or custom
transformation.  The differential-fuzzing case studies run the buggy variants
and check that FuzzyFlow flags them; the unit tests also check that the
correct variants pass.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.sdfg.nodes import Node, next_guid
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState

__all__ = [
    "TransformationError",
    "Match",
    "PatternTransformation",
    "register_transformation",
    "all_builtin_transformations",
]


class TransformationError(Exception):
    """Raised when a transformation cannot be applied to a given match."""


@dataclass
class Match:
    """A concrete location a transformation can be applied to.

    ``state`` and ``nodes`` describe dataflow-level matches; state-machine
    transformations (loop unrolling, symbol promotion, ...) leave them empty
    and populate ``states`` / ``metadata`` instead.
    """

    transformation: "PatternTransformation"
    state: Optional[SDFGState] = None
    nodes: Dict[str, Node] = field(default_factory=dict)
    states: List[SDFGState] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        loc = ""
        if self.state is not None:
            loc = f"state '{self.state.label}'"
        elif self.states:
            loc = "states " + ", ".join(f"'{s.label}'" for s in self.states)
        parts = ", ".join(f"{k}={v!r}" for k, v in self.nodes.items())
        return f"{self.transformation.name} @ {loc} [{parts}]"

    def __repr__(self) -> str:
        return f"Match({self.describe()})"


class PatternTransformation:
    """Base class for all transformations."""

    #: Human-readable transformation name (defaults to the class name).
    name: str = ""
    #: One-line description (mirrors the Table 2 phrasing where applicable).
    description: str = ""
    #: Whether this transformation is part of the "built-in" set swept over
    #: the NPBench-style suite (Sec. 6.3).
    builtin: bool = True

    def __init__(self, inject_bug: bool = False) -> None:
        self.inject_bug = inject_bug
        if not self.name:
            self.name = type(self).__name__

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def find_matches(self, sdfg: SDFG) -> List[Match]:
        """All locations in ``sdfg`` this transformation can rewrite."""
        raise NotImplementedError

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        """Additional applicability check for a specific match."""
        return True

    def apply(self, sdfg: SDFG, match: Match) -> None:
        """Rewrite ``sdfg`` in place at the matched location."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Change reporting (white-box ΔT)
    # ------------------------------------------------------------------ #
    def modified_nodes(self, sdfg: SDFG, match: Match) -> List[Tuple[SDFGState, Node]]:
        """Dataflow nodes of the *original* program this match will modify."""
        if match.state is None:
            return []
        return [(match.state, n) for n in match.nodes.values()]

    def modified_states(self, sdfg: SDFG, match: Match) -> List[SDFGState]:
        """States of the original program this match will modify."""
        if match.states:
            return list(match.states)
        if match.state is not None:
            return [match.state]
        return []

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def apply_to_first(self, sdfg: SDFG) -> Match:
        """Apply to the first available match (raises if none exists)."""
        matches = [m for m in self.find_matches(sdfg) if self.can_be_applied(sdfg, m)]
        if not matches:
            raise TransformationError(f"{self.name}: no applicable match found")
        self.apply(sdfg, matches[0])
        return matches[0]

    def __call__(self, sdfg: SDFG, match: Match) -> None:
        self.apply(sdfg, match)

    def __repr__(self) -> str:
        flag = " [buggy]" if self.inject_bug else ""
        return f"<{self.name}{flag}>"


# ---------------------------------------------------------------------- #
# Registry of built-in transformations (used by the NPBench-style sweep)
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type[PatternTransformation]] = {}


def register_transformation(cls: Type[PatternTransformation]) -> Type[PatternTransformation]:
    """Class decorator adding a transformation to the built-in registry."""
    _REGISTRY[cls.__name__] = cls
    return cls


def all_builtin_transformations() -> Dict[str, Type[PatternTransformation]]:
    """Name -> class mapping of all registered built-in transformations."""
    # Importing the concrete modules populates the registry.
    import repro.transforms.fusion_transforms  # noqa: F401
    import repro.transforms.gpu_transforms  # noqa: F401
    import repro.transforms.map_transforms  # noqa: F401
    import repro.transforms.state_transforms  # noqa: F401

    return {name: cls for name, cls in _REGISTRY.items() if cls.builtin}


# ---------------------------------------------------------------------- #
# Helpers shared by concrete transformations
# ---------------------------------------------------------------------- #
def copy_state_into(sdfg: SDFG, state: SDFGState, new_label: str) -> SDFGState:
    """Deep-copy a state into ``sdfg`` under a new label.

    All copied nodes receive *fresh* guids: the copies are new program
    elements (e.g. unrolled loop body instances), not the originals.
    """
    new_state = copy.deepcopy(state)
    new_state.label = new_label
    new_state.sdfg = sdfg
    for node in new_state.nodes():
        node.guid = next_guid()
    sdfg._states.add_node(new_state)
    return new_state
