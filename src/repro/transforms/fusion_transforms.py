"""Fusion-style transformations: tasklet fusion, map-reduce fusion, and
redundant-write elimination.

These are the "removes temporary writes / intermediate buffers" family of
optimizations from Table 2 and the CLOUDSC write-elimination case study
(Sec. 6.4).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState, propagate_memlet
from repro.symbolic.expressions import Symbol
from repro.symbolic.ranges import Subset
from repro.transforms.base import (
    Match,
    PatternTransformation,
    TransformationError,
    register_transformation,
)

__all__ = ["TaskletFusion", "MapReduceFusion", "RedundantWriteElimination"]


def _rename_identifier(code: str, old: str, new: str) -> str:
    """Rename a variable in tasklet code (word-boundary aware)."""
    return re.sub(rf"\b{re.escape(old)}\b", new, code)


def _container_access_count(sdfg: SDFG, data: str) -> int:
    """Number of access nodes referring to a container across the program."""
    count = 0
    for state in sdfg.states():
        for node in state.data_nodes():
            if node.data == data:
                count += 1
    return count


def _find_producer_consumer_chains(
    sdfg: SDFG, transformation: PatternTransformation
) -> List[Match]:
    """Find ``tasklet -> transient access -> tasklet`` chains in one scope."""
    matches: List[Match] = []
    for state in sdfg.states():
        sdict = state.scope_dict()
        for acc in state.data_nodes():
            desc = sdfg.arrays.get(acc.data)
            if desc is None or not desc.transient:
                continue
            in_edges = state.in_edges(acc)
            out_edges = state.out_edges(acc)
            if len(in_edges) != 1 or len(out_edges) != 1:
                continue
            producer, consumer = in_edges[0].src, out_edges[0].dst
            if not isinstance(producer, Tasklet) or not isinstance(consumer, Tasklet):
                continue
            if sdict.get(producer) is not sdict.get(consumer):
                continue
            if sdict.get(acc) is not sdict.get(producer):
                continue
            matches.append(
                Match(
                    transformation,
                    state=state,
                    nodes={"first": producer, "access": acc, "second": consumer},
                )
            )
    return matches


def _fuse_chain(
    sdfg: SDFG,
    state: SDFGState,
    first: Tasklet,
    access: AccessNode,
    second: Tasklet,
    forward_wrong_operand: bool = False,
) -> Tasklet:
    """Fuse ``first -> access -> second`` into a single tasklet.

    With ``forward_wrong_operand`` the consumer's connector is bound to the
    producer's *input* instead of its result -- the injected change-in-
    semantics bug of the TaskletFusion entry in Table 2.
    """
    in_edge = state.in_edges(access)[0]
    out_edge = state.out_edges(access)[0]
    produced_conn = in_edge.src_conn
    consumed_conn = out_edge.dst_conn
    if produced_conn is None or consumed_conn is None:
        raise TransformationError("TaskletFusion: chain edges must use connectors")

    # Rename all connectors to collision-free names.
    code1 = first.code
    code2 = second.code
    new_inputs: Dict[str, Tuple[Tasklet, str]] = {}
    for conn in sorted(first.in_connectors):
        new = f"__in1_{conn}"
        code1 = _rename_identifier(code1, conn, new)
        new_inputs[new] = (first, conn)
    for conn in sorted(second.in_connectors):
        if conn == consumed_conn:
            continue
        new = f"__in2_{conn}"
        code2 = _rename_identifier(code2, conn, new)
        new_inputs[new] = (second, conn)
    new_outputs: Dict[str, Tuple[Tasklet, str]] = {}
    for conn in sorted(second.out_connectors):
        new = f"__out2_{conn}"
        code2 = _rename_identifier(code2, conn, new)
        new_outputs[new] = (second, conn)
    # Producer outputs other than the fused one stay visible.
    for conn in sorted(first.out_connectors):
        if conn == produced_conn:
            continue
        new = f"__out1_{conn}"
        code1 = _rename_identifier(code1, conn, new)
        new_outputs[new] = (first, conn)

    # The intermediate value.
    code1 = _rename_identifier(code1, produced_conn, "__fused_tmp")
    if forward_wrong_operand and first.in_connectors:
        # BUG: bind the consumer to the producer's first input operand rather
        # than the produced value.
        wrong = f"__in1_{sorted(first.in_connectors)[0]}"
        code2 = _rename_identifier(code2, consumed_conn, wrong)
    else:
        code2 = _rename_identifier(code2, consumed_conn, "__fused_tmp")

    fused = state.add_tasklet(
        f"{first.label}_{second.label}_fused",
        list(new_inputs.keys()),
        list(new_outputs.keys()),
        code1 + "\n" + code2,
        side_effect_callback=first.side_effect_callback or second.side_effect_callback,
    )

    # Rewire inputs.
    for new_conn, (orig_node, orig_conn) in new_inputs.items():
        for e in state.in_edges(orig_node):
            if e.dst_conn == orig_conn:
                state.add_edge(e.src, e.src_conn, fused, new_conn, e.data)
    # Rewire outputs.
    for new_conn, (orig_node, orig_conn) in new_outputs.items():
        for e in state.out_edges(orig_node):
            if e.src_conn == orig_conn:
                state.add_edge(fused, new_conn, e.dst, e.dst_conn, e.data)

    state.remove_node(first)
    state.remove_node(second)
    state.remove_node(access)
    # Drop the temporary container if nothing else uses it.
    if _container_access_count(sdfg, access.data) == 0:
        try:
            sdfg.remove_data(access.data)
        except Exception:  # pragma: no cover - defensive
            pass
    return fused


# ---------------------------------------------------------------------- #
@register_transformation
class TaskletFusion(PatternTransformation):
    """Fuse two tasklets connected through a single-use temporary.

    Buggy variant: forwards the wrong operand into the consumer (a silent
    change in semantics, Table 2 ✗).
    """

    name = "TaskletFusion"
    description = "Removes temporary writes between adjacent computations"

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        return _find_producer_consumer_chains(sdfg, self)

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        acc: AccessNode = match.nodes["access"]
        # The temporary must not be used anywhere else in the program.
        return _container_access_count(sdfg, acc.data) == 1

    def apply(self, sdfg: SDFG, match: Match) -> None:
        _fuse_chain(
            sdfg,
            match.state,
            match.nodes["first"],
            match.nodes["access"],
            match.nodes["second"],
            forward_wrong_operand=self.inject_bug,
        )


# ---------------------------------------------------------------------- #
@register_transformation
class RedundantWriteElimination(PatternTransformation):
    """Eliminate an intermediate write by subsuming the producer into the
    consumer (the CLOUDSC "write elimination" optimization of Sec. 6.4).

    The faithful variant refuses to eliminate writes to containers that are
    accessed anywhere else in the program.  The buggy variant skips that
    check, so a write whose value is read again later silently disappears --
    the exact failure the paper reports (1 faulty instance out of 136 on
    CLOUDSC).
    """

    name = "RedundantWriteElimination"
    description = "Removes temporary write operations between computations"
    builtin = False  # a custom optimization in the CLOUDSC case study

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        return _find_producer_consumer_chains(sdfg, self)

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        if self.inject_bug:
            # BUG: no check whether the temporary is read again later.
            return True
        acc: AccessNode = match.nodes["access"]
        return _container_access_count(sdfg, acc.data) == 1

    def apply(self, sdfg: SDFG, match: Match) -> None:
        _fuse_chain(
            sdfg,
            match.state,
            match.nodes["first"],
            match.nodes["access"],
            match.nodes["second"],
            forward_wrong_operand=False,
        )


# ---------------------------------------------------------------------- #
@register_transformation
class MapReduceFusion(PatternTransformation):
    """Fuse an element-wise producer map with a following reduction map,
    removing the intermediate buffer.

    Buggy variant: removes the intermediate container from the program while
    a memlet still refers to it -- "generates invalid code" (Table 2 ὒ8).
    """

    name = "MapReduceFusion"
    description = "Removes intermediate buffers for reductions"

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        for state in sdfg.states():
            sdict = state.scope_dict()
            for acc in state.data_nodes():
                desc = sdfg.arrays.get(acc.data)
                if desc is None or not desc.transient or sdict.get(acc) is not None:
                    continue
                in_edges = state.in_edges(acc)
                out_edges = state.out_edges(acc)
                if len(in_edges) != 1 or len(out_edges) != 1:
                    continue
                if not isinstance(in_edges[0].src, MapExit):
                    continue
                if not isinstance(out_edges[0].dst, MapEntry):
                    continue
                first_exit: MapExit = in_edges[0].src
                second_entry: MapEntry = out_edges[0].dst
                first_entry = state.entry_node_for_exit(first_exit)
                info = self._reduction_info(sdfg, state, second_entry, acc.data)
                if info is None:
                    continue
                matches.append(
                    Match(
                        self,
                        state=state,
                        nodes={
                            "first_map_entry": first_entry,
                            "first_map_exit": first_exit,
                            "buffer": acc,
                            "second_map_entry": second_entry,
                        },
                        metadata=info,
                    )
                )
        return matches

    def _reduction_info(
        self, sdfg: SDFG, state: SDFGState, entry: MapEntry, buffer_name: str
    ) -> Optional[Dict]:
        """Check the consumer map is an identity-tasklet reduction over the
        buffer and collect its output memlet."""
        inner = state.scope_subgraph_nodes(entry, include_boundary=False)
        tasklets = [n for n in inner if isinstance(n, Tasklet)]
        if len(tasklets) != 1 or any(isinstance(n, MapEntry) for n in inner):
            return None
        t = tasklets[0]
        if len(t.in_connectors) != 1 or len(t.out_connectors) != 1:
            return None
        in_conn = next(iter(t.in_connectors))
        out_conn = next(iter(t.out_connectors))
        if t.code.strip() != f"{out_conn} = {in_conn}":
            return None
        in_edge = next(
            (e for e in state.in_edges(t) if e.dst_conn == in_conn), None
        )
        out_edge = next(
            (e for e in state.out_edges(t) if e.src_conn == out_conn), None
        )
        if in_edge is None or out_edge is None:
            return None
        if in_edge.data.data != buffer_name or out_edge.data.wcr is None:
            return None
        # The buffer must be read at the plain map-parameter index.
        params = entry.map.params
        subset = in_edge.data.subset
        if subset.dims != len(params):
            return None
        for p, r in zip(params, subset.ranges):
            if not (r.is_point() and r.begin == Symbol(p)):
                return None
        exit_ = state.exit_node(entry)
        outer_out = next(
            (e for e in state.out_edges(exit_) if not e.data.is_empty), None
        )
        if outer_out is None or not isinstance(outer_out.dst, AccessNode):
            return None
        return {
            "reduce_params": list(params),
            "reduce_output_memlet": out_edge.data,
            "reduce_target": outer_out.dst.data,
            "reduce_target_node": outer_out.dst,
        }

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        state = match.state
        first_entry: MapEntry = match.nodes["first_map_entry"]
        buffer: AccessNode = match.nodes["buffer"]
        # The producer must write the buffer at plain parameter indices so the
        # parameter substitution below is exact.
        inner = state.scope_subgraph_nodes(first_entry, include_boundary=False)
        tasklets = [n for n in inner if isinstance(n, Tasklet)]
        if len(tasklets) != 1:
            return False
        t = tasklets[0]
        out_edges = [e for e in state.out_edges(t) if e.data.data == buffer.data]
        if len(out_edges) != 1:
            return False
        params = first_entry.map.params
        subset = out_edges[0].data.subset
        if subset.dims != len(params) or len(params) != len(match.metadata["reduce_params"]):
            return False
        return all(
            r.is_point() and r.begin == Symbol(p) for p, r in zip(params, subset.ranges)
        )

    def apply(self, sdfg: SDFG, match: Match) -> None:
        state = match.state
        first_entry: MapEntry = match.nodes["first_map_entry"]
        first_exit: MapExit = match.nodes["first_map_exit"]
        buffer: AccessNode = match.nodes["buffer"]
        second_entry: MapEntry = match.nodes["second_map_entry"]
        second_exit = state.exit_node(second_entry)

        reduce_memlet: Memlet = match.metadata["reduce_output_memlet"]
        reduce_params: List[str] = match.metadata["reduce_params"]
        target: str = match.metadata["reduce_target"]

        # Re-express the reduction output subset in the producer's parameters.
        substitution = {
            rp: Symbol(fp) for rp, fp in zip(reduce_params, first_entry.map.params)
        }
        new_out_subset = reduce_memlet.subset.subs(substitution)

        # Redirect the producer tasklet's write to the reduction target.
        inner = state.scope_subgraph_nodes(first_entry, include_boundary=False)
        producer = next(n for n in inner if isinstance(n, Tasklet))
        for e in state.out_edges(producer):
            if e.data.data == buffer.data:
                e.data = Memlet(target, new_out_subset, wcr=reduce_memlet.wcr)

        # Rewire the producer's exit to write the reduction target directly.
        target_access: AccessNode = match.metadata["reduce_target_node"]
        if not self.inject_bug:
            for e in list(state.out_edges(first_exit)):
                if e.data is not None and e.data.data == buffer.data:
                    state.remove_edge(e)
                    outer = propagate_memlet(
                        Memlet(target, new_out_subset, wcr=reduce_memlet.wcr),
                        first_entry.map,
                    )
                    state.add_edge(first_exit, e.src_conn, target_access, None, outer)
        # BUG (inject_bug): the boundary edge keeps referring to the buffer
        # container even though the container is deleted below.

        # Remove the consumer map scope.
        for n in state.scope_subgraph_nodes(second_entry, include_boundary=True):
            if state.graph.has_node(n):
                state.remove_node(n)

        # Drop the intermediate container.
        if self.inject_bug:
            # BUG: unconditionally delete the container even though boundary
            # memlets still reference it -> structurally invalid program.
            sdfg.arrays.pop(buffer.data, None)
        else:
            state.remove_node(buffer)
            if _container_access_count(sdfg, buffer.data) == 0:
                referenced = any(
                    e.data is not None and not e.data.is_empty and e.data.data == buffer.data
                    for st in sdfg.states()
                    for e in st.edges()
                )
                if not referenced:
                    sdfg.remove_data(buffer.data)

    def modified_nodes(self, sdfg: SDFG, match: Match) -> List[Tuple[SDFGState, Node]]:
        state = match.state
        out = []
        for key in ("first_map_entry", "second_map_entry"):
            entry: MapEntry = match.nodes[key]
            out.extend((state, n) for n in state.scope_subgraph_nodes(entry))
        out.append((state, match.nodes["buffer"]))
        return out
