"""Transformations on the control-flow state machine.

* :class:`LoopUnrolling` -- unrolls sequential loops with constant bounds;
  the buggy variant mis-computes the trip count of negative-step loops (the
  CLOUDSC finding of Sec. 6.4: a 4-iteration descending loop unrolled into
  too few body instances).
* :class:`StateAssignElimination` -- removes dead interstate symbol
  assignments; the buggy variant removes assignments that are still needed.
* :class:`SymbolAliasPromotion` -- replaces aliased symbols by their source
  symbol; the buggy variant forgets to rewrite dataflow uses before dropping
  the alias.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.sdfg.analysis import LoopInfo, find_loops, states_reachable_from
from repro.sdfg.nodes import MapEntry, MapExit, Node
from repro.sdfg.sdfg import SDFG, InterstateEdge
from repro.sdfg.state import SDFGState
from repro.symbolic.expressions import Symbol
from repro.transforms.base import (
    Match,
    PatternTransformation,
    TransformationError,
    copy_state_into,
    register_transformation,
)

__all__ = ["LoopUnrolling", "StateAssignElimination", "SymbolAliasPromotion"]


def _symbol_used_in_state(state: SDFGState, symbol: str) -> bool:
    return symbol in state.free_symbols


def _substitute_symbol_in_state(state: SDFGState, old: str, new: str) -> None:
    """Replace a symbol in all memlets and map ranges of a state."""
    mapping = {old: Symbol(new)}
    for edge in state.edges():
        if edge.data is not None and not edge.data.is_empty:
            edge.data = edge.data.subs(mapping)
    for node in state.nodes():
        if isinstance(node, (MapEntry, MapExit)):
            node.map.ranges = [r.subs(mapping) for r in node.map.ranges]


def _substitute_symbol_in_edge(edge_data: InterstateEdge, old: str, new: str) -> None:
    edge_data.condition = re.sub(rf"\b{re.escape(old)}\b", new, edge_data.condition)
    edge_data.assignments = {
        k: re.sub(rf"\b{re.escape(old)}\b", new, v)
        for k, v in edge_data.assignments.items()
    }


# ---------------------------------------------------------------------- #
@register_transformation
class LoopUnrolling(PatternTransformation):
    """Fully unroll a sequential loop with constant bounds.

    Buggy variant: derives the trip count from the loop condition assuming an
    exclusive ascending comparison, which drops iterations of negative-step
    loops (Sec. 6.4, "Loop Unrolling").
    """

    name = "LoopUnrolling"
    description = "Fully unrolls constant-bound sequential loops"
    builtin = False  # a custom optimization in the CLOUDSC case study

    def __init__(self, inject_bug: bool = False, max_iterations: int = 128) -> None:
        super().__init__(inject_bug=inject_bug)
        self.max_iterations = max_iterations

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        for loop in find_loops(sdfg):
            matches.append(
                Match(
                    self,
                    states=[loop.guard, loop.body],
                    metadata={"loop": loop},
                )
            )
        return matches

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        loop: LoopInfo = match.metadata["loop"]
        values = loop.iteration_values({})
        if values is None or not values or len(values) > self.max_iterations:
            return False
        # The body must be a simple single-entry/single-exit loop body.
        body_in = sdfg.in_edges(loop.body)
        body_out = sdfg.out_edges(loop.body)
        return len(body_in) == 1 and len(body_out) == 1

    # .................................................................. #
    def _unroll_values(self, loop: LoopInfo) -> List[int]:
        correct = loop.iteration_values({}) or []
        if not self.inject_bug:
            return correct
        # BUG: extract the bound from the condition and use an exclusive
        # ascending-style range regardless of the comparison direction.
        m = re.match(
            rf"\s*{re.escape(loop.loop_variable)}\s*(<=|>=|<|>)\s*(-?\d+)\s*$",
            loop.condition,
        )
        if not m:
            return correct
        bound = int(m.group(2))
        init = int(eval(loop.init_expression, {"__builtins__": {}}, {}))  # noqa: S307
        step_match = re.match(
            rf"\s*{re.escape(loop.loop_variable)}\s*([+-])\s*(\d+)\s*$",
            loop.increment_expression,
        )
        if not step_match:
            return correct
        step = int(step_match.group(2)) * (1 if step_match.group(1) == "+" else -1)
        if step > 0:
            # Ascending loops happen to be handled correctly by the buggy
            # implementation -- only negative-step loops are mis-unrolled,
            # matching the single failing instance found on CLOUDSC.
            return correct
        return list(range(init, bound, step))

    def apply(self, sdfg: SDFG, match: Match) -> None:
        loop: LoopInfo = match.metadata["loop"]
        values = self._unroll_values(loop)
        before = loop.init_edge.src
        after = loop.after

        # Remove the loop skeleton.
        for e in (loop.init_edge, loop.condition_edge, loop.exit_edge, loop.back_edge):
            if e in sdfg.edges():
                sdfg.remove_edge(e)
        # Preserve any assignments that arrived on the init edge other than
        # the loop variable itself.
        carried = {
            k: v
            for k, v in loop.init_edge.data.assignments.items()
            if k != loop.loop_variable
        }

        prev = before
        first_assign = dict(carried)
        for k, value in enumerate(values):
            inst = copy_state_into(sdfg, loop.body, f"{loop.body.label}_unrolled_{k}")
            assignments = dict(first_assign)
            assignments[loop.loop_variable] = str(value)
            first_assign = {}
            sdfg.add_edge(prev, inst, InterstateEdge(assignments=assignments))
            prev = inst
        if not values:
            sdfg.add_edge(prev, after, InterstateEdge(assignments=dict(carried)))
        else:
            sdfg.add_edge(prev, after, InterstateEdge())

        sdfg.remove_state(loop.body)
        sdfg.remove_state(loop.guard)

    def modified_states(self, sdfg: SDFG, match: Match) -> List[SDFGState]:
        loop: LoopInfo = match.metadata["loop"]
        return [loop.guard, loop.body]


# ---------------------------------------------------------------------- #
@register_transformation
class StateAssignElimination(PatternTransformation):
    """Remove dead symbol assignments from interstate edges.

    Buggy variant: only checks whether the symbol is *reassigned* downstream
    and never whether it is still used, so live assignments are removed as
    well -- executing the program then fails with an undefined symbol
    ("generates invalid code", Table 2 ὒ8).
    """

    name = "StateAssignElimination"
    description = "Program simplification: removes dead interstate assignments"

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        for edge in sdfg.edges():
            for symbol in sorted(edge.data.assignments.keys()):
                matches.append(
                    Match(
                        self,
                        states=[edge.src, edge.dst],
                        metadata={"edge": edge, "symbol": symbol},
                    )
                )
        return matches

    def _symbol_is_dead(self, sdfg: SDFG, edge, symbol: str) -> bool:
        dst = edge.dst
        if self.inject_bug:
            # BUG: only check whether the symbol is *reassigned* downstream
            # and never check whether it is still *used* -- live assignments
            # are removed, leaving undefined-symbol references behind.
            for e in sdfg.edges():
                if e is not edge and symbol in e.data.assignments:
                    return False
            return True
        # Correct: the symbol must be unused in the destination state, every
        # state reachable from it, and every interstate edge reachable from it
        # (conditions or right-hand sides of assignments).
        if _symbol_used_in_state(dst, symbol):
            return False
        reachable = states_reachable_from(sdfg, dst) | {dst}
        for state in reachable:
            if state is not dst and _symbol_used_in_state(state, symbol):
                return False
            for e in sdfg.out_edges(state):
                names = e.data.free_symbols
                if symbol in names:
                    return False
        return True

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        return self._symbol_is_dead(sdfg, match.metadata["edge"], match.metadata["symbol"])

    def apply(self, sdfg: SDFG, match: Match) -> None:
        edge = match.metadata["edge"]
        symbol = match.metadata["symbol"]
        if symbol not in edge.data.assignments:
            raise TransformationError(
                f"StateAssignElimination: '{symbol}' is not assigned on the edge"
            )
        del edge.data.assignments[symbol]

    def modified_states(self, sdfg: SDFG, match: Match) -> List[SDFGState]:
        edge = match.metadata["edge"]
        out = [edge.src, edge.dst]
        if not self.inject_bug:
            return out
        # The buggy variant can affect everything downstream; still report the
        # local change set (FuzzyFlow covers the rest via side-effect analysis).
        return out


# ---------------------------------------------------------------------- #
@register_transformation
class SymbolAliasPromotion(PatternTransformation):
    """Replace a symbol alias (``s2 = s1`` on an interstate edge) by its
    source symbol and drop the assignment.

    Buggy variant: rewrites interstate edges but forgets dataflow uses (map
    ranges and memlets), leaving references to the now-undefined alias --
    "generates invalid code" (Table 2 ὒ8).
    """

    name = "SymbolAliasPromotion"
    description = "Program simplification: promotes symbol aliases"

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        ident = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*$")
        for edge in sdfg.edges():
            for alias, expr in sorted(edge.data.assignments.items()):
                m = ident.match(expr)
                if not m:
                    continue
                source = m.group(1)
                if source == alias:
                    continue
                matches.append(
                    Match(
                        self,
                        states=[edge.src, edge.dst],
                        metadata={"edge": edge, "alias": alias, "source": source},
                    )
                )
        return matches

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        alias = match.metadata["alias"]
        source = match.metadata["source"]
        edge = match.metadata["edge"]
        # The alias must be assigned only on this edge, and the source symbol
        # must never be reassigned (otherwise the alias would capture an older
        # value and the promotion would not be meaning-preserving).
        for e in sdfg.edges():
            if e is not edge and alias in e.data.assignments:
                return False
            if source in e.data.assignments:
                return False
        # The alias must not collide with a data container.
        return alias not in sdfg.arrays and source not in sdfg.arrays

    def apply(self, sdfg: SDFG, match: Match) -> None:
        alias = match.metadata["alias"]
        source = match.metadata["source"]
        edge = match.metadata["edge"]
        # Rewrite every use of the alias downstream of the edge.
        targets = states_reachable_from(sdfg, edge.dst) | {edge.dst}
        for state in targets:
            if not self.inject_bug:
                _substitute_symbol_in_state(state, alias, source)
            # BUG: dataflow uses (map ranges, memlet subsets) are skipped.
            for e in sdfg.out_edges(state):
                _substitute_symbol_in_edge(e.data, alias, source)
        del edge.data.assignments[alias]

    def modified_states(self, sdfg: SDFG, match: Match) -> List[SDFGState]:
        edge = match.metadata["edge"]
        out = [edge.src, edge.dst]
        out.extend(s for s in states_reachable_from(sdfg, edge.dst) if s not in out)
        return out
