"""Transformations that restructure map scopes (parallel loop nests).

* :class:`MapTiling` -- the loop-tiling optimization of Fig. 2/3, with the
  paper's two injected bugs (off-by-one tile bound, missing bounds clamp).
* :class:`Vectorization` -- the loop vectorization of Sec. 6.1 whose
  correctness depends on input sizes being divisible by the vector width.
* :class:`MapExpansion` -- expands multi-dimensional maps into nested
  single-dimensional maps; the buggy variant generates invalid code.
* :class:`BufferTiling` -- tiles producer/consumer loop pairs around a shared
  transient buffer; the buggy variant drops the remainder tile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sdfg.dtypes import ScheduleType
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, Map, MapEntry, MapExit, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.expressions import Expr, Min, Symbol, sympify
from repro.symbolic.ranges import Range
from repro.symbolic.simplify import simplify
from repro.transforms.base import (
    Match,
    PatternTransformation,
    TransformationError,
    register_transformation,
)

__all__ = ["MapTiling", "Vectorization", "MapExpansion", "BufferTiling", "tile_map"]


# ---------------------------------------------------------------------- #
# Shared tiling machinery
# ---------------------------------------------------------------------- #
def tile_map(
    state: SDFGState,
    entry: MapEntry,
    tile_size: int,
    clamp: bool = True,
    off_by_one: bool = False,
    truncate: bool = False,
    dims: Optional[List[int]] = None,
) -> Tuple[MapEntry, MapExit]:
    """Tile the given map in place; returns the new outer (tile) entry/exit.

    For each tiled parameter ``p`` with range ``b:e`` a new outer parameter
    ``tile_p`` iterates ``b:e:tile_size`` and the inner range becomes
    ``tile_p : Min(tile_p + tile_size - 1, e)``.

    * ``clamp=False`` omits the ``Min`` clamp -- out-of-bounds accesses when
      the extent is not a multiple of ``tile_size`` (the generalization bug of
      Sec. 2.1).
    * ``off_by_one=True`` uses ``Min(tile_p + tile_size, e)`` -- the inclusive
      ``<=`` bound of Fig. 2, overlapping adjacent tiles by one element.
    * ``truncate=True`` shortens the *outer* range so the remainder tile is
      never executed (the BufferTiling bug).
    """
    exit_ = state.exit_node(entry)
    m = entry.map
    dims = list(range(len(m.params))) if dims is None else dims

    outer_params: List[str] = []
    outer_ranges: List[Range] = []
    for d in dims:
        p = m.params[d]
        rng = m.ranges[d]
        tile_param = f"tile_{p}"
        outer_params.append(tile_param)
        outer_end: Expr = rng.end
        if truncate:
            # Only iterate over full tiles; the remainder is (incorrectly)
            # dropped.
            extent = simplify(rng.end - rng.begin + 1)
            full = simplify((extent // tile_size) * tile_size)
            outer_end = simplify(rng.begin + full - 1)
        outer_ranges.append(Range(rng.begin, outer_end, tile_size))
        # Inner range re-expressed in terms of the tile parameter.
        tp = Symbol(tile_param)
        if off_by_one:
            inner_end: Expr = Min.make(tp + tile_size, rng.end)
        elif clamp:
            inner_end = Min.make(tp + tile_size - 1, rng.end)
        else:
            inner_end = simplify(tp + tile_size - 1)
        m.ranges[d] = Range(tp, inner_end, 1)

    outer_map = Map(f"{m.label}_tiles", outer_params, outer_ranges, m.schedule)
    outer_entry = MapEntry(outer_map)
    outer_exit = MapExit(outer_map)
    state.add_node(outer_entry)
    state.add_node(outer_exit)

    # Reroute incoming edges of the original entry through the tile entry.
    for e in list(state.in_edges(entry)):
        data = e.data.data if e.data is not None and not e.data.is_empty else None
        in_conn = f"IN_{data}" if data else None
        out_conn = f"OUT_{data}" if data else None
        state.remove_edge(e)
        state.add_edge(e.src, e.src_conn, outer_entry, in_conn, e.data)
        state.add_edge(outer_entry, out_conn, entry, e.dst_conn, e.data.clone() if e.data else Memlet.empty())
    if not state.in_edges(entry):
        state.add_nedge(outer_entry, entry, Memlet.empty())

    # Reroute outgoing edges of the original exit through the tile exit.
    for e in list(state.out_edges(exit_)):
        data = e.data.data if e.data is not None and not e.data.is_empty else None
        in_conn = f"IN_{data}" if data else None
        out_conn = f"OUT_{data}" if data else None
        state.remove_edge(e)
        state.add_edge(exit_, e.src_conn, outer_exit, in_conn, e.data.clone() if e.data else Memlet.empty())
        state.add_edge(outer_exit, out_conn, e.dst, e.dst_conn, e.data)
    if not state.out_edges(exit_):
        state.add_nedge(exit_, outer_exit, Memlet.empty())

    return outer_entry, outer_exit


def _top_level_map_entries(state: SDFGState) -> List[MapEntry]:
    sdict = state.scope_dict()
    return [
        n for n in state.nodes() if isinstance(n, MapEntry) and sdict.get(n) is None
    ]


# ---------------------------------------------------------------------- #
@register_transformation
class MapTiling(PatternTransformation):
    """Tile a map scope to improve memory reuse (Fig. 2/3).

    ``bug_kind`` selects which of the paper's two bugs to inject when
    ``inject_bug`` is set: ``"off_by_one"`` (the ``<=`` bound of Fig. 2) or
    ``"no_clamp"`` (out-of-bounds for sizes not divisible by the tile size).
    """

    name = "MapTiling"
    description = "Tiles a parallel loop nest with a configurable tile size"

    def __init__(
        self,
        tile_size: int = 32,
        inject_bug: bool = False,
        bug_kind: str = "off_by_one",
    ) -> None:
        super().__init__(inject_bug=inject_bug)
        self.tile_size = int(tile_size)
        if bug_kind not in ("off_by_one", "no_clamp"):
            raise ValueError(f"Unknown bug kind {bug_kind!r}")
        self.bug_kind = bug_kind

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        for state in sdfg.states():
            for entry in _top_level_map_entries(state):
                matches.append(Match(self, state=state, nodes={"map_entry": entry}))
        return matches

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        entry: MapEntry = match.nodes["map_entry"]
        # Only tile maps with unit-step ranges.
        return all(str(r.step) == "1" for r in entry.map.ranges)

    def apply(self, sdfg: SDFG, match: Match) -> None:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        tile_map(
            state,
            entry,
            self.tile_size,
            clamp=not (self.inject_bug and self.bug_kind == "no_clamp"),
            off_by_one=self.inject_bug and self.bug_kind == "off_by_one",
        )

    def modified_nodes(self, sdfg: SDFG, match: Match) -> List[Tuple[SDFGState, Node]]:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        return [(state, n) for n in state.scope_subgraph_nodes(entry)]


# ---------------------------------------------------------------------- #
@register_transformation
class Vectorization(PatternTransformation):
    """Vectorize the innermost dimension of an element-wise map (Sec. 6.1).

    The correct variant clamps the per-iteration block to the loop bound; the
    paper-faithful buggy variant assumes the extent is divisible by the
    vector width, so its correctness depends on the input size (the Table 2
    entry marked "input dependent").
    """

    name = "Vectorization"
    description = "Vectorizes loops by the chosen vector width (default 4)"

    def __init__(self, vector_size: int = 4, inject_bug: bool = False) -> None:
        super().__init__(inject_bug=inject_bug)
        self.vector_size = int(vector_size)

    # .................................................................. #
    def _vector_param(self, entry: MapEntry) -> str:
        return entry.map.params[-1]

    def _inner_code_nodes(self, state: SDFGState, entry: MapEntry) -> List[Node]:
        return [
            n
            for n in state.scope_subgraph_nodes(entry, include_boundary=False)
            if isinstance(n, Tasklet)
        ]

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        for state in sdfg.states():
            sdict = state.scope_dict()
            for entry in [n for n in state.nodes() if isinstance(n, MapEntry)]:
                # Only innermost maps (no nested maps inside).
                inner = state.scope_subgraph_nodes(entry, include_boundary=False)
                if any(isinstance(n, MapEntry) for n in inner):
                    continue
                matches.append(Match(self, state=state, nodes={"map_entry": entry}))
        return matches

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        param = self._vector_param(entry)
        rng = entry.map.ranges[-1]
        if str(rng.step) != "1":
            return False
        tasklets = self._inner_code_nodes(state, entry)
        if not tasklets:
            return False
        # Tasklets calling scalar-only library functions (``math.*``) cannot
        # operate on vector blocks; such maps are not vectorizable.
        if any("math." in t.code for t in tasklets):
            return False
        psym = Symbol(param)

        def uses_param_as_point(memlet: Memlet) -> bool:
            uses = [
                d
                for d, r in enumerate(memlet.subset.ranges)
                if param in r.begin.free_symbols or param in r.end.free_symbols
            ]
            if len(uses) != 1:
                return False
            r = memlet.subset.ranges[uses[0]]
            return r.is_point() and r.begin == psym

        # Inputs that use the vectorized parameter must use it as a plain
        # point index; inputs that do not use it are broadcast (allowed).
        # Outputs must all be indexed by the parameter and carry no
        # write-conflict resolution (reductions cannot be widened this way).
        for t in tasklets:
            for e in state.in_edges(t):
                memlet: Memlet = e.data
                if memlet is None or memlet.is_empty:
                    continue
                if param in memlet.free_symbols and not uses_param_as_point(memlet):
                    return False
            for e in state.out_edges(t):
                memlet = e.data
                if memlet is None or memlet.is_empty:
                    continue
                if memlet.wcr is not None:
                    return False
                if param not in memlet.free_symbols or not uses_param_as_point(memlet):
                    return False
        return True

    def apply(self, sdfg: SDFG, match: Match) -> None:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        exit_ = state.exit_node(entry)
        param = self._vector_param(entry)
        psym = Symbol(param)
        vs = self.vector_size
        rng = entry.map.ranges[-1]
        # Stride the map by the vector width.
        entry.map.ranges[-1] = Range(rng.begin, rng.end, vs)
        entry.map.schedule = ScheduleType.Vectorized
        # Widen every point access on the vectorized dimension to a block.
        for t in self._inner_code_nodes(state, entry):
            for e in state.in_edges(t) + state.out_edges(t):
                memlet: Memlet = e.data
                if memlet is None or memlet.is_empty or param not in memlet.free_symbols:
                    continue
                new_ranges = []
                for r in memlet.subset.ranges:
                    if r.is_point() and r.begin == psym:
                        if self.inject_bug:
                            end: Expr = simplify(psym + (vs - 1))
                        else:
                            end = Min.make(psym + (vs - 1), rng.end)
                        new_ranges.append(Range(psym, end, 1))
                    else:
                        new_ranges.append(r)
                from repro.symbolic.ranges import Subset

                memlet.subset = Subset(new_ranges)

    def modified_nodes(self, sdfg: SDFG, match: Match) -> List[Tuple[SDFGState, Node]]:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        return [(state, n) for n in state.scope_subgraph_nodes(entry)]


# ---------------------------------------------------------------------- #
@register_transformation
class MapExpansion(PatternTransformation):
    """Expand a multi-dimensional map into nested one-dimensional maps.

    The buggy variant omits the connector declarations on the newly inserted
    inner map entries/exits, producing a structurally invalid program -- the
    Table 2 failure class "generates invalid code".
    """

    name = "MapExpansion"
    description = "Removes collapsing from parallel nested loops"

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        for state in sdfg.states():
            for entry in [n for n in state.nodes() if isinstance(n, MapEntry)]:
                if len(entry.map.params) >= 2:
                    matches.append(Match(self, state=state, nodes={"map_entry": entry}))
        return matches

    def apply(self, sdfg: SDFG, match: Match) -> None:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        exit_ = state.exit_node(entry)
        m = entry.map
        inner_params = list(zip(m.params[1:], m.ranges[1:]))
        # The original map keeps only its first dimension.
        m.params = m.params[:1]
        m.ranges = m.ranges[:1]

        new_entries: List[MapEntry] = []
        new_exits: List[MapExit] = []
        for p, r in inner_params:
            im = Map(f"{m.label}_{p}", [p], [r], m.schedule)
            new_entries.append(MapEntry(im))
            new_exits.append(MapExit(im))
        for n in new_entries + new_exits:
            state.add_node(n)

        # Chain the body-side edges of the original entry through the new
        # entries: entry -> e1 -> e2 -> ... -> body.
        for e in list(state.out_edges(entry)):
            state.remove_edge(e)
            chain = [entry] + new_entries
            data = e.data.data if e.data is not None and not e.data.is_empty else None
            for i in range(len(chain) - 1):
                src, dst = chain[i], chain[i + 1]
                sconn = e.src_conn if i == 0 else (f"OUT_{data}" if data else None)
                dconn = f"IN_{data}" if data else None
                payload = e.data.clone() if e.data else Memlet.empty()
                if self.inject_bug:
                    # BUG: forget to declare the connectors on the new scopes.
                    state.graph.add_edge(src, dst, payload, sconn, dconn)
                else:
                    state.add_edge(src, sconn, dst, dconn, payload)
            last_conn = f"OUT_{data}" if data else None
            if self.inject_bug:
                state.graph.add_edge(new_entries[-1], e.dst, e.data, last_conn, e.dst_conn)
            else:
                state.add_edge(new_entries[-1], last_conn, e.dst, e.dst_conn, e.data)

        # Chain the body-side edges of the original exit through the new exits
        # (innermost exit first): body -> eN -> ... -> e1 -> exit.
        rev_exits = list(reversed(new_exits))
        for e in list(state.in_edges(exit_)):
            state.remove_edge(e)
            data = e.data.data if e.data is not None and not e.data.is_empty else None
            first_conn = f"IN_{data}" if data else None
            if self.inject_bug:
                state.graph.add_edge(e.src, rev_exits[0], e.data, e.src_conn, first_conn)
            else:
                state.add_edge(e.src, e.src_conn, rev_exits[0], first_conn, e.data)
            chain = rev_exits + [exit_]
            for i in range(len(chain) - 1):
                src, dst = chain[i], chain[i + 1]
                sconn = f"OUT_{data}" if data else None
                dconn = e.dst_conn if dst is exit_ else (f"IN_{data}" if data else None)
                payload = e.data.clone() if e.data else Memlet.empty()
                if self.inject_bug:
                    state.graph.add_edge(src, dst, payload, sconn, dconn)
                else:
                    state.add_edge(src, sconn, dst, dconn, payload)

    def modified_nodes(self, sdfg: SDFG, match: Match) -> List[Tuple[SDFGState, Node]]:
        state = match.state
        entry: MapEntry = match.nodes["map_entry"]
        return [(state, n) for n in state.scope_subgraph_nodes(entry)]


# ---------------------------------------------------------------------- #
@register_transformation
class BufferTiling(PatternTransformation):
    """Tile a producer/consumer map pair that communicates through a buffer.

    The faithful variant tiles both maps with clamped tile bounds (a pure
    re-ordering).  The buggy variant truncates the tiled ranges to full tiles
    only, silently dropping the remainder -- a change in program semantics
    (the Table 2 entry for BufferTiling, marked ✗).
    """

    name = "BufferTiling"
    description = "Tiles buffers between loops"

    def __init__(self, tile_size: int = 8, inject_bug: bool = False) -> None:
        super().__init__(inject_bug=inject_bug)
        self.tile_size = int(tile_size)

    def find_matches(self, sdfg: SDFG) -> List[Match]:
        matches = []
        for state in sdfg.states():
            sdict = state.scope_dict()
            for buf in state.data_nodes():
                desc = sdfg.arrays.get(buf.data)
                if desc is None or not desc.transient:
                    continue
                if sdict.get(buf) is not None:
                    continue
                writers = [
                    e.src for e in state.in_edges(buf) if isinstance(e.src, MapExit)
                ]
                readers = [
                    e.dst for e in state.out_edges(buf) if isinstance(e.dst, MapEntry)
                ]
                if len(writers) == 1 and len(readers) == 1:
                    first_entry = state.entry_node_for_exit(writers[0])
                    matches.append(
                        Match(
                            self,
                            state=state,
                            nodes={
                                "first_map_entry": first_entry,
                                "buffer": buf,
                                "second_map_entry": readers[0],
                            },
                        )
                    )
        return matches

    def can_be_applied(self, sdfg: SDFG, match: Match) -> bool:
        first: MapEntry = match.nodes["first_map_entry"]
        second: MapEntry = match.nodes["second_map_entry"]
        return all(str(r.step) == "1" for r in first.map.ranges) and all(
            str(r.step) == "1" for r in second.map.ranges
        )

    def apply(self, sdfg: SDFG, match: Match) -> None:
        state = match.state
        first: MapEntry = match.nodes["first_map_entry"]
        second: MapEntry = match.nodes["second_map_entry"]
        for entry in (first, second):
            tile_map(
                state,
                entry,
                self.tile_size,
                clamp=True,
                truncate=self.inject_bug,
            )

    def modified_nodes(self, sdfg: SDFG, match: Match) -> List[Tuple[SDFGState, Node]]:
        state = match.state
        out = []
        for key in ("first_map_entry", "second_map_entry"):
            entry: MapEntry = match.nodes[key]
            out.extend((state, n) for n in state.scope_subgraph_nodes(entry))
        out.append((state, match.nodes["buffer"]))
        return out
