"""The reference backend: the node-by-node SDFG interpreter.

This is a thin adapter putting :class:`~repro.interpreter.executor.SDFGExecutor`
behind the :class:`~repro.backends.base.ExecutionBackend` seam.  ``prepare``
constructs the executor once per program; the executor's internal caches
(topological orders, scope dictionaries, compiled subset/tasklet code) then
persist across ``run`` calls, so repeated fuzzing trials on the same cutout
stop re-deriving them.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.backends.base import CompiledProgram, ExecutionBackend
from repro.interpreter.executor import ExecutionResult, SDFGExecutor
from repro.sdfg.sdfg import SDFG

__all__ = ["InterpreterBackend", "InterpreterProgram"]


class InterpreterProgram(CompiledProgram):
    """A program bound to a reusable :class:`SDFGExecutor`."""

    def __init__(self, sdfg: SDFG, max_transitions: int = 100_000) -> None:
        super().__init__(sdfg)
        self.executor = SDFGExecutor(sdfg, max_transitions=max_transitions)

    def run(
        self,
        arguments: Optional[Mapping[str, Any]] = None,
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> ExecutionResult:
        return self.executor.run(arguments, symbols, collect_coverage=collect_coverage)


class InterpreterBackend(ExecutionBackend):
    """The reference interpreter, executing map scopes element by element."""

    name = "interpreter"

    def prepare(self, sdfg: SDFG, max_transitions: int = 100_000) -> InterpreterProgram:
        return InterpreterProgram(sdfg, max_transitions=max_transitions)
