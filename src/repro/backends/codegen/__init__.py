"""Pluggable codegen emitters (the *codegen* layer of backend lowering).

Backend lowering is a four-stage pipeline (see :mod:`repro.backends`):

    analyze  ->  plan  ->  codegen  ->  execute

Emitters consume the serializable plan IR (:mod:`repro.backends.plan`) and
bind it to a concrete program: compiling expressions, composing fused-chain
code objects, generating whole-program drivers.  They are registered here
by name so backends select a lowering strategy without forking the runtime:

* ``numpy-eager`` -- eager NumPy scope kernels (vectorized + compiled
  backends);
* ``python-driver`` -- whole-program Python control-flow driver (compiled
  backend's interstate tier);
* ``batched`` -- NumPy scope kernels over a leading trial-batch axis, plus
  the static batchability predicates (batched backend);
* ``native-c`` -- the batched emitter plus C source generation: fused
  chains and fixed-trip affine loop nests lower to explicit C loop nests
  (native backend; compilation and loading happen in
  :mod:`repro.backends.native`, never here).

Layering rule (enforced by ``make lint-arch``): emitters never import from
:mod:`repro.backends.execute`, and no codegen module touches ``ctypes`` or
shared objects -- the native emitter produces *source text only*.  The
execute layer imports emitters, binds plans through them, and runs the
result.
"""

from __future__ import annotations

from typing import Callable, Dict, List

__all__ = [
    "register_emitter",
    "get_emitter",
    "list_emitters",
]

_EMITTERS: Dict[str, Callable[[], object]] = {}


def register_emitter(name: str, factory: Callable[[], object]) -> None:
    """Register an emitter factory under ``name`` (last wins)."""
    _EMITTERS[name] = factory


def get_emitter(name: str) -> Callable[[], object]:
    """The factory registered under ``name``.

    Raises :class:`ValueError` with the known names on a miss.
    """
    try:
        return _EMITTERS[name]
    except KeyError:
        known = ", ".join(sorted(_EMITTERS)) or "(none)"
        raise ValueError(
            f"Unknown emitter {name!r}. Known emitters: {known}"
        ) from None


def list_emitters() -> List[str]:
    """Registered emitter names, sorted."""
    return sorted(_EMITTERS)


# Built-in emitters. Imported at the bottom so the registry exists first.
from repro.backends.codegen.batched import BatchedEmitter  # noqa: E402
from repro.backends.codegen.native_c import NativeCEmitter  # noqa: E402
from repro.backends.codegen.numpy_eager import NumpyEagerEmitter  # noqa: E402
from repro.backends.codegen.python_driver import (  # noqa: E402
    PythonDriverEmitter,
)

register_emitter(NumpyEagerEmitter.name, NumpyEagerEmitter)
register_emitter(PythonDriverEmitter.name, PythonDriverEmitter)
register_emitter(BatchedEmitter.name, BatchedEmitter)
register_emitter(NativeCEmitter.name, NativeCEmitter)
