"""The ``native-c`` emitter: plans -> C kernels for scopes and fused chains.

Binds plans exactly like the ``batched`` emitter (the bound structures and
batchability predicates are inherited unchanged), and additionally lowers
eligible scopes and fused chains to C source: one function per kernel, an
explicit loop nest over the iteration grid, scalarized chain handoffs, and
WCR tails accumulated in iteration order.  The execute layer
(:mod:`repro.backends.native`) compiles the assembled translation unit and
calls the kernels through zero-copy buffer pointers; every scope this
module rejects -- and any compile or load failure -- falls back to the
Python path per scope, bitwise identically.

Bitwise parity is the design constraint, not an aspiration:

* arithmetic is double-only (all touched containers must be ``float64``;
  integer map parameters and symbols are exact in a double up to ``2**53``,
  which the runtime verifies before packing geometry);
* ``math.*`` calls compile to the very libm calls CPython's ``math`` module
  makes, wrapped in guards reproducing CPython's error taxonomy (domain /
  range / NaN-to-integer); a firing guard aborts the kernel with
  ``1 + guard_index`` and the runtime raises the exact exception the
  interpreter would have raised;
* ``np.maximum`` / ``np.minimum`` (and the ``max`` / ``min`` WCR tails)
  use NumPy's exact NaN- and signed-zero propagation rule
  (``a > b || a != a ? a : b`` -- ties, including ``+0`` vs ``-0``, keep
  the *second* operand), not C ``fmax``;
* non-WCR writes must cover every map axis (bijective stores): reduced
  plain writes keep NumPy's first-slab semantics, which a C loop would not
  reproduce, so they are rejected;
* chain stores are all emitted at the *end* of the loop body in member
  order, mirroring the Python path's deferred writes; any chain that
  gathers a container it also writes (beyond the bijective identical-subset
  case) or writes one container from two members is rejected.

Every rejection carries a ``native-*`` reason string, surfaced through the
executor's build diagnostics.  Emitters never import from
:mod:`repro.backends.execute`, and this module never loads shared objects
(both enforced by ``make lint-arch``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.backends.codegen.batched import BatchedEmitter
from repro.backends.codegen.numpy_eager import (
    BoundChain,
    BoundOutput,
    BoundScope,
)
from repro.sdfg.sdfg import SDFG

__all__ = [
    "NativeCEmitter",
    "NativeGuard",
    "NativeKernel",
    "C_PREAMBLE",
]

#: Shared helpers for every generated translation unit.  ``__r_max`` /
#: ``__r_min`` reproduce NumPy's maximum/minimum exactly: NaN in ``a``
#: propagates, and ties -- including ``+0`` vs ``-0`` -- keep the *second*
#: operand (strict comparison, matching NumPy's C loop; ``fmax`` would
#: drop NaNs and ``a >= b`` would keep the first operand on ties).
C_PREAMBLE = """\
#include <math.h>
#include <stdint.h>

static double __r_max(double a, double b) { return (a > b || a != a) ? a : b; }
static double __r_min(double a, double b) { return (a < b || a != a) ? a : b; }
"""

#: The shared kernel signature (kept in sync with the ctypes bridge).
_SIGNATURE = (
    "int64_t {fn}(double **bufs, const int64_t *counts, const int64_t *geom,\n"
    "             const double *scalars, int64_t nbatch, const int64_t *bstrides)"
)

#: 1-argument libm functions CPython's ``math`` module wraps with the
#: generic ``math_1`` guards; the value is the ``can_overflow`` flag
#: (whether an infinite result from finite input is a range error rather
#: than a domain error).
_MATH_1 = {
    "sqrt": False,
    "log": False,
    "log10": False,
    "log2": False,
    "log1p": False,
    "exp": True,
    "expm1": True,
    "sin": False,
    "cos": False,
    "tan": False,
    "asin": False,
    "acos": False,
    "atan": False,
    "sinh": True,
    "cosh": True,
    "tanh": False,
    "asinh": False,
    "acosh": False,
    "atanh": False,
}

#: 2-argument libm functions behind CPython's generic ``math_2`` guards.
_MATH_2 = ("atan2", "copysign", "fmod")

#: ``math`` functions that convert to an integer (NaN/Inf raise dedicated
#: conversion errors in CPython, *before* libm is consulted).
_MATH_INT = ("floor", "ceil", "trunc")

#: ``np.*`` calls that are exactly one exactly-rounded libm call on
#: doubles and never raise (NumPy is warning-silent on their edge cases).
#: Transcendental NumPy funcs (np.exp, np.log, ...) stay rejected: NumPy's
#: SIMD implementations may differ from libm in the last ulp.
_NP_PLAIN = {
    "abs": "fabs",
    "absolute": "fabs",
    "fabs": "fabs",
    "floor": "floor",
    "ceil": "ceil",
    "trunc": "trunc",
    "copysign": "copysign",
}

_NP_2 = {"maximum": "__r_max", "minimum": "__r_min"}

_WCR_STORE = {"sum": "+=", "prod": "*="}
_WCR_FUNC = {"max": "__r_max", "min": "__r_min"}

#: Largest integer magnitude a double represents exactly.
EXACT_INT_LIMIT = 2**53


@dataclass
class NativeGuard:
    """One runtime-error exit of a kernel (``return 1 + index``)."""

    label: str  #: tasklet label to attribute the error to
    exc: str  #: "ValueError" | "OverflowError"
    message: str


@dataclass
class NativeKernel:
    """One emitted C kernel plus the manifest the runtime binds it with.

    ``accesses`` fixes the order the runtime must walk when packing
    geometry: ``("gather", spec, buf)`` and ``("write", spec, buf)`` own
    one geometry slot each (base element offset + one coefficient per map
    axis); ``("check", spec, None)`` entries are chain-internal outputs
    that are bounds-checked at setup but never touched by the C code.
    """

    kind: str  #: "scope" | "chain"
    fn_name: str
    entry: Any  #: the MapEntry whose map defines the iteration domain
    nparams: int
    buffers: List[str]  #: container name per ``bufs`` slot
    accesses: List[Tuple[str, Any, Optional[int]]]
    extras: List[str]  #: scalar names, in ``scalars`` array order
    guards: List[NativeGuard]
    count_guids: List[int]  #: tasklet guids credited with ``iterations``
    setup_deps: Tuple[str, ...]
    source: str  #: this kernel's C function source
    bound: Any  #: the BoundScope / BoundChain it was emitted from
    #: Cleared permanently on a load-level failure at runtime.
    usable: bool = True
    #: Containers with "check" accesses only (no buffer slot); their
    #: layouts join the runtime's geometry-cache signature.
    check_data: Tuple[str, ...] = ()


class _Reject(Exception):
    """Internal: the construct cannot be lowered natively."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------- #
# Expression translation (Python tasklet AST -> C, with error guards)
# ---------------------------------------------------------------------- #
class _Translator:
    """Translates straight-line tasklet statements into C body lines.

    Emission order follows Python's left-to-right evaluation order, so
    guarded calls fire in the same per-element sequence the interpreter's
    scalar execution would.
    """

    def __init__(self, env: Dict[str, str], cast_names: Set[str]) -> None:
        #: Python name -> C identifier (inputs, params, assigned locals).
        self.env = env
        self.cast_names = cast_names
        self.lines: List[str] = []
        self.extras: List[str] = []
        self._extra_idx: Dict[str, int] = {}
        self.guards: List[NativeGuard] = []
        self.label = ""
        self._tmp = 0

    # .................................................................. #
    def statement(self, stmt: ast.stmt, label: str) -> None:
        if (
            not isinstance(stmt, ast.Assign)
            or len(stmt.targets) != 1
            or not isinstance(stmt.targets[0], ast.Name)
        ):
            raise _Reject("native-unsupported-stmt")
        self.label = label
        value = self.expr(stmt.value)
        var = self._fresh("l")
        self.lines.append(f"const double {var} = {value};")
        self.env[stmt.targets[0].id] = var

    # .................................................................. #
    def expr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return self._name(node.id)
        if isinstance(node, ast.Constant):
            return self._constant(node.value)
        if isinstance(node, ast.BinOp):
            op = {
                ast.Add: "+",
                ast.Sub: "-",
                ast.Mult: "*",
                ast.Div: "/",
            }.get(type(node.op))
            if op is None:
                raise _Reject("native-unsupported-op")
            left = self.expr(node.left)
            right = self.expr(node.right)
            return f"({left} {op} {right})"
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return f"(-{self.expr(node.operand)})"
            if isinstance(node.op, ast.UAdd):
                return f"(+{self.expr(node.operand)})"
            raise _Reject("native-unsupported-op")
        if isinstance(node, ast.Call):
            return self._call(node)
        raise _Reject("native-unsupported-expr")

    def _name(self, name: str) -> str:
        mapped = self.env.get(name)
        if mapped is not None:
            return mapped
        if name in ("math", "np", "numpy"):
            raise _Reject("native-unsupported-expr")
        idx = self._extra_idx.get(name)
        if idx is None:
            idx = len(self.extras)
            self._extra_idx[name] = idx
            self.extras.append(name)
        return f"__x{idx}"

    def _constant(self, value: Any) -> str:
        if isinstance(value, bool):
            return "1.0" if value else "0.0"
        if isinstance(value, int):
            if abs(value) > EXACT_INT_LIMIT:
                raise _Reject("native-unsupported-const")
            return float(value).hex()
        if isinstance(value, float):
            if value != value or value in (float("inf"), float("-inf")):
                raise _Reject("native-unsupported-const")
            return value.hex()
        raise _Reject("native-unsupported-const")

    # .................................................................. #
    def _call(self, node: ast.Call) -> str:
        if node.keywords:
            raise _Reject("native-unsupported-call")
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.cast_names:
                # Chain-handoff dtype cast: identity (all containers are
                # float64 -- verified by the kernel-level dtype walk).
                if len(node.args) != 1:
                    raise _Reject("native-unsupported-call")
                return self.expr(node.args[0])
            if func.id == "abs" and len(node.args) == 1:
                return f"fabs({self.expr(node.args[0])})"
            raise _Reject("native-unsupported-call")
        if not (
            isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
        ):
            raise _Reject("native-unsupported-call")
        mod, name = func.value.id, func.attr
        if mod == "math":
            return self._math_call(name, node.args)
        if mod in ("np", "numpy"):
            return self._np_call(name, node.args)
        raise _Reject("native-unsupported-call")

    def _math_call(self, name: str, args: Sequence[ast.expr]) -> str:
        if name == "fabs" and len(args) == 1:
            return f"fabs({self.expr(args[0])})"
        if name in _MATH_INT and len(args) == 1:
            a = self._temp("a", self.expr(args[0]))
            g_nan = self._guard(
                "ValueError", "cannot convert float NaN to integer"
            )
            self.lines.append(f"if ({a} != {a}) return {g_nan};")
            g_inf = self._guard(
                "OverflowError", "cannot convert float infinity to integer"
            )
            self.lines.append(f"if (isinf({a})) return {g_inf};")
            return f"{name}({a})"
        if name in _MATH_1 and len(args) == 1:
            a = self._temp("a", self.expr(args[0]))
            r = self._temp("r", f"{name}({a})")
            g_dom = self._guard("ValueError", "math domain error")
            self.lines.append(
                f"if ({r} != {r} && {a} == {a}) return {g_dom};"
            )
            if _MATH_1[name]:
                g_inf = self._guard("OverflowError", "math range error")
            else:
                g_inf = self._guard("ValueError", "math domain error")
            self.lines.append(
                f"if (isinf({r}) && !isinf({a}) && {a} == {a}) "
                f"return {g_inf};"
            )
            return r
        if name in _MATH_2 and len(args) == 2:
            a = self._temp("a", self.expr(args[0]))
            b = self._temp("a", self.expr(args[1]))
            r = self._temp("r", f"{name}({a}, {b})")
            g_dom = self._guard("ValueError", "math domain error")
            self.lines.append(
                f"if ({r} != {r} && {a} == {a} && {b} == {b}) "
                f"return {g_dom};"
            )
            g_rng = self._guard("OverflowError", "math range error")
            self.lines.append(
                f"if (isinf({r}) && !isinf({a}) && {a} == {a} && "
                f"!isinf({b}) && {b} == {b}) return {g_rng};"
            )
            return r
        raise _Reject("native-unsupported-call")

    def _np_call(self, name: str, args: Sequence[ast.expr]) -> str:
        if name in _NP_PLAIN and len(args) == 1:
            return f"{_NP_PLAIN[name]}({self.expr(args[0])})"
        if name in _NP_2 and len(args) == 2:
            a = self.expr(args[0])
            b = self.expr(args[1])
            return f"{_NP_2[name]}({a}, {b})"
        raise _Reject("native-unsupported-call")

    # .................................................................. #
    def _fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f"__{prefix}{self._tmp}"

    def _temp(self, prefix: str, expr: str) -> str:
        var = self._fresh(prefix)
        self.lines.append(f"const double {var} = {expr};")
        return var

    def _guard(self, exc: str, message: str) -> int:
        self.guards.append(NativeGuard(self.label, exc, message))
        return len(self.guards)  # return code = 1 + guard index


# ---------------------------------------------------------------------- #
# Kernel emission
# ---------------------------------------------------------------------- #
class NativeCEmitter(BatchedEmitter):
    """Binds plans like the batched emitter and lowers scopes/chains to C.

    Registered as ``"native-c"`` in :mod:`repro.backends.codegen`.
    """

    name = "native-c"

    # .................................................................. #
    def scope_kernel(
        self, sdfg: SDFG, bound: BoundScope, fn_name: str
    ) -> Tuple[Optional[NativeKernel], Optional[str]]:
        """Lower one vectorized scope, or ``(None, reason)``."""
        try:
            return self._emit_scope(sdfg, bound, fn_name), None
        except _Reject as rej:
            return None, rej.reason
        except Exception:  # noqa: BLE001 - never fail preparation
            return None, "native-emit-error"

    def chain_kernel(
        self, sdfg: SDFG, chain: BoundChain, fn_name: str
    ) -> Tuple[Optional[NativeKernel], Optional[str]]:
        """Lower one fused chain, or ``(None, reason)``."""
        try:
            return self._emit_chain(sdfg, chain, fn_name), None
        except _Reject as rej:
            return None, rej.reason
        except Exception:  # noqa: BLE001 - never fail preparation
            return None, "native-emit-error"

    @staticmethod
    def assemble_source(kernels: Sequence[NativeKernel]) -> str:
        """The complete translation unit (deterministic for one plan)."""
        return C_PREAMBLE + "\n" + "\n".join(k.source for k in kernels)

    # .................................................................. #
    def _emit_scope(
        self, sdfg: SDFG, bound: BoundScope, fn_name: str
    ) -> NativeKernel:
        nparams = len(bound.entry.map.params)
        self._check_containers(
            sdfg,
            [spec.data for spec in bound.inputs]
            + [spec.data for spec in bound.outputs],
        )
        self._check_writes(
            [spec for spec in bound.outputs], nparams
        )
        self._check_hazards(
            gathers=[(spec.data, spec.subset_str) for spec in bound.inputs],
            writes=[
                (spec.data, spec.subset_str, spec.wcr)
                for spec in bound.outputs
            ],
        )

        env: Dict[str, str] = {}
        accesses: List[Tuple[str, Any, Optional[int]]] = []
        buffers: List[str] = []
        buf_of: Dict[str, int] = {}
        loads: List[Tuple[str, int]] = []  # (C name, geom-access position)
        ngeom = 0
        for j, spec in enumerate(bound.inputs):
            bi = self._buffer(spec.data, buffers, buf_of)
            accesses.append(("gather", spec, bi))
            env[spec.conn] = f"__in{j}"
            loads.append((f"__in{j}", ngeom))
            ngeom += 1

        tr = _Translator(env, cast_names=set())
        for param_axis, param in enumerate(bound.entry.map.params):
            env[param] = f"__pv{param_axis}"
        tree = ast.parse(bound.plan.code if bound.plan else "")
        if not tree.body:
            raise _Reject("native-unsupported-stmt")
        for stmt in tree.body:
            tr.statement(stmt, bound.tasklet.label)

        stores: List[Tuple[BoundOutput, int, str]] = []
        for spec in bound.outputs:
            value = env.get(spec.conn)
            if value is None:
                raise _Reject("native-unassigned-output")
            bi = self._buffer(spec.data, buffers, buf_of)
            accesses.append(("write", spec, bi))
            stores.append((spec, ngeom, value))
            ngeom += 1

        source = self._render(
            fn_name, nparams, buffers, accesses, loads, tr, stores
        )
        return NativeKernel(
            kind="scope",
            fn_name=fn_name,
            entry=bound.entry,
            nparams=nparams,
            buffers=buffers,
            accesses=accesses,
            extras=tr.extras,
            guards=tr.guards,
            count_guids=[bound.tasklet.guid],
            setup_deps=tuple(bound.setup_deps),
            source=source,
            bound=bound,
        )

    def _emit_chain(
        self, sdfg: SDFG, chain: BoundChain, fn_name: str
    ) -> NativeKernel:
        nparams = len(chain.entry.map.params)
        datas: List[str] = []
        gathers: List[Tuple[str, str]] = []
        writes: List[Tuple[str, str, Optional[str]]] = []
        for member in chain.members:
            for spec, _name in member.gathers:
                datas.append(spec.data)
                gathers.append((spec.data, spec.subset_str))
            for kind, spec, _name in member.outputs:
                datas.append(spec.data)
                if kind == "write":
                    writes.append((spec.data, spec.subset_str, spec.wcr))
        self._check_containers(sdfg, datas)
        self._check_writes(
            [
                spec
                for member in chain.members
                for kind, spec, _name in member.outputs
                if kind == "write"
            ],
            nparams,
        )
        if len({d for d, _s, _w in writes}) != len(writes):
            raise _Reject("native-chain-multi-writer")
        self._check_hazards(gathers=gathers, writes=writes)

        env: Dict[str, str] = {}
        accesses: List[Tuple[str, Any, Optional[int]]] = []
        buffers: List[str] = []
        buf_of: Dict[str, int] = {}
        loads: List[Tuple[str, int]] = []
        store_plan: List[Tuple[BoundOutput, int, str]] = []  # name resolved later
        ngeom = 0
        nin = 0
        deferred: List[Tuple[BoundOutput, int, str]] = []
        for member in chain.members:
            for spec, name in member.gathers:
                bi = self._buffer(spec.data, buffers, buf_of)
                accesses.append(("gather", spec, bi))
                env[name] = f"__in{nin}"
                loads.append((f"__in{nin}", ngeom))
                nin += 1
                ngeom += 1
            for kind, spec, out_name in member.outputs:
                if kind == "write":
                    bi = self._buffer(spec.data, buffers, buf_of)
                    accesses.append(("write", spec, bi))
                    deferred.append((spec, ngeom, out_name))
                    ngeom += 1
                else:
                    accesses.append(("check", spec, None))

        cast_names = set(chain.cast_bindings)
        tr = _Translator(env, cast_names=cast_names)
        for param_axis, param in enumerate(chain.entry.map.params):
            env[param] = f"__pv{param_axis}"
        tree = ast.parse(chain.source)
        if not tree.body:
            raise _Reject("native-unsupported-stmt")
        for stmt in tree.body:
            tr.statement(stmt, self._label_at(chain, stmt.lineno))

        for spec, geom_pos, out_name in deferred:
            value = env.get(out_name)
            if value is None:
                raise _Reject("native-unassigned-output")
            store_plan.append((spec, geom_pos, value))

        source = self._render(
            fn_name, nparams, buffers, accesses, loads, tr, store_plan
        )
        return NativeKernel(
            kind="chain",
            fn_name=fn_name,
            entry=chain.entry,
            nparams=nparams,
            buffers=buffers,
            accesses=accesses,
            extras=tr.extras,
            guards=tr.guards,
            count_guids=[m.plan.tasklet.guid for m in chain.members],
            setup_deps=tuple(chain.setup_deps),
            source=source,
            bound=chain,
        )

    # .................................................................. #
    # Legality checks (each raises _Reject with a native-* reason)
    # .................................................................. #
    @staticmethod
    def _check_containers(sdfg: SDFG, datas: Sequence[str]) -> None:
        for data in datas:
            desc = sdfg.arrays.get(data)
            if desc is None:
                raise _Reject("native-unknown-container")
            if np.dtype(desc.dtype.as_numpy()) != np.float64:
                raise _Reject("native-non-float64")

    @staticmethod
    def _check_writes(specs: Sequence[BoundOutput], nparams: int) -> None:
        """Non-WCR writes must be bijective (every map axis indexed): a C
        loop's last-store-wins would not reproduce NumPy's first-slab
        semantics for reduced plain writes.  WCR must be a known tail."""
        for spec in specs:
            axes = {
                payload[0]
                for kind, payload in spec.dims
                if kind == "param"
            }
            if spec.wcr is None:
                if axes != set(range(nparams)):
                    raise _Reject("native-reduced-write")
            elif spec.wcr not in _WCR_STORE and spec.wcr not in _WCR_FUNC:
                raise _Reject("native-unsupported-wcr")

    @staticmethod
    def _check_hazards(
        gathers: Sequence[Tuple[str, str]],
        writes: Sequence[Tuple[str, str, Optional[str]]],
    ) -> None:
        """A container both gathered and written interleaves in C (stores
        land before later iterations' loads), which only matches the Python
        path's pre-scope gather snapshot when every store targets the very
        element the same iteration loaded: identical subsets, non-WCR (and
        bijectivity, enforced by :meth:`_check_writes`)."""
        written: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        for data, subset, wcr in writes:
            written.setdefault(data, []).append((subset, wcr))
        for data, subset in gathers:
            for wsubset, wcr in written.get(data, ()):
                if wcr is not None or wsubset != subset:
                    raise _Reject("native-rw-hazard")

    @staticmethod
    def _buffer(data: str, buffers: List[str], buf_of: Dict[str, int]) -> int:
        bi = buf_of.get(data)
        if bi is None:
            bi = len(buffers)
            buf_of[data] = bi
            buffers.append(data)
        return bi

    @staticmethod
    def _label_at(chain: BoundChain, lineno: int) -> str:
        label = chain.line_labels[0][1]
        for start, candidate in chain.line_labels:
            if start <= lineno:
                label = candidate
        return label

    # .................................................................. #
    # C rendering
    # .................................................................. #
    @staticmethod
    def _offset_expr(pos: int, nparams: int) -> str:
        terms = [f"__o{pos}"]
        terms += [f"__s{pos}_{a} * __i{a}" for a in range(nparams)]
        return " + ".join(terms)

    def _render(
        self,
        fn_name: str,
        nparams: int,
        buffers: List[str],
        accesses: List[Tuple[str, Any, Optional[int]]],
        loads: List[Tuple[str, int]],
        tr: _Translator,
        stores: List[Tuple[BoundOutput, int, str]],
    ) -> str:
        out: List[str] = [_SIGNATURE.format(fn=fn_name), "{"]
        out.append("    (void)counts; (void)geom; (void)scalars; "
                   "(void)bstrides;")
        # Hoist every geometry slot into a named local once per call: the
        # compiler then strength-reduces the per-iteration address math.
        for a in range(nparams):
            out.append(f"    const int64_t __pb{a} = geom[{2 * a}];")
            out.append(f"    const int64_t __ps{a} = geom[{2 * a + 1}];")
        pos = 0
        for kind, _spec, _bi in accesses:
            if kind == "check":
                continue
            slot = 2 * nparams + pos * (1 + nparams)
            out.append(f"    const int64_t __o{pos} = geom[{slot}];")
            for a in range(nparams):
                out.append(
                    f"    const int64_t __s{pos}_{a} = geom[{slot + 1 + a}];"
                )
            pos += 1
        for a in range(nparams):
            out.append(f"    const int64_t __c{a} = counts[{a}];")
        for i in range(len(tr.extras)):
            out.append(f"    const double __x{i} = scalars[{i}];")
        out.append("    for (int64_t __bt = 0; __bt < nbatch; ++__bt) {")
        for bi in range(len(buffers)):
            out.append(
                f"        double *__b{bi} = bufs[{bi}] + __bt * bstrides[{bi}];"
            )
        indent = "        "
        for a in range(nparams):
            out.append(
                f"{indent}for (int64_t __i{a} = 0; __i{a} < __c{a}; "
                f"++__i{a}) {{"
            )
            indent += "    "
        for a in range(nparams):
            out.append(
                f"{indent}const double __pv{a} = "
                f"(double)(__pb{a} + __ps{a} * __i{a});"
            )
        geom_buf: Dict[int, int] = {}
        pos = 0
        for kind, _spec, bi in accesses:
            if kind == "check":
                continue
            geom_buf[pos] = bi
            pos += 1
        for name, gpos in loads:
            off = self._offset_expr(gpos, nparams)
            out.append(
                f"{indent}const double {name} = __b{geom_buf[gpos]}[{off}];"
            )
        for line in tr.lines:
            out.append(f"{indent}{line}")
        for spec, gpos, value in stores:
            off = self._offset_expr(gpos, nparams)
            target = f"__b{geom_buf[gpos]}"
            if spec.wcr is None:
                out.append(f"{indent}{target}[{off}] = {value};")
            elif spec.wcr in _WCR_STORE:
                out.append(
                    f"{indent}{target}[{off}] {_WCR_STORE[spec.wcr]} {value};"
                )
            else:
                func = _WCR_FUNC[spec.wcr]
                out.append(
                    f"{indent}{{ const int64_t __w{gpos} = {off}; "
                    f"{target}[__w{gpos}] = "
                    f"{func}({target}[__w{gpos}], {value}); }}"
                )
        for a in range(nparams):
            indent = indent[:-4]
            out.append(f"{indent}}}")
        out.append("    }")
        out.append("    return 0;")
        out.append("}")
        return "\n".join(out) + "\n"
