"""The ``python-driver`` emitter: whole-program Python control-flow codegen.

Third stage of the lowering pipeline (analyze -> plan -> codegen ->
execute), covering *interstate* control flow where the ``numpy-eager``
emitter covers per-state dataflow.  The state machine is lowered to one
generated Python function:

* natural loops (the guard pattern) become native ``while`` loops,
  if-diamonds become ``if`` chains, linear chains stay flat
  (:func:`repro.sdfg.analysis.structured_control_flow`);
* interstate edge conditions and symbol assignments become inline Python
  expressions (:func:`repro.symbolic.codegen.emit_interstate_expression`)
  reading program symbols from one shared dict and scalar containers from
  the data store -- no per-transition namespace rebuild, no ``eval``;
* symbol loads invariant across a structured loop are hoisted into locals
  computed once before the loop;
* irreducible interstate graphs fall back to a generated
  ``while``-over-current-state dispatch loop.

The generated driver calls back into runtime services (``__rt._hang`` and
friends) supplied by the execute layer, but this module never imports it --
the driver receives the runtime as a parameter.  Layer direction is
enforced by ``make lint-arch``.
"""

from __future__ import annotations

import base64
import marshal
import sys
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.interpreter.executor import _EVAL_GLOBALS
from repro.interpreter.executor import SDFGExecutor as _SDFGExecutor
from repro.sdfg.analysis import (
    CFBlock,
    CFBranch,
    CFExec,
    CFLoop,
    structured_control_flow,
)
from repro.sdfg.data import Scalar
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.codegen import (
    ExpressionCodegenError,
    emit_interstate_expression,
)

__all__ = [
    "CODEGEN_VERSION",
    "PythonDriverEmitter",
    "compile_driver",
]

#: Version stamp of the driver code generator.  Bump on ANY change to the
#: emitted driver source, the driver globals, or the runtime services the
#: driver calls: on-disk artifacts carry it, and a mismatch invalidates the
#: cached entry (it is recompiled and overwritten).
#: 6: lowering split into analyze/plan/codegen/execute; artifacts carry the
#: serialized program plan next to the driver.
#: 7: artifact stamps carry a ``toolchain`` field (``None`` for pure-Python
#: artifacts; a compiler fingerprint for the native backend's variant).
CODEGEN_VERSION = 7

#: Globals of the generated driver.  User expressions see exactly the
#: interpreter's ``_EVAL_GLOBALS`` vocabulary; the dunder-prefixed aliases
#: are infrastructure used by *emitted* statements only, so they cannot
#: widen what a program's own conditions can resolve.
_DRIVER_GLOBALS: Dict[str, Any] = dict(_EVAL_GLOBALS)
_DRIVER_GLOBALS.update(
    {
        "__bool": bool,
        "__isinstance": isinstance,
        "__float": float,
        "__int": int,
        "__Exception": Exception,
    }
)


def _artifact_stamp() -> Dict[str, Any]:
    """Identity fields every persisted driver artifact must carry.

    The ``backend`` field stays ``"compiled"``: every backend built on this
    emitter (compiled, batched) shares one artifact per content hash.  The
    ``toolchain`` field is ``None`` for pure-Python artifacts; the native
    backend overrides it with its compiler fingerprint (and a stale or
    missing toolchain makes the entry a miss, so it is rewritten).
    """
    return {
        "format": 1,
        "codegen_version": CODEGEN_VERSION,
        # marshal'd code objects are only valid for the same Python build.
        "python": sys.implementation.cache_tag,
        "backend": "compiled",
        "toolchain": None,
    }


# ---------------------------------------------------------------------- #
# Driver code generation
# ---------------------------------------------------------------------- #
class _DriverEmitter:
    """Emits the Python source of one whole-program driver function."""

    def __init__(
        self,
        sdfg: SDFG,
        state_index: Dict[SDFGState, int],
        scalar_names: Set[str],
    ) -> None:
        self.sdfg = sdfg
        self.state_index = state_index
        self.scalar_names = scalar_names
        self.lines: List[str] = []
        self.indent = 0
        # Names safe to hoist out of loops: always present after setup
        # (free symbols and constants), not shadowed by scalar containers,
        # not part of the builtin vocabulary (whose emission is conditional).
        from repro.symbolic.codegen import INTERSTATE_GLOBAL_NAMES

        self.hoist_safe: Set[str] = (
            (set(sdfg.free_symbols) | set(sdfg.constants))
            - scalar_names
            - set(INTERSTATE_GLOBAL_NAMES)
        )
        #: Active loop-invariant bindings: symbol name -> driver local.
        self.hoisted: Dict[str, str] = {}
        #: Every symbol ever hoisted (reported in the program plan).
        self.all_hoisted: Set[str] = set()
        self._hoist_counter = 0

    # .................................................................. #
    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    # .................................................................. #
    def emit_driver(self, body: Callable[[], None]) -> None:
        self.line("def __drive(__rt):")
        self.indent += 1
        self.line("__sym = __rt._symbols")
        self.line("__store = __rt._store")
        self.line("__cov = __rt._coverage")
        self.line("__max = __rt.max_transitions")
        self.line("__allops = __rt._state_ops")
        for index in range(len(self.state_index)):
            self.line(f"__ops{index} = __allops[{index}]")
        self.line("__t = 0")
        self.line("__prev = '__start__'")
        body()
        self.line("return __t")
        self.indent -= 1

    def emit_exec(self, state: SDFGState) -> None:
        """One state execution, mirroring the interpreter's per-state steps:
        hang check, transition coverage, dataflow, transition count.  The
        dataflow is the state's prepared op list, iterated inline."""
        self.line("if __t > __max:")
        self.line("    __rt._hang()")
        self.line("if __cov is not None:")
        self.line(f"    __cov.record_transition(__prev, {state.label!r})")
        index = self.state_index[state]
        self.line(f"for __f in __ops{index}:")
        self.line("    __f(__sym)")
        self.line(f"__prev = {state.label!r}")
        self.line("__t += 1")

    # .................................................................. #
    def emit_condition(self, edge) -> None:
        """Sets ``__c`` to the edge condition's truth value (or raises the
        interpreter's :class:`ExecutionError` wrapper)."""
        cond = edge.data.condition
        if cond.strip() in ("True", "1"):
            # The interpreter evaluates these to True; skip the try block.
            self.line("__c = True")
            return
        try:
            src = emit_interstate_expression(
                cond, self.scalar_names, hoisted_names=self.hoisted
            )
            expr = f"__bool({src})"
        except ExpressionCodegenError:
            # Unparseable condition: defer to the interpreter's dynamic
            # evaluation so the failure mode (and message) is identical.
            expr = f"__bool(__rt._eval_raw({cond!r}))"
        self.line("try:")
        self.line(f"    __c = {expr}")
        self.line("except __Exception as __exc:")
        self.line(f"    __rt._cond_fail({cond!r}, __exc)")

    def emit_record_condition(self, state: SDFGState, edge) -> None:
        location = f"{state.label}->{edge.dst.label}"
        self.line("if __cov is not None:")
        self.line(f"    __cov.record_condition({location!r}, __c)")

    def emit_assignments(self, edge) -> None:
        for sym, expr in edge.data.assignments.items():
            try:
                src = emit_interstate_expression(
                    expr, self.scalar_names, hoisted_names=self.hoisted
                )
            except ExpressionCodegenError:
                src = f"__rt._eval_raw({expr!r})"
            self.line("try:")
            self.line(f"    __v = {src}")
            self.line("except __Exception as __exc:")
            self.line(f"    __rt._assign_fail({sym!r}, {expr!r}, __exc)")
            # Interpreter parity: integral floats become Python ints.
            self.line("if __isinstance(__v, __float) and __v.is_integer():")
            self.line("    __v = __int(__v)")
            self.line(f"__sym[{sym!r}] = __v")

    # .................................................................. #
    # Loop-invariant hoisting
    # .................................................................. #
    def _loop_invariants(self, item: CFLoop) -> List[str]:
        """Names read by the loop's interstate expressions that no edge
        inside the loop assigns.

        Symbols are only ever written by interstate assignments (dataflow
        writes containers, never symbols), so a name absent from every
        loop-body assignment holds one value for the whole loop.  Restricted
        further to :attr:`hoist_safe` names, whose presence in the symbol
        namespace is guaranteed, hoisting can neither change a lookup
        failure's timing nor its type.
        """
        edges: List[Any] = []

        def collect_block(block: CFBlock) -> None:
            for it in block.items:
                if isinstance(it, CFLoop):
                    collect_branch(it.branch)
                elif isinstance(it, CFBranch):
                    collect_branch(it)

        def collect_branch(branch: CFBranch) -> None:
            for arm in branch.arms:
                edges.append(arm.edge)
                if arm.block is not None:
                    collect_block(arm.block)

        collect_branch(item.branch)
        assigned: Set[str] = set()
        used: Set[str] = set()
        for edge in edges:
            assigned |= set(edge.data.assignments)
            # Unparseable expressions contribute regex-scraped names here,
            # which is harmless: they evaluate through _eval_raw (reading
            # the live symbol dict), and hoisted names are by construction
            # never reassigned inside the loop.
            used |= edge.data.free_symbols
        return sorted(
            (used & self.hoist_safe) - assigned - set(self.hoisted)
        )

    def _emit_loop_hoists(self, item: CFLoop) -> List[str]:
        names = self._loop_invariants(item)
        for name in names:
            local = f"__inv{self._hoist_counter}"
            self._hoist_counter += 1
            self.line(f"{local} = __sym[{name!r}]")
            self.hoisted[name] = local
            self.all_hoisted.add(name)
        return names

    # .................................................................. #
    # Structured emission
    # .................................................................. #
    def emit_block(self, block: CFBlock, halt: str = "return __t") -> None:
        for item in block.items:
            if isinstance(item, CFExec):
                self.emit_exec(item.state)
            elif isinstance(item, CFLoop):
                hoisted_here = self._emit_loop_hoists(item)
                self.line("while True:")
                self.indent += 1
                self.emit_exec(item.loop.guard)
                self._emit_arms(item.branch.state, item.branch.arms, 0, halt)
                self.indent -= 1
                for name in hoisted_here:
                    del self.hoisted[name]
            elif isinstance(item, CFBranch):
                arm = item.arms[0] if item.arms else None
                if (
                    len(item.arms) == 1
                    and arm.terminal == "fallthrough"
                ):
                    # Linear-chain edge: stay flat instead of nesting.
                    self.emit_condition(arm.edge)
                    self.emit_record_condition(item.state, arm.edge)
                    if arm.edge.data.condition.strip() not in ("True", "1"):
                        self.line("if not __c:")
                        self.line(f"    {halt}")
                    self.emit_assignments(arm.edge)
                else:
                    self._emit_arms(item.state, item.arms, 0, halt)
            else:  # pragma: no cover - exhaustive over CF node kinds
                raise ExpressionCodegenError(f"Unknown CF item {item!r}")
        # Defensive terminator: blocks ending in a terminal state (no
        # out-edges) fall through to here; after an exhaustive branch this
        # line is simply unreachable.
        self.line(halt)

    def _emit_arms(self, state: SDFGState, arms, i: int, halt: str) -> None:
        """Evaluate out-edges in order; the first true condition wins, no
        true condition terminates the program -- the interpreter's
        ``_next_state`` contract."""
        if i == len(arms):
            self.line(halt)
            return
        arm = arms[i]
        self.emit_condition(arm.edge)
        self.emit_record_condition(state, arm.edge)
        self.line("if __c:")
        self.indent += 1
        self.emit_assignments(arm.edge)
        if arm.terminal in ("continue", "break"):
            self.line(arm.terminal)
        elif arm.block is not None:
            self.emit_block(arm.block, halt)
        else:  # pragma: no cover - structurer emits no other terminals here
            self.line(halt)
        self.indent -= 1
        if i + 1 < len(arms):
            self.line("else:")
            self.indent += 1
            self._emit_arms(state, arms, i + 1, halt)
            self.indent -= 1
        else:
            self.line("else:")
            self.line(f"    {halt}")

    # .................................................................. #
    # Dispatch emission (irreducible graphs)
    # .................................................................. #
    def emit_dispatch(self) -> None:
        start = self.state_index[self.sdfg.start_state]
        self.line(f"__s = {start}")
        self.line("while __s >= 0:")
        self.indent += 1
        keyword = "if"
        for state, idx in self.state_index.items():
            self.line(f"{keyword} __s == {idx}:")
            keyword = "elif"
            self.indent += 1
            self.emit_exec(state)
            self._emit_dispatch_arms(state, self.sdfg.out_edges(state), 0)
            self.indent -= 1
        self.indent -= 1

    def _emit_dispatch_arms(self, state: SDFGState, edges, i: int) -> None:
        if i == len(edges):
            self.line("__s = -1")
            return
        edge = edges[i]
        self.emit_condition(edge)
        self.emit_record_condition(state, edge)
        self.line("if __c:")
        self.indent += 1
        self.emit_assignments(edge)
        self.line(f"__s = {self.state_index[edge.dst]}")
        self.indent -= 1
        self.line("else:")
        self.indent += 1
        self._emit_dispatch_arms(state, edges, i + 1)
        self.indent -= 1


def _interpreted_drive(rt) -> int:
    """Fallback control loop: the interpreter's transition machinery verbatim
    (dataflow still runs through the vectorized scope kernels)."""
    return _SDFGExecutor._run_control_loop(rt)


def _load_driver_artifact(
    sdfg: SDFG, artifact: Dict[str, Any]
) -> Optional[Tuple[str, Optional[str], Optional[Callable], Optional[Any]]]:
    """Reconstruct a driver from a persisted artifact, or ``None``."""
    mode = artifact.get("mode")
    if mode == "interpreted":
        return "interpreted", None, _interpreted_drive, None
    if mode not in ("structured", "dispatch"):
        return None
    source = artifact.get("source")
    code = None
    blob = artifact.get("code")
    if blob:
        try:
            code = marshal.loads(base64.b64decode(blob))
        except Exception:  # noqa: BLE001 - any corruption degrades to source
            code = None
    if code is None and source:
        try:
            code = compile(source, f"<compiled-sdfg:{sdfg.name}>", "exec")
        except SyntaxError:
            code = None
    if code is None:
        return None
    try:
        namespace: Dict[str, Any] = {}
        exec(code, dict(_DRIVER_GLOBALS), namespace)  # noqa: S102
        return mode, source, namespace["__drive"], code
    except Exception:  # noqa: BLE001 - unusable artifact: recompile fresh
        return None


def compile_driver(
    sdfg: SDFG,
    state_index: Dict[SDFGState, int],
    artifact: Optional[Dict[str, Any]] = None,
    info: Optional[Dict[str, Any]] = None,
) -> Tuple[str, Optional[str], Optional[Callable], Optional[Any]]:
    """Generate the whole-program driver for ``sdfg``.

    Returns ``(mode, source, fn, code)`` where mode is ``"structured"``,
    ``"dispatch"``, ``"interpreted"`` (dynamic-transition safety net) or
    ``"empty"`` (stateless program; running it raises like the interpreter).
    ``code`` is the compiled module code object backing ``fn`` (marshalable
    for the on-disk artifact cache).  With a valid ``artifact`` (a previously
    persisted driver for the *same* content hash), structuring and emission
    are skipped entirely.  ``info``, when given, receives emission metadata
    (currently ``"hoisted"``: the loop-invariant symbols hoisted into driver
    locals) on a fresh structured/dispatch emission.
    """
    if not sdfg.states():
        return "empty", None, None, None

    if artifact is not None:
        loaded = _load_driver_artifact(sdfg, artifact)
        if loaded is not None:
            return loaded

    scalar_names = {
        name for name, desc in sdfg.arrays.items() if isinstance(desc, Scalar)
    }
    assigned: Set[str] = set()
    for e in sdfg.edges():
        assigned |= set(e.data.assignments)
    if assigned & scalar_names:
        # An interstate assignment shadowing a scalar container cannot be
        # routed statically (the interpreter's namespace lets the assigned
        # value win within a transition, the scalar win on the next one).
        return "interpreted", None, _interpreted_drive, None

    try:
        tree = structured_control_flow(sdfg)
        emitter = _DriverEmitter(sdfg, state_index, scalar_names)
        if tree is not None:
            mode = "structured"
            emitter.emit_driver(lambda: emitter.emit_block(tree))
        else:
            mode = "dispatch"
            emitter.emit_driver(emitter.emit_dispatch)
        source = emitter.source()
        namespace: Dict[str, Any] = {}
        code = compile(source, f"<compiled-sdfg:{sdfg.name}>", "exec")
        exec(code, dict(_DRIVER_GLOBALS), namespace)  # noqa: S102
        if info is not None:
            info["hoisted"] = sorted(emitter.all_hoisted)
        return mode, source, namespace["__drive"], code
    except Exception:  # noqa: BLE001 - never fail prepare; degrade instead
        return "interpreted", None, _interpreted_drive, None


class PythonDriverEmitter:
    """Registry face of the driver generator (``"python-driver"``)."""

    name = "python-driver"

    @staticmethod
    def compile_driver(
        sdfg: SDFG,
        state_index: Dict[SDFGState, int],
        artifact: Optional[Dict[str, Any]] = None,
        info: Optional[Dict[str, Any]] = None,
    ) -> Tuple[str, Optional[str], Optional[Callable], Optional[Any]]:
        return compile_driver(sdfg, state_index, artifact=artifact, info=info)
