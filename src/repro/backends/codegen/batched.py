"""The ``batched`` emitter: trial-batched NumPy scope kernels.

Binds plans exactly like :class:`~repro.backends.codegen.numpy_eager.\
NumpyEagerEmitter` (the bound structures are identical -- the batched
runtime reinterprets them with a leading batch axis), and adds the *static*
batchability predicates the execute layer consults:

* a scope or chain is batchable when it performs no WCR accumulation
  (WCR applies slabs sequentially in iteration order; with a batch axis the
  per-trial regions would interleave) -- order-dependent scopes run
  per-trial instead;
* a program's control flow is batchable when the driver is structured or
  dispatched (one generated control path) and no interstate expression
  reads a scalar container: scalars live in the (batched) store, so a
  condition reading one could steer trial ``k`` by trial ``0``'s value.
  Such programs run entirely per-trial.

Per-trial fallback and the batch-axis runtime live in the execute layer;
this module only classifies.  Layer direction (codegen never imports
execute) is enforced by ``make lint-arch``.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.codegen.numpy_eager import (
    BoundChain,
    BoundScope,
    NumpyEagerEmitter,
)
from repro.sdfg.data import Scalar
from repro.sdfg.sdfg import SDFG

__all__ = ["BatchedEmitter"]


class BatchedEmitter(NumpyEagerEmitter):
    """Binds plans for batched execution (``"batched"`` in the registry)."""

    name = "batched"

    # .................................................................. #
    # Static batchability predicates
    # .................................................................. #
    @staticmethod
    def scope_is_batchable(plan: Optional[BoundScope]) -> bool:
        """A vectorized scope batches unless it accumulates via WCR."""
        return plan is not None and all(
            spec.wcr is None for spec in plan.outputs
        )

    @staticmethod
    def chain_is_batchable(chain: BoundChain) -> bool:
        """A fused chain batches unless any member accumulates via WCR."""
        return all(
            spec.wcr is None
            for member in chain.members
            for _kind, spec, _name in member.outputs
        )

    @staticmethod
    def control_is_static(sdfg: SDFG, control_mode: str) -> bool:
        """Whether one generated control path serves every trial.

        Requires a generated driver (``structured``/``dispatch``) and that
        no interstate expression reads a scalar container -- scalar values
        live in the batched store, and conditions must not steer all trials
        by trial 0's data.
        """
        if control_mode not in ("structured", "dispatch"):
            return False
        scalar_names = {
            name
            for name, desc in sdfg.arrays.items()
            if isinstance(desc, Scalar)
        }
        if not scalar_names:
            return True
        for edge in sdfg.edges():
            if edge.data.free_symbols & scalar_names:
                return False
        return True
