"""The ``numpy-eager`` emitter: plans -> bound NumPy scope kernels.

Third stage of the lowering pipeline (analyze -> plan -> codegen ->
execute).  An emitter consumes the serializable plan IR
(:mod:`repro.backends.plan`) and *binds* it to one concrete program: guids
resolve to nodes, index-expression strings compile to code objects, member
tasklets of a fused chain compose into one straight-line code object with
member-unique locals.  The result -- :class:`StateTable` of
:class:`BoundScope` / :class:`BoundChain` -- is everything the execute
layer consumes; nothing here runs any program code.

This emitter feeds the vectorized and compiled backends (eager NumPy
array evaluation, one kernel per scope or fused chain).  Emitters must not
import from :mod:`repro.backends.execute` -- the layer direction is
enforced by ``make lint-arch``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.backends.plan import ChainPlan, ScopePlan, StatePlan
from repro.interpreter.tasklet_exec import compile_expression
from repro.sdfg.nodes import MapEntry, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState

__all__ = [
    "BoundInput",
    "BoundOutput",
    "BoundScope",
    "BoundMember",
    "BoundChain",
    "StateTable",
    "NumpyEagerEmitter",
]


@dataclass
class BoundInput:
    """An :class:`~repro.backends.plan.InputPlan` with compiled indices."""

    conn: str
    data: str
    #: One compiled index expression per dimension (point subsets only).
    idx_code: List[Any]
    subset_str: str


@dataclass
class BoundOutput:
    """An :class:`~repro.backends.plan.OutputPlan` with compiled constants.

    ``dims`` entries are ``("param", (axis, offset))`` or ``("const",
    code)`` where ``code`` is the compiled index expression.
    """

    conn: str
    data: str
    dims: List[Tuple[str, Any]]
    wcr: Optional[str]
    subset_str: str


@dataclass
class BoundScope:
    """A vectorized execution recipe for one map scope."""

    entry: MapEntry
    tasklet: Tasklet
    code_obj: Any
    inputs: List[BoundInput]
    outputs: List[BoundOutput]
    #: Names (beyond the map parameters) whose values the scope's *setup* --
    #: iteration grids, gather indices, write geometry, bounds checks --
    #: depends on.  Within one run, executions whose values for these names
    #: are unchanged (e.g. every iteration of an enclosing interstate loop)
    #: reuse the cached setup: the loop-invariant part of the scope is
    #: hoisted out of the loop.
    setup_deps: Tuple[str, ...] = ()
    #: The plan this scope was bound from (diagnostics / re-serialization).
    plan: Optional[ScopePlan] = None
    #: Cleared permanently if vectorized execution fails at runtime
    #: (e.g. an index expression that does not evaluate on index grids).
    usable: bool = True


@dataclass
class BoundMember:
    """One scope's role inside a fused chain."""

    plan: BoundScope
    #: Store reads this member performs: (input spec, composed-code name the
    #: gathered value is bound under).  Values an earlier member produced
    #: need no runtime binding at all -- the composed code reads them as
    #: plain locals.
    gathers: List[Tuple[BoundInput, str]]
    #: (kind, spec, composed-code name of the produced value).  ``"write"``
    #: materializes via the usual deferred write; ``"internal"`` only
    #: bounds-checks (the container is private to the chain and never
    #: observed).
    outputs: List[Tuple[str, BoundOutput, str]]


@dataclass
class BoundChain:
    """A fused execution recipe for a chain of elementwise map scopes.

    The member tasklets are composed into **one** code object: every member
    local is renamed to a member-unique name, consumer input connectors are
    bound directly to the (dtype-cast) producer values, and the whole chain
    executes as a single straight-line NumPy expression sequence -- no
    per-member namespaces, no intermediate materialization.
    """

    entry: MapEntry  # the head scope: grids/domain are built from its map
    members: List[BoundMember]
    member_entries: List[MapEntry]
    member_guids: Tuple[int, ...]
    #: The composed chain program (and its source, for debuggability).
    code_obj: Any
    source: str
    code_filename: str
    #: Cast callables the composed code calls at producer/consumer handoffs
    #: (``name -> callable``); injected into the execution namespace.
    cast_bindings: Dict[str, Callable]
    #: (first source line, tasklet label) per member, for attributing a
    #: composed-execution exception to the member that raised it.
    line_labels: List[Tuple[int, str]]
    setup_deps: Tuple[str, ...]
    #: The chain plan this was bound from.
    chain_plan: Optional[ChainPlan] = None
    usable: bool = True

    def label_for(self, exc: BaseException) -> str:
        """The tasklet label owning the composed-code line that raised."""
        lineno = None
        tb = exc.__traceback__
        while tb is not None:
            if tb.tb_frame.f_code.co_filename == self.code_filename:
                lineno = tb.tb_lineno
            tb = tb.tb_next
        label = self.line_labels[0][1]
        if lineno is not None:
            for start, candidate in self.line_labels:
                if start <= lineno:
                    label = candidate
        return label


@dataclass
class StateTable:
    """Per-state lowering decisions, bound to the program's nodes."""

    #: Bound scope (or ``None`` for analyzer-rejected scopes) per map-entry
    #: guid, covering top-level *and* nested map entries.
    plans: Dict[int, Optional[BoundScope]]
    #: Fused chains by head-entry guid.
    heads: Dict[int, BoundChain]
    #: Non-head member guids (statically skippable when their chain runs).
    members: Set[int] = field(default_factory=set)
    #: The state plan this table was bound from.
    state_plan: Optional[StatePlan] = None


def _make_cast(np_dtype) -> Callable:
    """A callable reproducing the store round-trip's dtype cast."""
    dt = np.dtype(np_dtype)

    def cast(value, _dt=dt):
        arr = np.asarray(value)
        return arr if arr.dtype == _dt else arr.astype(_dt)

    return cast


class _LoadRenamer(ast.NodeTransformer):
    """Renames name *loads* through a live mapping (member-local scoping)."""

    def __init__(self, mapping: Dict[str, str]) -> None:
        self.mapping = mapping

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if isinstance(node.ctx, ast.Load) and node.id in self.mapping:
            return ast.copy_location(
                ast.Name(id=self.mapping[node.id], ctx=ast.Load()), node
            )
        return node


class NumpyEagerEmitter:
    """Binds state plans to eager NumPy scope kernels.

    Stateless; registered as ``"numpy-eager"`` in
    :mod:`repro.backends.codegen`.
    """

    name = "numpy-eager"

    # .................................................................. #
    def bind_state(
        self, sdfg: SDFG, state: SDFGState, state_plan: StatePlan
    ) -> StateTable:
        """Bind one state's plan against the live program graph.

        Raises on a plan that does not resolve (e.g. a stale artifact whose
        guids or shapes no longer match); callers treat that as "re-analyze
        from scratch".
        """
        nodes_by_guid = {n.guid: n for n in state.nodes()}
        plans: Dict[int, Optional[BoundScope]] = {}
        for guid, scope_plan in state_plan.scopes.items():
            if scope_plan is None:
                # The guid must still name a node; a stale plan fails here.
                _ = nodes_by_guid[guid]
                plans[guid] = None
            else:
                plans[guid] = self.bind_scope(nodes_by_guid, scope_plan)
        heads: Dict[int, BoundChain] = {}
        members: Set[int] = set()
        for chain_plan in state_plan.chains:
            bound = self.bind_chain(sdfg, chain_plan, plans)
            if bound is not None:
                heads[bound.member_guids[0]] = bound
                members.update(bound.member_guids[1:])
        return StateTable(plans, heads, members, state_plan)

    def bind_scope(
        self, nodes_by_guid: Dict[int, Any], plan: ScopePlan
    ) -> BoundScope:
        entry = nodes_by_guid[plan.entry_guid]
        tasklet = nodes_by_guid[plan.tasklet_guid]
        code_obj = compile(plan.code, "<vectorized-tasklet>", "exec")
        inputs = [
            BoundInput(
                ip.conn,
                ip.data,
                [compile_expression(e) for e in ip.index_exprs],
                ip.subset_str,
            )
            for ip in plan.inputs
        ]
        outputs = [
            BoundOutput(
                op.conn,
                op.data,
                [
                    (kind, payload if kind == "param" else compile_expression(payload))
                    for kind, payload in op.dims
                ],
                op.wcr,
                op.subset_str,
            )
            for op in plan.outputs
        ]
        return BoundScope(
            entry, tasklet, code_obj, inputs, outputs, plan.setup_deps, plan
        )

    # .................................................................. #
    def bind_chain(
        self,
        sdfg: SDFG,
        chain_plan: ChainPlan,
        plans: Dict[int, Optional[BoundScope]],
    ) -> Optional[BoundChain]:
        """Compose a chain's member tasklets into one straight-line kernel.

        Every member local is renamed to a member-unique name, consumer
        connectors are bound directly to the (dtype-cast) producer values,
        and one code object is emitted for the whole chain.  Any
        composition failure drops the chain (members execute per-scope).
        """
        try:
            bound_members = [plans[g] for g in chain_plan.member_guids]
            if any(b is None for b in bound_members):
                return None
            internal = set(chain_plan.internal)
            # Handoff keys consumed by later members, recomputed from the
            # routes: only consumed values need the dtype-cast binding.
            consumed: Set[Tuple[str, str]] = set()
            for bs, routes in zip(bound_members, chain_plan.routes):
                for spec, route in zip(bs.inputs, routes):
                    if route == "chain":
                        consumed.add((spec.data, spec.subset_str))

            lines: List[str] = []
            line_labels: List[Tuple[int, str]] = []
            cast_bindings: Dict[str, Callable] = {}
            chain_var: Dict[Tuple[str, str], str] = {}
            members: List[BoundMember] = []
            cast_counter = 0
            for k, (bs, routes) in enumerate(zip(bound_members, chain_plan.routes)):
                mapping: Dict[str, str] = {}
                gathers: List[Tuple[BoundInput, str]] = []
                for spec, route in zip(bs.inputs, routes):
                    if route == "gather":
                        name = f"__g{k}_{spec.conn}"
                        mapping[spec.conn] = name
                        gathers.append((spec, name))
                    else:
                        mapping[spec.conn] = chain_var[(spec.data, spec.subset_str)]
                start = len(lines) + 1
                renamer = _LoadRenamer(mapping)
                tree = ast.parse(bs.plan.code)
                for stmt in tree.body:
                    # Straight-line single-target assignments are guaranteed
                    # by the analyzer; rename the loads first (against the
                    # *pre-assignment* mapping), then bind the target.
                    value = ast.fix_missing_locations(renamer.visit(stmt.value))
                    target = stmt.targets[0].id
                    local = f"__v{k}_{target}"
                    lines.append(f"{local} = {ast.unparse(value)}")
                    mapping[target] = local
                outputs: List[Tuple[str, BoundOutput, str]] = []
                for spec in bs.outputs:
                    out_name = mapping.get(spec.conn, f"__v{k}_{spec.conn}")
                    kind = "internal" if spec.data in internal else "write"
                    outputs.append((kind, spec, out_name))
                    key = (spec.data, spec.subset_str)
                    if key in consumed:
                        # Producer/consumer handoff: the value a later member
                        # reads back, cast to the container dtype exactly as
                        # the interpreter's store write would.
                        cast_name = f"__cast{cast_counter}"
                        var = f"__chain{cast_counter}"
                        cast_counter += 1
                        cast_bindings[cast_name] = _make_cast(
                            sdfg.arrays[spec.data].dtype.as_numpy()
                        )
                        lines.append(f"{var} = {cast_name}({out_name})")
                        chain_var[key] = var
                line_labels.append((start, bs.tasklet.label))
                members.append(BoundMember(bs, gathers, outputs))
            member_entries = [bs.entry for bs in bound_members]
            source = "\n".join(lines) + "\n"
            filename = f"<fused-chain:{member_entries[0].label}>"
            code_obj = compile(source, filename, "exec")
        except Exception:  # noqa: BLE001 - never fail binding; fall back
            return None

        return BoundChain(
            entry=member_entries[0],
            members=members,
            member_entries=member_entries,
            member_guids=chain_plan.member_guids,
            code_obj=code_obj,
            source=source,
            code_filename=filename,
            cast_bindings=cast_bindings,
            line_labels=line_labels,
            setup_deps=chain_plan.setup_deps,
            chain_plan=chain_plan,
        )
