"""Pluggable execution backends.

Execution of dataflow programs is a swappable layer behind the
:class:`~repro.backends.base.ExecutionBackend` seam:

* ``"interpreter"`` -- the reference backend
  (:mod:`repro.backends.interpreter`): node-by-node interpretation with
  element-wise map expansion.  Slow, but the semantic oracle.
* ``"vectorized"`` -- the per-scope compiled backend
  (:mod:`repro.backends.vectorized`): map scopes with affine memlets become
  NumPy array expressions, compiled once per program and cached by SDFG
  content hash; unsupported constructs fall back to the interpreter scope by
  scope.  Interstate control flow still runs the interpreter's transition
  loop.
* ``"compiled"`` -- the whole-program backend
  (:mod:`repro.backends.compiled`): one generated Python function per SDFG
  lowers the state machine to structured control flow (native ``while``
  loops and ``if`` chains, with a state-dispatch loop for irreducible
  graphs) with inline interstate conditions/assignments, and executes each
  state's dataflow through the vectorized scope kernels.
* ``"cross"`` -- the self-checking backend (:mod:`repro.backends.cross`):
  runs two backends in lockstep and raises
  :class:`~repro.backends.cross.BackendDivergenceError` on any bitwise
  difference -- FuzzyFlow's differential method applied to its own execution
  layer.  ``cross`` pairs the interpreter with the vectorized backend;
  ``cross:REF,CAND`` (e.g. ``cross:compiled,interpreter``) pairs any two
  registered backends.

``get_backend(name).prepare(sdfg).run(args, symbols)`` is the whole API; the
differential fuzzer, verifier and sweep pipeline all thread a backend name
through to this registry.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    CompiledProgram,
    ExecutionBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.backends.compiled import (
    CompiledBackend,
    CompiledExecutor,
    CompiledWholeProgram,
)
from repro.backends.cross import BackendDivergenceError, CrossBackend, CrossProgram
from repro.backends.interpreter import InterpreterBackend, InterpreterProgram
from repro.backends.vectorized import (
    VectorizedBackend,
    VectorizedExecutor,
    VectorizedProgram,
    sdfg_content_hash,
)

__all__ = [
    "DEFAULT_BACKEND",
    "CompiledProgram",
    "ExecutionBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "InterpreterBackend",
    "InterpreterProgram",
    "VectorizedBackend",
    "VectorizedExecutor",
    "VectorizedProgram",
    "sdfg_content_hash",
    "CompiledBackend",
    "CompiledExecutor",
    "CompiledWholeProgram",
    "CrossBackend",
    "CrossProgram",
    "BackendDivergenceError",
]

register_backend("interpreter", InterpreterBackend)
register_backend("vectorized", VectorizedBackend)
register_backend("compiled", CompiledBackend)
register_backend("cross", CrossBackend)
