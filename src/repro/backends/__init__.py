"""Pluggable execution backends.

Execution of dataflow programs is a swappable layer behind the
:class:`~repro.backends.base.ExecutionBackend` seam:

* ``"interpreter"`` -- the reference backend
  (:mod:`repro.backends.interpreter`): node-by-node interpretation with
  element-wise map expansion.  Slow, but the semantic oracle.
* ``"vectorized"`` -- the per-scope compiled backend
  (:mod:`repro.backends.vectorized`): map scopes with affine memlets become
  NumPy array expressions, compiled once per program and cached by SDFG
  content hash; unsupported constructs fall back to the interpreter scope by
  scope.  Interstate control flow still runs the interpreter's transition
  loop.
* ``"compiled"`` -- the whole-program backend
  (:mod:`repro.backends.compiled`): one generated Python function per SDFG
  lowers the state machine to structured control flow (native ``while``
  loops and ``if`` chains, with a state-dispatch loop for irreducible
  graphs) with inline interstate conditions/assignments, and executes each
  state's dataflow through the vectorized scope kernels.
* ``"batched"`` -- the trial-batched backend (:mod:`repro.backends.batched`):
  the compiled backend plus batch execution: ``K`` fuzzing trials stack
  along a leading batch axis and every batchable scope executes once per
  batch; WCR/order-dependent scopes run per trial, and any batched failure
  reruns the batch serially so verdicts stay bitwise identical to ``K``
  serial runs.
* ``"native"`` -- the native C tier (:mod:`repro.backends.native`): the
  batched backend plus compiled kernels: fused elementwise chains and
  fixed-trip affine loop nests are emitted as C, built once per program by
  the system toolchain (``cc``/``gcc``/``clang``, overridable via
  ``REPRO_NATIVE_CC``) and invoked through zero-copy buffer pointers.
  Scopes the legality walk rejects -- and machines with no C compiler at
  all -- run the batched backend's Python path bitwise identically.
* ``"cross"`` -- the self-checking backend (:mod:`repro.backends.cross`):
  runs two backends in lockstep and raises
  :class:`~repro.backends.cross.BackendDivergenceError` on any bitwise
  difference -- FuzzyFlow's differential method applied to its own execution
  layer.  ``cross`` pairs the interpreter with the vectorized backend;
  ``cross:REF,CAND`` (e.g. ``cross:compiled,interpreter``) pairs any two
  registered backends.

``get_backend(name).prepare(sdfg).run(args, symbols)`` is the whole API (plus
``run_batch`` for multi-trial execution); the differential fuzzer, verifier
and sweep pipeline all thread a backend name through to this registry.

Internally the compiled backends share a four-stage lowering pipeline --
**analyze** (:mod:`repro.backends.analysis`) -> **plan**
(:mod:`repro.backends.plan`) -> **codegen**
(:mod:`repro.backends.codegen`, a registry of emitters) -> **execute**
(:mod:`repro.backends.execute`) -- see each stage's module docstring.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    CompiledProgram,
    ExecutionBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.backends.batched import (
    BatchedBackend,
    BatchedExecutor,
    BatchedProgram,
)
from repro.backends.compiled import (
    CompiledBackend,
    CompiledExecutor,
    CompiledWholeProgram,
)
from repro.backends.cross import BackendDivergenceError, CrossBackend, CrossProgram
from repro.backends.interpreter import InterpreterBackend, InterpreterProgram
from repro.backends.native import NativeBackend, NativeExecutor, NativeProgram
from repro.backends.vectorized import (
    VectorizedBackend,
    VectorizedExecutor,
    VectorizedProgram,
    sdfg_content_hash,
)

__all__ = [
    "DEFAULT_BACKEND",
    "CompiledProgram",
    "ExecutionBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "InterpreterBackend",
    "InterpreterProgram",
    "VectorizedBackend",
    "VectorizedExecutor",
    "VectorizedProgram",
    "sdfg_content_hash",
    "CompiledBackend",
    "CompiledExecutor",
    "CompiledWholeProgram",
    "BatchedBackend",
    "BatchedExecutor",
    "BatchedProgram",
    "NativeBackend",
    "NativeExecutor",
    "NativeProgram",
    "CrossBackend",
    "CrossProgram",
    "BackendDivergenceError",
]

register_backend("interpreter", InterpreterBackend)
register_backend("vectorized", VectorizedBackend)
register_backend("compiled", CompiledBackend)
register_backend("batched", BatchedBackend)
register_backend("native", NativeBackend)
register_backend("cross", CrossBackend)
