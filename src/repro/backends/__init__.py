"""Pluggable execution backends.

Execution of dataflow programs is a swappable layer behind the
:class:`~repro.backends.base.ExecutionBackend` seam:

* ``"interpreter"`` -- the reference backend
  (:mod:`repro.backends.interpreter`): node-by-node interpretation with
  element-wise map expansion.  Slow, but the semantic oracle.
* ``"vectorized"`` -- the compiled backend (:mod:`repro.backends.vectorized`):
  map scopes with affine memlets become NumPy array expressions, compiled
  once per program and cached by SDFG content hash; unsupported constructs
  fall back to the interpreter scope by scope.
* ``"cross"`` -- the self-checking backend (:mod:`repro.backends.cross`):
  runs both and raises :class:`~repro.backends.cross.BackendDivergenceError`
  on any bitwise difference -- FuzzyFlow's differential method applied to
  its own execution layer.

``get_backend(name).prepare(sdfg).run(args, symbols)`` is the whole API; the
differential fuzzer, verifier and sweep pipeline all thread a backend name
through to this registry.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    CompiledProgram,
    ExecutionBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.backends.cross import BackendDivergenceError, CrossBackend, CrossProgram
from repro.backends.interpreter import InterpreterBackend, InterpreterProgram
from repro.backends.vectorized import (
    VectorizedBackend,
    VectorizedExecutor,
    VectorizedProgram,
    sdfg_content_hash,
)

__all__ = [
    "DEFAULT_BACKEND",
    "CompiledProgram",
    "ExecutionBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "InterpreterBackend",
    "InterpreterProgram",
    "VectorizedBackend",
    "VectorizedExecutor",
    "VectorizedProgram",
    "sdfg_content_hash",
    "CrossBackend",
    "CrossProgram",
    "BackendDivergenceError",
]

register_backend("interpreter", InterpreterBackend)
register_backend("vectorized", VectorizedBackend)
register_backend("cross", CrossBackend)
