"""The self-checking ``cross`` backend: FuzzyFlow applied to ourselves.

Runs every execution through *two* backends -- by default the reference
interpreter and the vectorized backend, but any registered pair can be
named via ``cross:REF,CAND`` (e.g. ``cross:compiled,interpreter``) -- and
compares the complete system states bit for bit.  Any divergence --
different outputs, different final symbols, different transition counts, or
one backend crashing where the other does not -- is a bug in an execution
backend, not a property of the program under test, and is raised as
:class:`BackendDivergenceError`.

``BackendDivergenceError`` deliberately does **not** derive from
:class:`~repro.interpreter.errors.ExecutionError`: the differential fuzzer
treats ``ExecutionError`` as a crash of the program under test, while a
backend divergence must abort the trial loudly and surface as an
infrastructure error in sweep reports.  The error carries the backend pair
and the SDFG content hash and pickles losslessly, so a divergence raised
inside a multiprocessing pool worker still names which backends diverged on
which program once it is reconstructed on the coordinator side.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

import numpy as np

from repro.backends.base import CompiledProgram, ExecutionBackend, get_backend
from repro.interpreter.errors import ExecutionError, HangError
from repro.interpreter.executor import ExecutionResult
from repro.sdfg.sdfg import SDFG

__all__ = ["CrossBackend", "CrossProgram", "BackendDivergenceError"]


class BackendDivergenceError(Exception):
    """The reference and candidate backends disagree on an execution."""

    def __init__(
        self,
        program: str,
        details: List[str],
        reference: str = "interpreter",
        candidate: str = "vectorized",
        sdfg_hash: Optional[str] = None,
    ) -> None:
        self.program = program
        self.details = list(details)
        self.reference = reference
        self.candidate = candidate
        self.sdfg_hash = sdfg_hash
        where = f"'{program}'"
        if sdfg_hash:
            where += f" [sdfg {sdfg_hash[:12]}]"
        super().__init__(
            f"Backend divergence on {where} ({reference} vs. {candidate}): "
            + "; ".join(self.details)
        )

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)`` with the joined
        # message string, which would crash the constructor and lose the
        # backend pair / hash; rebuild from the full context instead.
        return (
            type(self),
            (self.program, self.details, self.reference, self.candidate, self.sdfg_hash),
        )


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    # True byte equality, not value equality: -0.0 vs +0.0 and differing
    # NaN payloads are divergences the self-check must catch.
    return np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()


class CrossProgram(CompiledProgram):
    """Runs the reference and candidate programs in lockstep."""

    def __init__(
        self,
        sdfg: SDFG,
        reference: CompiledProgram,
        candidate: CompiledProgram,
        reference_name: str = "interpreter",
        candidate_name: str = "vectorized",
        sdfg_hash: Optional[str] = None,
    ) -> None:
        super().__init__(sdfg)
        self.reference = reference
        self.candidate = candidate
        self.reference_name = reference_name
        self.candidate_name = candidate_name
        self.sdfg_hash = sdfg_hash
        #: Number of executions that were cross-checked without divergence.
        self.checked_runs = 0

    # .................................................................. #
    def _diverged(self, details: List[str]) -> BackendDivergenceError:
        return BackendDivergenceError(
            self.sdfg.name,
            details,
            reference=self.reference_name,
            candidate=self.candidate_name,
            sdfg_hash=self.sdfg_hash,
        )

    def run(
        self,
        arguments: Optional[Mapping[str, Any]] = None,
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> ExecutionResult:
        ref_result = ref_error = None
        cand_result = cand_error = None
        # Both backends copy their inputs, so the same mappings can be
        # handed to each run without cross-contamination.
        try:
            ref_result = self.reference.run(
                arguments, symbols, collect_coverage=collect_coverage
            )
        except ExecutionError as exc:
            ref_error = exc
        try:
            cand_result = self.candidate.run(
                arguments, symbols, collect_coverage=collect_coverage
            )
        except ExecutionError as exc:
            cand_error = exc
        return self._check_pair(
            ref_result, ref_error, cand_result, cand_error, collect_coverage
        )

    def run_batch(
        self,
        arguments_list: List[Mapping[str, Any]],
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> List[Any]:
        """Cross-check a whole batch, pairing outcomes index by index.

        Both sides run their own :meth:`run_batch` (so e.g. a batched
        candidate keeps its batch-axis execution), then every trial's pair
        is checked exactly like :meth:`run`: agreeing outcomes yield the
        reference result or error, any disagreement raises
        :class:`BackendDivergenceError` for the whole batch.
        """
        ref_outcomes = self.reference.run_batch(
            arguments_list, symbols, collect_coverage=collect_coverage
        )
        cand_outcomes = self.candidate.run_batch(
            arguments_list, symbols, collect_coverage=collect_coverage
        )
        outcomes: List[Any] = []
        for ref_out, cand_out in zip(ref_outcomes, cand_outcomes):
            ref_error = ref_out if isinstance(ref_out, ExecutionError) else None
            ref_result = ref_out if ref_error is None else None
            cand_error = cand_out if isinstance(cand_out, ExecutionError) else None
            cand_result = cand_out if cand_error is None else None
            try:
                outcomes.append(
                    self._check_pair(
                        ref_result, ref_error, cand_result, cand_error,
                        collect_coverage,
                    )
                )
            except ExecutionError as exc:
                outcomes.append(exc)
        return outcomes

    def _check_pair(
        self,
        ref_result: Optional[ExecutionResult],
        ref_error: Optional[ExecutionError],
        cand_result: Optional[ExecutionResult],
        cand_error: Optional[ExecutionError],
        collect_coverage: bool,
    ) -> ExecutionResult:
        """Judge one (reference, candidate) outcome pair.

        Returns the reference result when the pair agrees, re-raises the
        reference error on agreeing failures, raises
        :class:`BackendDivergenceError` otherwise.
        """
        if ref_error is not None or cand_error is not None:
            if ref_error is None or cand_error is None:
                raise self._diverged(
                    [
                        f"{self.reference_name} "
                        + (f"raised {type(ref_error).__name__}" if ref_error else "succeeded")
                        + f", {self.candidate_name} "
                        + (f"raised {type(cand_error).__name__}" if cand_error else "succeeded")
                    ]
                )
            # Differential testing only distinguishes hangs from crashes, and
            # a compiled backend legitimately reports a different crash
            # *class* than the interpreter (e.g. the vectorized scope checks
            # a whole scope's bounds before executing any tasklet, so a
            # MemoryViolation can pre-empt the TaskletExecutionError the
            # interpreter hits first).  Only a hang-vs-crash disagreement is
            # a backend bug.
            if isinstance(ref_error, HangError) is not isinstance(cand_error, HangError):
                raise self._diverged(
                    [
                        f"crash classes differ: {self.reference_name} "
                        f"{type(ref_error).__name__}, {self.candidate_name} "
                        f"{type(cand_error).__name__}"
                    ]
                )
            # Agreeing failures propagate the reference error so differential
            # trial classification is unchanged.
            raise ref_error

        details = self._compare(ref_result, cand_result, collect_coverage)
        if details:
            raise self._diverged(details)
        self.checked_runs += 1
        return ref_result

    # .................................................................. #
    @staticmethod
    def _compare(
        ref: ExecutionResult, cand: ExecutionResult, compare_coverage: bool
    ) -> List[str]:
        details: List[str] = []
        for name in sorted(set(ref.outputs) | set(cand.outputs)):
            a, b = ref.outputs.get(name), cand.outputs.get(name)
            if a is None or b is None:
                details.append(f"container '{name}' missing from one backend")
            elif not _bitwise_equal(np.asarray(a), np.asarray(b)):
                details.append(f"container '{name}' differs bitwise")
        if ref.symbols != cand.symbols:
            details.append("final symbol values differ")
        if ref.transitions != cand.transitions:
            details.append(
                f"transition counts differ ({ref.transitions} vs. {cand.transitions})"
            )
        if compare_coverage and ref.coverage.features() != cand.coverage.features():
            details.append("coverage maps differ")
        return details


class CrossBackend(ExecutionBackend):
    """Runs two backends side by side, comparing every execution.

    The default pairing is the reference interpreter against the vectorized
    backend; :func:`repro.backends.base.get_backend` materializes arbitrary
    pairs from ``cross:REF,CAND`` names.
    """

    name = "cross"

    def __init__(
        self, reference: str = "interpreter", candidate: str = "vectorized"
    ) -> None:
        self.reference_name = reference
        self.candidate_name = candidate

    def prepare(self, sdfg: SDFG, max_transitions: int = 100_000) -> CrossProgram:
        from repro.backends.vectorized import sdfg_content_hash

        return CrossProgram(
            sdfg,
            get_backend(self.reference_name).prepare(sdfg, max_transitions=max_transitions),
            get_backend(self.candidate_name).prepare(sdfg, max_transitions=max_transitions),
            reference_name=self.reference_name,
            candidate_name=self.candidate_name,
            sdfg_hash=sdfg_content_hash(sdfg),
        )
