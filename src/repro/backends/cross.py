"""The self-checking ``cross`` backend: FuzzyFlow applied to ourselves.

Runs every execution through *both* the reference interpreter and the
vectorized backend and compares the complete system states bit for bit.
Any divergence -- different outputs, different final symbols, different
transition counts, or one backend crashing where the other does not -- is a
bug in an execution backend, not a property of the program under test, and
is raised as :class:`BackendDivergenceError`.

``BackendDivergenceError`` deliberately does **not** derive from
:class:`~repro.interpreter.errors.ExecutionError`: the differential fuzzer
treats ``ExecutionError`` as a crash of the program under test, while a
backend divergence must abort the trial loudly and surface as an
infrastructure error in sweep reports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.backends.base import CompiledProgram, ExecutionBackend, get_backend
from repro.interpreter.errors import ExecutionError, HangError
from repro.interpreter.executor import ExecutionResult
from repro.sdfg.sdfg import SDFG

__all__ = ["CrossBackend", "CrossProgram", "BackendDivergenceError"]


class BackendDivergenceError(Exception):
    """The reference and candidate backends disagree on an execution."""

    def __init__(self, program: str, details: List[str]) -> None:
        self.program = program
        self.details = list(details)
        super().__init__(
            f"Backend divergence on '{program}' (interpreter vs. vectorized): "
            + "; ".join(self.details)
        )


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    # True byte equality, not value equality: -0.0 vs +0.0 and differing
    # NaN payloads are divergences the self-check must catch.
    return np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()


class CrossProgram(CompiledProgram):
    """Runs the reference and candidate programs in lockstep."""

    def __init__(
        self,
        sdfg: SDFG,
        reference: CompiledProgram,
        candidate: CompiledProgram,
    ) -> None:
        super().__init__(sdfg)
        self.reference = reference
        self.candidate = candidate
        #: Number of executions that were cross-checked without divergence.
        self.checked_runs = 0

    # .................................................................. #
    def run(
        self,
        arguments: Optional[Mapping[str, Any]] = None,
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> ExecutionResult:
        ref_result = ref_error = None
        cand_result = cand_error = None
        # Both backends copy their inputs, so the same mappings can be
        # handed to each run without cross-contamination.
        try:
            ref_result = self.reference.run(
                arguments, symbols, collect_coverage=collect_coverage
            )
        except ExecutionError as exc:
            ref_error = exc
        try:
            cand_result = self.candidate.run(
                arguments, symbols, collect_coverage=collect_coverage
            )
        except ExecutionError as exc:
            cand_error = exc

        if ref_error is not None or cand_error is not None:
            if ref_error is None or cand_error is None:
                raise BackendDivergenceError(
                    self.sdfg.name,
                    [
                        "interpreter "
                        + (f"raised {type(ref_error).__name__}" if ref_error else "succeeded")
                        + ", vectorized "
                        + (f"raised {type(cand_error).__name__}" if cand_error else "succeeded")
                    ],
                )
            # Differential testing only distinguishes hangs from crashes, and
            # the vectorized backend legitimately reports a different crash
            # *class* than the interpreter (it checks a whole scope's bounds
            # before executing any tasklet, so e.g. a MemoryViolation can
            # pre-empt the TaskletExecutionError the interpreter hits first).
            # Only a hang-vs-crash disagreement is a backend bug.
            if isinstance(ref_error, HangError) is not isinstance(cand_error, HangError):
                raise BackendDivergenceError(
                    self.sdfg.name,
                    [
                        f"crash classes differ: interpreter {type(ref_error).__name__}, "
                        f"vectorized {type(cand_error).__name__}"
                    ],
                )
            # Agreeing failures propagate the reference error so differential
            # trial classification is unchanged.
            raise ref_error

        details = self._compare(ref_result, cand_result, collect_coverage)
        if details:
            raise BackendDivergenceError(self.sdfg.name, details)
        self.checked_runs += 1
        return ref_result

    # .................................................................. #
    @staticmethod
    def _compare(
        ref: ExecutionResult, cand: ExecutionResult, compare_coverage: bool
    ) -> List[str]:
        details: List[str] = []
        for name in sorted(set(ref.outputs) | set(cand.outputs)):
            a, b = ref.outputs.get(name), cand.outputs.get(name)
            if a is None or b is None:
                details.append(f"container '{name}' missing from one backend")
            elif not _bitwise_equal(np.asarray(a), np.asarray(b)):
                details.append(f"container '{name}' differs bitwise")
        if ref.symbols != cand.symbols:
            details.append("final symbol values differ")
        if ref.transitions != cand.transitions:
            details.append(
                f"transition counts differ ({ref.transitions} vs. {cand.transitions})"
            )
        if compare_coverage and ref.coverage.features() != cand.coverage.features():
            details.append("coverage maps differ")
        return details


class CrossBackend(ExecutionBackend):
    """Runs the interpreter and the vectorized backend side by side."""

    name = "cross"

    def __init__(
        self, reference: str = "interpreter", candidate: str = "vectorized"
    ) -> None:
        self.reference_name = reference
        self.candidate_name = candidate

    def prepare(self, sdfg: SDFG, max_transitions: int = 100_000) -> CrossProgram:
        return CrossProgram(
            sdfg,
            get_backend(self.reference_name).prepare(sdfg, max_transitions=max_transitions),
            get_backend(self.candidate_name).prepare(sdfg, max_transitions=max_transitions),
        )
