"""The vectorized scope runtime (the *execute* layer of backend lowering).

Last stage of the pipeline (analyze -> plan -> codegen -> execute): one
runtime that consumes emitter-bound programs.  A vectorizable scope is
executed as a handful of whole-array operations -- gather the inputs with
broadcast index grids, run the tasklet code once on arrays, scatter/reduce
the outputs -- instead of expanding the iteration space one element at a
time (the interpreter's hot loop).  Anything the analyzer rejected falls
back node-by-node to the interpreter for exactly that scope, keeping the
backends semantically interchangeable.

Three layers keep the hot loop tight:

* **scope fusion** -- bound chains (see
  :class:`repro.backends.codegen.numpy_eager.BoundChain`) execute as one
  gather / compute / scatter pass per chain instead of per scope;
* **loop-hoisted setup** -- iteration grids, gather indices and write
  geometry are cached per plan, keyed by the values of exactly the symbols
  they read, so every iteration of an enclosing interstate loop reuses
  them; arithmetic index sequences use basic slicing instead of advanced
  indexing, including *permuted-axis* gathers (a transpose of a basic
  slice where the dimension order and parameter-axis order differ);
* the state tables bind lazily through the configured emitter
  (:attr:`VectorizedExecutor.EMITTER_NAME`), reusing a plan seeded from a
  disk artifact when one resolves and re-analyzing otherwise.

Bitwise fidelity to the interpreter is a design goal (the ``cross`` backend
and the backend-equivalence test suite assert it):

* write-conflict reductions accumulate **sequentially in iteration order**
  (one vector operation per reduction index) rather than with NumPy's
  pairwise ``reduce``, so floating-point results match the interpreter bit
  for bit,
* ``math.*`` calls are routed through a shim that applies the *scalar*
  :mod:`math` function element-wise (libm and NumPy's SIMD transcendentals
  may differ in the last ulp),
* scopes where an iteration could read an element written by a *different*
  iteration of the same scope are not vectorized (analyzer rule).

On an out-of-bounds access the backend raises the same
:class:`~repro.interpreter.errors.MemoryViolation` the interpreter raises;
the only observable difference is that the vectorized backend detects the
violation before mutating any container (the interpreter stops mid-scope).
Since results are only returned for successful runs, differential verdicts
are unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.backends.analysis import analyze_state
from repro.backends.codegen import get_emitter
from repro.backends.codegen.numpy_eager import (
    BoundChain,
    BoundInput,
    BoundOutput,
    BoundScope,
    StateTable,
)
from repro.backends.plan import StatePlan
from repro.interpreter.errors import (
    ExecutionError,
    MemoryViolation,
    TaskletExecutionError,
)
from repro.interpreter.executor import _EVAL_GLOBALS, ExecutionResult, SDFGExecutor
from repro.interpreter.tasklet_exec import _SAFE_BUILTINS
from repro.sdfg.nodes import MapEntry, Tasklet
from repro.sdfg.state import SDFGState
from repro.telemetry import TRACER, inc as _metric_inc

__all__ = ["VectorizedExecutor"]


# ---------------------------------------------------------------------- #
# math shim: scalar-identical element-wise transcendentals
# ---------------------------------------------------------------------- #
class _MathShim:
    """``math`` stand-in whose functions also accept arrays.

    Array inputs are processed element-wise with the *scalar* ``math``
    function, keeping results bitwise identical to the interpreter's
    per-iteration execution (libm vs. NumPy SIMD transcendentals can differ
    in the last ulp)."""

    def __init__(self) -> None:
        self._wrappers: Dict[str, Callable] = {}

    def __getattr__(self, name: str):
        attr = getattr(math, name)
        if not callable(attr):
            return attr
        fn = self._wrappers.get(name)
        if fn is None:

            def fn(*args, _scalar=attr):
                if any(isinstance(a, np.ndarray) and a.ndim > 0 for a in args):
                    ufn = np.frompyfunc(_scalar, len(args), 1)
                    return ufn(*args).astype(np.float64)
                return _scalar(*args)

            self._wrappers[name] = fn
        return fn


_MATH_SHIM = _MathShim()


# ---------------------------------------------------------------------- #
# Setup structures (loop-hoisted per dependent-symbol values)
# ---------------------------------------------------------------------- #
@dataclass
class _WriteGeom:
    """Precomputed geometry of one vectorized container write."""

    spec: BoundOutput
    arr: np.ndarray
    mesh: Tuple
    perm: List[int]
    target_shape: Tuple[int, ...]
    red_axes: List[int]
    kept_shape: Tuple[int, ...]
    #: True when the slab already has the output's dimension order and
    #: shape, so the per-write transpose/reshape can be skipped.
    identity_shape: bool = False


@dataclass
class _ScopeSetup:
    """The symbol-dependent (but value-independent) part of one scope
    execution: iteration grids, bounds-checked gather indices and write
    geometry.  Reused across executions whose ``setup_deps`` values are
    unchanged -- i.e. hoisted out of enclosing interstate loops."""

    shape_full: Tuple[int, ...]
    iterations: int
    grids: Dict[str, np.ndarray]
    #: (connector, fetch) per input.  ``fetch`` reads the *live* container
    #: (captured by reference; store arrays are mutated in place, never
    #: rebound) with gather-copy semantics -- basic-slice views are copied,
    #: advanced indexing copies implicitly.
    gathers: List[Tuple[str, Callable[[], np.ndarray]]]
    geoms: List[_WriteGeom]


@dataclass
class _FusedSetup:
    """Loop-hoistable setup of a fused chain (shared grids, flattened
    gathers and per-member write geometry)."""

    shape_full: Tuple[int, ...]
    iterations: int
    grids: Dict[str, np.ndarray]
    #: (composed-code name, fetch), flattened across all members (values
    #: bound before the single composed exec).
    gathers: List[Tuple[str, Callable[[], np.ndarray]]]
    #: Per member, aligned with its ``outputs``: the write geometry.
    member_geoms: List[List[_WriteGeom]]


class VectorizedExecutor(SDFGExecutor):
    """An :class:`SDFGExecutor` that executes vectorizable map scopes as
    NumPy array expressions and falls back to element-wise interpretation
    for everything else.

    Chains of elementwise scopes are additionally *fused* (one gather /
    compute / scatter pass per chain instead of per scope), and scope setup
    -- iteration grids, gather indices, write geometry -- is cached per
    plan and reused while the symbols it depends on are unchanged, hoisting
    that work out of interstate loops."""

    _VEC_GLOBALS = {
        "__builtins__": _SAFE_BUILTINS,
        "np": np,
        "numpy": np,
        "math": _MATH_SHIM,
    }

    #: Registry name of the emitter binding this executor's state tables.
    EMITTER_NAME = "numpy-eager"

    def __init__(self, *args, fuse: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Whether elementwise scope chains are fused (disable to measure
        #: the fusion win, or to bisect a suspected fusion bug).
        self.fuse = fuse
        self.emitter = get_emitter(self.EMITTER_NAME)()
        #: Per-state lowering plans (serializable IR), by ``id(state)``.
        #: Pre-seeded from a disk artifact by the compiled backend; filled
        #: by :func:`repro.backends.analysis.analyze_state` otherwise.
        self._state_plans: Dict[int, StatePlan] = {}
        #: Per-state bound tables (plans + fused chains), built once per
        #: state on first execution.
        self._tables: Dict[int, StateTable] = {}
        #: Per-plan setup cache: ``(id(plan), epoch) -> (dep-key, setup)``.
        #: Valid within one run only (it captures store arrays).  The epoch
        #: is 0 except in the batched executor's per-trial fallback, where
        #: trial ``k`` uses epoch ``k + 1`` so per-trial and batched setups
        #: never collide.
        self._setup_cache: Dict[Tuple[int, int], Tuple[Tuple, Any]] = {}
        self._setup_epoch = 0
        #: Member-scope guids already covered by a fused execution in the
        #: current state execution.
        self._fused_done: Set[int] = set()
        #: Scope-execution counters (vectorized vs. interpreter fallback;
        #: ``fused`` counts whole-chain executions).
        self.stats: Dict[str, int] = {"vectorized": 0, "fallback": 0, "fused": 0}
        #: Stats already flushed into the metrics registry (per-run deltas
        #: flow out once per run, keeping the per-scope hot path unmetered).
        self._stats_flushed: Dict[str, int] = {}

    def run(self, *args, **kwargs) -> ExecutionResult:
        try:
            return super().run(*args, **kwargs)
        finally:
            # Programs prepared by the vectorized backend outlive their runs
            # in the content-hash cache; drop the per-run data store (and the
            # setup cache, which captures store arrays) so a cached program
            # does not pin its last trial's arrays.
            self._store = {}
            self._symbols = {}
            self._setup_cache = {}
            for key, value in self.stats.items():
                delta = value - self._stats_flushed.get(key, 0)
                if delta:
                    _metric_inc(
                        "repro_scope_exec_total", delta, labels={"outcome": key}
                    )
                    self._stats_flushed[key] = value

    def _setup(self, arguments: Dict[str, Any], symbols: Dict[str, Any]) -> None:
        super()._setup(arguments, symbols)
        # Setup caches capture per-run store arrays; never reuse across runs.
        self._setup_cache.clear()
        self._fused_done.clear()

    # .................................................................. #
    # Per-state decision tables
    # .................................................................. #
    def _table_for(self, state: SDFGState) -> StateTable:
        table = self._tables.get(id(state))
        if table is None:
            table = self._build_state_table(state)
            self._tables[id(state)] = table
        return table

    def _build_state_table(self, state: SDFGState) -> StateTable:
        splan = self._state_plans.get(id(state))
        if splan is not None:
            try:
                return self.emitter.bind_state(self.sdfg, state, splan)
            except Exception:  # noqa: BLE001 - stale seeded plan: re-analyze
                pass
        order = self._state_order(state)
        scopes = self._scope_cache[id(state)]
        splan = analyze_state(self.sdfg, state, order, scopes, fuse=self.fuse)
        self._state_plans[id(state)] = splan
        return self.emitter.bind_state(self.sdfg, state, splan)

    # .................................................................. #
    # Scope execution
    # .................................................................. #
    def _execute_map_scope(self, state, entry, bindings) -> None:
        guid = entry.guid
        if guid in self._fused_done:
            # Covered by the fused execution of this chain's head earlier in
            # the same state execution.
            self._fused_done.discard(guid)
            return
        # The null span costs one call when tracing is off; enabled it
        # records one per-scope execute span (nested under the state span).
        with TRACER.span("execute.scope", "execute") as span:
            span.set("scope", entry.label)
            table = self._table_for(state)
            fused = table.heads.get(guid)
            if fused is not None and self._try_fused(fused, bindings):
                self._fused_done.update(fused.member_guids[1:])
                return
            self._run_single_scope(state, entry, table.plans.get(guid), bindings)

    def _try_fused(self, fused: BoundChain, bindings: Dict[str, Any]) -> bool:
        """Execute a fused chain; ``False`` defers to per-scope execution."""
        if not fused.usable:
            return False
        try:
            writes, counts = self._compute_fused(fused, bindings)
        except ExecutionError:
            raise
        except Exception:  # noqa: BLE001 - chain did not survive contact
            fused.usable = False
            return False
        for apply_write in writes:
            apply_write()
        for tasklet_guid, n in counts:
            self._tasklet_counts[tasklet_guid] = (
                self._tasklet_counts.get(tasklet_guid, 0) + n
            )
        self.stats["vectorized"] += len(fused.members)
        self.stats["fused"] += 1
        return True

    def _run_single_scope(
        self,
        state: SDFGState,
        entry: MapEntry,
        plan: Optional[BoundScope],
        bindings: Dict[str, Any],
    ) -> None:
        if plan is not None and plan.usable:
            try:
                writes, iterations = self._compute_vectorized(plan, bindings)
            except ExecutionError:
                raise
            except Exception:  # noqa: BLE001 - plan did not survive contact
                plan.usable = False
            else:
                for apply_write in writes:
                    apply_write()
                if iterations:
                    # One logical tasklet execution per iteration, exactly as
                    # the interpreter counts them (coverage-map parity).
                    self._tasklet_counts[plan.tasklet.guid] = (
                        self._tasklet_counts.get(plan.tasklet.guid, 0) + iterations
                    )
                self.stats["vectorized"] += 1
                return
        self.stats["fallback"] += 1
        SDFGExecutor._execute_map_scope(self, state, entry, bindings)

    # .................................................................. #
    # Setup (loop-hoisted per dependent-symbol values)
    # .................................................................. #
    def _resolve_domain(
        self, entry: MapEntry, bindings: Dict[str, Any]
    ) -> Tuple[List[np.ndarray], Tuple[int, ...], int, Dict[str, np.ndarray]]:
        """Concrete iteration axes and broadcast grids for a map."""
        axes: List[np.ndarray] = []
        for rng in entry.map.ranges:
            b, e, s = rng.evaluate(bindings)
            if s == 0:
                raise ExecutionError(f"Map '{entry.label}' has a zero step")
            axes.append(np.arange(b, e + 1 if s > 0 else e - 1, s, dtype=np.int64))
        shape_full = tuple(len(a) for a in axes)
        iterations = int(np.prod(shape_full, dtype=np.int64))
        nparams = len(axes)
        grids: Dict[str, np.ndarray] = {}
        for axis, (param, vals) in enumerate(zip(entry.map.params, axes)):
            gshape = [1] * nparams
            gshape[axis] = len(vals)
            grids[param] = vals.reshape(gshape)
        return axes, shape_full, iterations, grids

    @staticmethod
    def _seq_slice(flat: np.ndarray, trusted: bool = False) -> Optional[slice]:
        """A slice indexing the same 1-D positions as ``flat``, or ``None``.

        Only arithmetic sequences (the shape every map-parameter axis and
        every unit-slope affine index takes) qualify; basic indexing is
        several times faster than advanced indexing with an index array.
        The caller has already bounds-checked the values, so non-negative
        starts are guaranteed.  ``trusted`` skips the O(n) element check for
        sequences constructed from ``np.arange`` by this module itself --
        the endpoints check still guards against accidental misuse.
        """
        n = flat.size
        first = int(flat[0])
        if n == 1:
            return slice(first, first + 1)
        step = int(flat[1]) - first
        if step == 0:
            return None
        last = first + step * (n - 1)
        if int(flat[-1]) != last:
            return None
        if not trusted and not np.array_equal(
            flat, np.arange(first, last + (1 if step > 0 else -1), step, dtype=flat.dtype)
        ):
            return None
        if step > 0:
            return slice(first, last + 1, step)
        stop = last - 1
        return slice(first, None if stop < 0 else stop, step)

    @classmethod
    def _gather_slices(
        cls, idx: List[Any], ndim: int, nparams: int
    ) -> Optional[Tuple[Tuple, Optional[Tuple[int, ...]]]]:
        """A basic-indexing equivalent of a broadcast gather, or ``None``.

        Returns ``(slices, taxes)`` where ``slices`` indexes the container
        and ``taxes`` is a transpose permutation aligning the sliced block
        with the gather's broadcast layout (``None`` when the dimension
        order already matches).  Legal when the ranks agree (``ndim ==
        nparams``) and every index array is an arithmetic sequence varying
        along a *single* parameter axis; constant dimensions become
        length-1 slices.  Unlike the aligned-only fast path this also
        covers *permuted* gathers (``A[j, i]`` under an ``i, j`` map):
        a transpose of a basic-slice view replaces advanced indexing.
        """
        if ndim != nparams:
            return None
        sls: List[Any] = []
        axis_of: List[Optional[int]] = []
        saw_array = False
        for v in idx:
            if isinstance(v, np.ndarray):
                varying = [a for a, s in enumerate(v.shape) if s != 1]
                if len(varying) > 1:
                    return None
                sl = cls._seq_slice(v.ravel())
                if sl is None:
                    return None
                saw_array = True
                sls.append(sl)
                axis_of.append(varying[0] if varying else None)
            else:
                if int(v) < 0:
                    return None
                sls.append(slice(int(v), int(v) + 1))
                axis_of.append(None)
        # All-constant gathers yield a NumPy scalar; slices would yield a
        # (1, ..., 1) array.  Leave those on the advanced path.
        if not saw_array:
            return None
        assigned = [a for a in axis_of if a is not None]
        if len(assigned) != len(set(assigned)):
            return None  # two dimensions riding the same parameter axis
        free = iter(a for a in range(ndim) if a not in assigned)
        axes = [a if a is not None else next(free) for a in axis_of]
        if axes == list(range(ndim)):
            return tuple(sls), None
        # Dimension d of the sliced block carries parameter axis axes[d];
        # transposing with taxes[axes[d]] = d puts every axis in place.
        taxes = [0] * ndim
        for d, a in enumerate(axes):
            taxes[a] = d
        return tuple(sls), tuple(taxes)

    def _resolve_gather(
        self, spec: BoundInput, idx_ns: Dict[str, Any], nparams: int
    ) -> Tuple[str, Callable[[], np.ndarray]]:
        arr = self._store.get(spec.data)
        if arr is None:
            raise ExecutionError(f"Read from unknown container '{spec.data}'")
        idx = self._index_arrays(spec.idx_code, idx_ns)
        self._check_vector_bounds(spec.data, spec.subset_str, idx, arr.shape)
        fast = self._gather_slices(idx, arr.ndim, nparams)
        if fast is not None:
            sls, taxes = fast
            # Basic indexing returns a view; the copy preserves the
            # gather-copy semantics (readers must see pre-scope values even
            # after deferred writes mutate the container).
            if taxes is None:

                def fetch(_arr=arr, _sls=sls):
                    return _arr[_sls].copy()

            else:

                def fetch(_arr=arr, _sls=sls, _t=taxes):
                    return _arr[_sls].transpose(_t).copy()

            return spec.conn, fetch

        adv = tuple(idx)

        def fetch(_arr=arr, _idx=adv):
            return _arr[_idx]

        return spec.conn, fetch

    def _resolve_write(
        self,
        spec: BoundOutput,
        axes: List[np.ndarray],
        shape_full: Tuple[int, ...],
        bindings: Dict[str, Any],
    ) -> _WriteGeom:
        arr = self._store.get(spec.data)
        if arr is None:
            raise ExecutionError(f"Write to unknown container '{spec.data}'")
        if len(spec.dims) != arr.ndim:
            raise MemoryViolation(
                spec.data, spec.subset_str, arr.shape, "dimensionality mismatch"
            )
        index_1d: List[np.ndarray] = []
        param_axes: List[int] = []
        for kind, payload in spec.dims:
            if kind == "param":
                axis, offset = payload
                param_axes.append(axis)
                index_1d.append(axes[axis] + offset if offset else axes[axis])
            else:
                c = int(eval(payload, _EVAL_GLOBALS, bindings))  # noqa: S307
                index_1d.append(np.asarray([c], dtype=np.int64))
        self._check_vector_bounds(spec.data, spec.subset_str, index_1d, arr.shape)
        nparams = len(shape_full)
        red_axes = [a for a in range(nparams) if a not in param_axes]
        kept_sorted = sorted(param_axes)
        kept_shape = tuple(shape_full[a] for a in kept_sorted)
        # Value axes end up in ascending-parameter order; ``perm`` reorders
        # them to the output's dimension order, ``target_shape`` re-inserts
        # length-1 axes for constant-indexed dimensions.
        perm = [kept_sorted.index(a) for a in param_axes]
        target_shape = tuple(
            shape_full[payload[0]] if kind == "param" else 1
            for kind, payload in spec.dims
        )
        # Every per-dimension index is an arithmetic sequence (map axes plus
        # a constant offset, or a single constant), so the scatter target is
        # expressible with basic slicing -- several times faster than the
        # ``np.ix_`` advanced-indexing mesh, which stays as the fallback.
        # ``trusted``: these arrays are arange-built by _resolve_domain.
        slices = [self._seq_slice(v, trusted=True) for v in index_1d]
        if index_1d and all(s is not None for s in slices):
            mesh: Tuple = tuple(slices)
        else:
            mesh = np.ix_(*index_1d) if index_1d else ()
        identity_shape = perm == sorted(perm) and target_shape == kept_shape
        return _WriteGeom(
            spec, arr, mesh, perm, target_shape, red_axes, kept_shape,
            identity_shape,
        )

    def _scope_setup(self, plan: BoundScope, bindings: Dict[str, Any]) -> _ScopeSetup:
        key = tuple(bindings.get(name) for name in plan.setup_deps)
        cache_key = (id(plan), self._setup_epoch)
        cached = self._setup_cache.get(cache_key)
        if cached is not None and cached[0] == key:
            return cached[1]
        axes, shape_full, iterations, grids = self._resolve_domain(plan.entry, bindings)
        if iterations == 0:
            # The interpreter executes nothing for an empty domain -- in
            # particular it never bounds-checks the memlets -- so neither
            # may the setup.
            setup = _ScopeSetup(shape_full, 0, grids, [], [])
        else:
            idx_ns = dict(bindings)
            idx_ns.update(grids)
            nparams = len(axes)
            gathers = [
                self._resolve_gather(spec, idx_ns, nparams) for spec in plan.inputs
            ]
            geoms = [
                self._resolve_write(spec, axes, shape_full, bindings)
                for spec in plan.outputs
            ]
            setup = _ScopeSetup(shape_full, iterations, grids, gathers, geoms)
        self._setup_cache[cache_key] = (key, setup)
        return setup

    def _fused_setup(self, fused: BoundChain, bindings: Dict[str, Any]) -> _FusedSetup:
        key = tuple(bindings.get(name) for name in fused.setup_deps)
        cache_key = (id(fused), self._setup_epoch)
        cached = self._setup_cache.get(cache_key)
        if cached is not None and cached[0] == key:
            return cached[1]
        axes, shape_full, iterations, grids = self._resolve_domain(
            fused.entry, bindings
        )
        if iterations == 0:
            setup = _FusedSetup(shape_full, 0, grids, [], [])
        else:
            idx_ns = dict(bindings)
            idx_ns.update(grids)
            nparams = len(axes)
            gathers: List[Tuple[str, Callable[[], np.ndarray]]] = []
            member_geoms: List[List[_WriteGeom]] = []
            for member in fused.members:
                for spec, name in member.gathers:
                    _, fetch = self._resolve_gather(spec, idx_ns, nparams)
                    gathers.append((name, fetch))
                member_geoms.append(
                    [
                        self._resolve_write(spec, axes, shape_full, bindings)
                        for _, spec, _ in member.outputs
                    ]
                )
            setup = _FusedSetup(shape_full, iterations, grids, gathers, member_geoms)
        self._setup_cache[cache_key] = (key, setup)
        return setup

    # .................................................................. #
    # Vectorized evaluation
    # .................................................................. #
    def _compute_vectorized(
        self, plan: BoundScope, bindings: Dict[str, Any]
    ) -> Tuple[List[Callable[[], None]], int]:
        """Evaluate a vectorized scope; returns deferred writes.

        Nothing is mutated here: bounds checks and tasklet execution happen
        first, container writes are returned as closures so a mid-flight
        failure can safely fall back to the interpreter.
        """
        setup = self._scope_setup(plan, bindings)
        if setup.iterations == 0:
            return [], 0

        # Run the tasklet once on whole arrays.  Map parameters are visible
        # as index grids, program symbols as scalars -- mirroring the
        # interpreter's per-iteration namespace.  Gathers read the live
        # store (the fetch closures copy, so in-scope element-wise
        # self-updates see the pre-scope values, as each iteration does).
        ns: Dict[str, Any] = dict(bindings)
        ns.update(setup.grids)
        for conn, fetch in setup.gathers:
            ns[conn] = fetch()
        try:
            exec(plan.code_obj, self._VEC_GLOBALS, ns)  # noqa: S102
        except Exception as exc:  # noqa: BLE001 - same typed error as TaskletRunner
            raise TaskletExecutionError(plan.tasklet.label, exc) from exc

        writes: List[Callable[[], None]] = []
        for geom in setup.geoms:
            writes.append(
                self._make_write(
                    geom,
                    self._output_value(plan.tasklet, geom.spec.conn, ns, setup.shape_full),
                    setup.shape_full,
                )
            )
        return writes, setup.iterations

    def _compute_fused(
        self, fused: BoundChain, bindings: Dict[str, Any]
    ) -> Tuple[List[Callable[[], None]], List[Tuple[int, int]]]:
        """Evaluate a fused scope chain; returns deferred writes + counts.

        The whole chain is **one** ``exec`` of the composed code object:
        member locals are pre-renamed to unique names, consumer connectors
        read the producers' values directly (dtype-cast at the handoff,
        reproducing the interpreter's store round-trip bit for bit), and
        intermediate containers are never touched.  All container writes
        are deferred to the caller, like :meth:`_compute_vectorized`.
        """
        setup = self._fused_setup(fused, bindings)
        if setup.iterations == 0:
            return [], []
        ns: Dict[str, Any] = dict(bindings)
        ns.update(setup.grids)
        for name, fetch in setup.gathers:
            ns[name] = fetch()
        ns.update(fused.cast_bindings)
        try:
            exec(fused.code_obj, self._VEC_GLOBALS, ns)  # noqa: S102
        except Exception as exc:  # noqa: BLE001 - attributed by source line
            raise TaskletExecutionError(fused.label_for(exc), exc) from exc

        writes: List[Callable[[], None]] = []
        counts: List[Tuple[int, int]] = []
        for member, geoms in zip(fused.members, setup.member_geoms):
            for (kind, spec, out_name), geom in zip(member.outputs, geoms):
                value = self._output_value(
                    member.plan.tasklet, out_name, ns, setup.shape_full,
                    display_conn=spec.conn,
                )
                if kind == "write":
                    writes.append(self._make_write(geom, value, setup.shape_full))
            counts.append((member.plan.tasklet.guid, setup.iterations))
        return writes, counts

    @staticmethod
    def _output_value(
        tasklet: Tasklet,
        conn: str,
        ns: Dict[str, Any],
        shape_full: Tuple[int, ...],
        display_conn: Optional[str] = None,
    ) -> np.ndarray:
        if conn not in ns:
            raise TaskletExecutionError(
                tasklet.label,
                KeyError(
                    f"tasklet did not assign output connector "
                    f"'{display_conn or conn}'"
                ),
            )
        value = np.asarray(ns[conn])
        if value.shape == shape_full:
            return value  # the common case: broadcast_to would be a no-op
        return np.broadcast_to(value, shape_full)

    # .................................................................. #
    @staticmethod
    def _index_arrays(idx_code: List[Any], idx_ns: Dict[str, Any]) -> List[Any]:
        out = []
        for code in idx_code:
            v = eval(code, _EVAL_GLOBALS, idx_ns)  # noqa: S307
            out.append(v if isinstance(v, np.ndarray) else int(v))
        return out

    @staticmethod
    def _check_vector_bounds(
        data: str, subset_str: str, idx: List[Any], shape: Tuple[int, ...]
    ) -> None:
        if len(idx) != len(shape):
            raise MemoryViolation(data, subset_str, shape, "dimensionality mismatch")
        for v, dim in zip(idx, shape):
            arr = np.asarray(v)
            if arr.size == 0:
                continue
            lo, hi = int(arr.min()), int(arr.max())
            if lo < 0 or hi >= dim:
                raise MemoryViolation(data, subset_str, shape)

    def _make_write(
        self,
        geom: _WriteGeom,
        value: np.ndarray,
        shape_full: Tuple[int, ...],
    ) -> Callable[[], None]:
        from repro.sdfg.dtypes import reduction_function

        spec, arr = geom.spec, geom.arr
        perm, target_shape, mesh = geom.perm, geom.target_shape, geom.mesh

        if spec.wcr is None and geom.identity_shape and not geom.red_axes:
            # Bijective write whose value already has the output's layout
            # (the overwhelmingly common case): one basic-index assignment.
            def apply_direct() -> None:
                arr[mesh] = value

            return apply_direct

        # Reduction slabs, flattened in iteration (lexicographic) order.
        slabs = np.moveaxis(value, geom.red_axes, range(len(geom.red_axes))).reshape(
            (-1,) + geom.kept_shape
        )

        if geom.identity_shape:

            def shape_for_write(a: np.ndarray) -> np.ndarray:
                return a

        else:

            def shape_for_write(a: np.ndarray) -> np.ndarray:
                return a.transpose(perm).reshape(target_shape)

        if spec.wcr is None:

            def apply_plain() -> None:
                arr[mesh] = shape_for_write(slabs[0])

            return apply_plain

        func = reduction_function(spec.wcr)

        def apply_wcr() -> None:
            # Sequential accumulation in iteration order: bitwise identical
            # to the interpreter's per-element read-modify-write loop
            # (NumPy's pairwise reduce would round differently).  Each step
            # casts back to the container dtype, mirroring the interpreter's
            # per-iteration store (accumulating in the promoted dtype would
            # round non-float64 containers differently).
            region = np.array(arr[mesh], copy=True)
            for k in range(slabs.shape[0]):
                region = np.asarray(func(region, shape_for_write(slabs[k]))).astype(
                    arr.dtype, copy=False
                )
            arr[mesh] = region

        return apply_wcr
