"""The compiled whole-program backend.

PR 2's vectorized backend only accelerates dataflow *inside* a state: every
interstate transition (loop iterations, branches) still re-enters the
interpreter's generic transition loop -- rebuild the interstate namespace,
``eval`` each edge condition against a fresh dict, ``eval`` each assignment.
For loop-nest programs that transition loop dominates, so ``cloudsc``- and
``bert``-shaped workloads saw almost none of the vectorized speedup.

This backend binds **one Python driver function for the entire SDFG** at
preparation time, through the ``python-driver`` emitter
(:mod:`repro.backends.codegen.python_driver`):

* the state machine is lowered to *structured* control flow
  (:func:`repro.sdfg.analysis.structured_control_flow`): natural loops (the
  guard pattern) become native ``while`` loops, if-diamonds become ``if``
  chains, linear chains stay flat;
* interstate edge conditions and symbol assignments become inline Python
  expressions (:func:`repro.symbolic.codegen.emit_interstate_expression`)
  reading program symbols from one shared dict and scalar containers from
  the data store -- no per-transition namespace rebuild, no ``eval``;
* symbol loads that are *invariant across a structured loop* -- names never
  assigned by any edge inside the loop (dataflow cannot write symbols) and
  guaranteed present (free symbols and constants) -- are hoisted into
  locals computed once before the loop;
* each state's dataflow is **inlined as a prepared op list**: every
  top-level node becomes one prebound closure (a tasklet run, a vectorized
  -- possibly *fused* -- scope execution, an access copy), built once at
  preparation time; the driver iterates the list directly, with no
  per-transition node-type dispatch, scope-plan lookup or no-op node visits;
* irreducible interstate graphs fall back to a generated
  ``while``-over-current-state dispatch loop (still native conditions, just
  with an explicit state variable).

Results are bitwise identical to the interpreter, including final symbol
values, transition counts, coverage maps (transition, condition and tasklet
features) and the full error taxonomy (``HangError`` on transition-budget
exhaustion, ``ExecutionError`` wrapping of failing conditions/assignments,
``MemoryViolation`` from dataflow).  Compiled programs are cached by SDFG
content hash exactly like vectorized ones; with a cache *directory*
configured the generated driver is additionally persisted as an on-disk
artifact (keyed by content hash, codegen version, plan-format version and
Python build) **together with the serialized lowering plan**
(:class:`~repro.backends.plan.ProgramPlan`), so sibling worker processes --
pool workers, cluster workers -- skip control-flow structuring, code
generation *and* scope analysis entirely.

As a last-resort safety net (e.g. an interstate assignment targeting a name
that is *also* a scalar container, where static name routing cannot
reproduce the interpreter's shadowing dance), the driver degrades to an
``interpreted`` control loop that reuses the interpreter's ``_next_state``
verbatim -- dataflow stays vectorized, only transitions stay dynamic.
"""

from __future__ import annotations

import base64
import marshal
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.backends.base import CompiledProgram as _BaseCompiledProgram
from repro.backends.codegen.python_driver import (
    CODEGEN_VERSION,
    _artifact_stamp,
    compile_driver,
)
from repro.backends.plan import PLAN_FORMAT_VERSION, ProgramPlan
from repro.backends.vectorized import (
    VectorizedBackend,
    VectorizedExecutor,
    VectorizedProgram,
)
from repro.interpreter.errors import ExecutionError, HangError
from repro.interpreter.executor import _EVAL_GLOBALS
from repro.interpreter.tasklet_exec import compile_expression
from repro.sdfg.analysis import access_node_is_transparent
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, NestedSDFGNode, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.telemetry import TRACER as _TRACER

__all__ = [
    "CompiledBackend",
    "CompiledWholeProgram",
    "CompiledExecutor",
    "compile_driver",
    "CODEGEN_VERSION",
]


class CompiledExecutor(VectorizedExecutor):
    """A :class:`VectorizedExecutor` whose control flow is one generated
    Python function and whose per-state dataflow is a prepared op list."""

    def __init__(
        self,
        sdfg: SDFG,
        max_transitions: int = 100_000,
        artifact: Optional[Dict[str, Any]] = None,
        **kwargs,
    ) -> None:
        super().__init__(sdfg, max_transitions=max_transitions, **kwargs)
        self._compiled_states: List[SDFGState] = list(sdfg.states())
        state_index = {s: i for i, s in enumerate(self._compiled_states)}
        artifact_hoisted = self._seed_state_plans(artifact)
        # Per-state op lists, fixed at prepare time: one prebound closure
        # per executable top-level node.  The generic ``_execute_state``
        # re-derives node lists, re-dispatches on node type and re-looks-up
        # scope plans -- and formerly copied the full symbol dict -- on
        # every transition, which dominates transition-heavy loop nests.
        # Fused-chain members and no-op access nodes are dropped statically.
        self._state_ops: List[List[Callable[[Dict[str, Any]], None]]] = []
        self._state_ops_by_id: Dict[int, List[Callable[[Dict[str, Any]], None]]] = {}
        # The bind/codegen phases of prepare: analyze spans (if any plan
        # must be rebuilt) nest inside via _table_for -> analyze_state.
        with _TRACER.span("codegen.bind", "prepare") as span:
            span.set("emitter", self.EMITTER_NAME)
            for state in self._compiled_states:
                ops = self._build_state_ops(state)
                self._state_ops.append(ops)
                self._state_ops_by_id[id(state)] = ops
        info: Dict[str, Any] = {}
        with _TRACER.span("codegen.driver", "prepare") as span:
            span.set("seeded", artifact is not None)
            self.control_mode, self.driver_source, self._drive, self._driver_code = (
                compile_driver(sdfg, state_index, artifact=artifact, info=info)
            )
        #: Loop-invariant symbol loads the driver hoisted (fresh compiles
        #: report them via ``info``; artifact-seeded drivers carry them in
        #: the persisted plan).
        self.hoisted_symbols: Tuple[str, ...] = tuple(
            info.get("hoisted") or artifact_hoisted or ()
        )

    def _seed_state_plans(
        self, artifact: Optional[Dict[str, Any]]
    ) -> Tuple[str, ...]:
        """Pre-populate per-state lowering plans from a disk artifact.

        Node guids are covered by the content hash, so an artifact plan
        always resolves against this program; any inconsistency (format
        drift, state-count mismatch, malformed payload) simply discards the
        seed and re-analysis runs.  Returns the plan's hoisted symbols.
        """
        if not artifact or "plan" not in artifact:
            return ()
        try:
            plan = ProgramPlan.from_dict(artifact["plan"])
            if len(plan.states) != len(self._compiled_states):
                raise ValueError("state count mismatch")
            for state, splan in zip(self._compiled_states, plan.states):
                self._state_plans[id(state)] = splan
            return tuple(plan.hoisted_symbols)
        except Exception:  # noqa: BLE001 - any bad seed degrades to re-analysis
            self._state_plans.clear()
            return ()

    @property
    def program_plan(self) -> ProgramPlan:
        """The complete lowering plan (every state is bound at prepare
        time, so the per-state plans are always populated here)."""
        return ProgramPlan(
            format=PLAN_FORMAT_VERSION,
            sdfg_name=self.sdfg.name,
            states=[self._state_plans[id(s)] for s in self._compiled_states],
            hoisted_symbols=tuple(self.hoisted_symbols),
        )

    # Op-list construction ............................................. #
    def _build_state_ops(
        self, state: SDFGState
    ) -> List[Callable[[Dict[str, Any]], None]]:
        table = self._table_for(state)
        order = self._state_order(state)
        scopes = self._scope_cache[id(state)]
        ops: List[Callable[[Dict[str, Any]], None]] = []
        for node in order:
            if scopes.get(node) is not None or isinstance(node, MapExit):
                continue
            if isinstance(node, MapEntry):
                if node.guid in table.members:
                    continue  # covered by its chain head's fused op
                fused = table.heads.get(node.guid)
                if fused is not None:
                    ops.append(self._make_fused_op(state, fused, table))
                else:
                    ops.append(
                        self._make_scope_op(state, node, table.plans.get(node.guid))
                    )
            else:
                op = self._make_node_op(state, node)
                if op is not None:
                    ops.append(op)
        return ops

    def _make_node_op(
        self, state: SDFGState, node
    ) -> Optional[Callable[[Dict[str, Any]], None]]:
        """The prebound closure for one non-scope top-level node (``None``
        for statically droppable no-ops)."""
        if isinstance(node, Tasklet):

            def op(symbols, _state=state, _node=node):
                self._execute_tasklet(_state, _node, symbols)

            return op
        if isinstance(node, AccessNode):
            if access_node_is_transparent(state, node):
                return None  # executing it is a no-op: drop statically

            def op(symbols, _state=state, _node=node):
                self._execute_copies_into(_state, _node, symbols)

            return op
        if isinstance(node, NestedSDFGNode):

            def op(symbols, _state=state, _node=node):
                self._execute_nested(_state, _node, symbols)

            return op

        def op(symbols, _state=state, _node=node):
            self._execute_node(_state, _node, symbols)

        return op

    def _make_scope_op(
        self, state: SDFGState, entry: MapEntry, plan
    ) -> Callable[[Dict[str, Any]], None]:
        def op(symbols, _state=state, _entry=entry, _plan=plan):
            self._run_single_scope(_state, _entry, _plan, symbols)

        return op

    def _make_fused_op(
        self, state: SDFGState, fused, table
    ) -> Callable[[Dict[str, Any]], None]:
        members = [(e, table.plans.get(e.guid)) for e in fused.member_entries]

        def op(symbols, _state=state, _fused=fused, _members=members):
            if self._try_fused(_fused, symbols):
                return
            # The chain did not survive contact with runtime values: run the
            # members individually at the head's position.  The nodes between
            # them were transparent (that made them a chain), so chain order
            # here equals per-position execution order.
            for entry, plan in _members:
                self._run_single_scope(_state, entry, plan, symbols)

        return op

    # Runtime services the generated driver calls ...................... #
    def _hang(self) -> None:
        raise HangError(self.max_transitions)

    def _cond_fail(self, condition: str, exc: BaseException) -> None:
        raise ExecutionError(
            f"Failed to evaluate interstate condition {condition!r}: {exc}"
        ) from exc

    def _assign_fail(self, sym: str, expr: str, exc: BaseException) -> None:
        raise ExecutionError(
            f"Failed to evaluate interstate assignment {sym} = {expr!r}: {exc}"
        ) from exc

    def _eval_raw(self, expr: str) -> Any:
        """Interpreter-identical dynamic evaluation (unparseable exprs)."""
        return eval(  # noqa: S307 - restricted namespace
            compile_expression(expr), _EVAL_GLOBALS, self._interstate_namespace()
        )

    def _execute_state(self, state: SDFGState) -> None:
        """Per-state dataflow through the prepared op list.

        Nothing below mutates the top-level symbol dict (tasklets run in
        their own namespaces, map scopes copy bindings before adding
        parameters, reads/writes only evaluate against them), so the live
        symbol dict is passed directly -- no per-transition copy.  Used by
        the ``interpreted`` fallback mode; the generated driver iterates
        the op lists inline without even this method call.
        """
        symbols = self._symbols
        for op in self._state_ops_by_id[id(state)]:
            op(symbols)

    # .................................................................. #
    def _run_control_loop(self) -> int:
        """The whole run contract (setup, result construction, store reset
        for cached programs) is inherited; only the transition loop is
        replaced by the generated driver."""
        if self._drive is None:
            # Stateless program: raise exactly like the interpreter.
            _ = self.sdfg.start_state
        return self._drive(self)


class CompiledWholeProgram(VectorizedProgram):
    """A program bound to a reusable :class:`CompiledExecutor`."""

    #: Executor type this program binds; the batched backend swaps it while
    #: inheriting the artifact contract.
    executor_class = CompiledExecutor

    def __init__(
        self,
        sdfg: SDFG,
        max_transitions: int = 100_000,
        fuse: bool = True,
        artifact: Optional[Dict[str, Any]] = None,
    ) -> None:
        # Deliberately skip VectorizedProgram.__init__: same shape, but the
        # executor is the compiled one.
        _BaseCompiledProgram.__init__(self, sdfg)
        self.executor = self.executor_class(
            sdfg, max_transitions=max_transitions, fuse=fuse, artifact=artifact
        )

    @property
    def control_mode(self) -> str:
        return self.executor.control_mode

    @property
    def driver_source(self) -> Optional[str]:
        return self.executor.driver_source

    persists_artifacts = True

    @classmethod
    def check_artifact(cls, artifact: Dict[str, Any]) -> bool:
        """Whether a disk artifact was produced by this exact generator
        (format, codegen version, plan format, Python build) and names a
        known mode."""
        stamp = _artifact_stamp()
        # Presence-required comparison: a stamp field whose expected value
        # is None (e.g. ``toolchain``) must still *exist* in the artifact --
        # ``artifact.get(k) == None`` would accept entries predating the
        # field entirely.
        return (
            all(k in artifact and artifact[k] == v for k, v in stamp.items())
            and artifact.get("plan_format") == PLAN_FORMAT_VERSION
            and artifact.get("mode") in ("structured", "dispatch", "interpreted")
        )

    def artifact(self) -> Optional[Dict[str, Any]]:
        """The persistable artifact: driver (mode + source + marshaled
        code) plus the serialized lowering plan."""
        executor = self.executor
        mode = executor.control_mode
        if mode == "empty":
            return None
        art = _artifact_stamp()
        art["mode"] = mode
        if mode in ("structured", "dispatch"):
            if executor.driver_source is None or executor._driver_code is None:
                return None
            art["source"] = executor.driver_source
            art["code"] = base64.b64encode(
                marshal.dumps(executor._driver_code)
            ).decode("ascii")
        art["plan_format"] = PLAN_FORMAT_VERSION
        try:
            art["plan"] = executor.program_plan.to_dict()
        except Exception:  # noqa: BLE001 - a plan that cannot serialize is
            return None  # not worth persisting a partial artifact for
        return art


class CompiledBackend(VectorizedBackend):
    """Whole-program compilation: structured interstate control flow plus
    vectorized (and fused) state dataflow, cached by SDFG content hash with
    an optional on-disk artifact tier shared across worker processes."""

    name = "compiled"
    program_class = CompiledWholeProgram
