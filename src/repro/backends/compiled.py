"""The compiled whole-program backend.

PR 2's vectorized backend only accelerates dataflow *inside* a state: every
interstate transition (loop iterations, branches) still re-enters the
interpreter's generic transition loop -- rebuild the interstate namespace,
``eval`` each edge condition against a fresh dict, ``eval`` each assignment.
For loop-nest programs that transition loop dominates, so ``cloudsc``- and
``bert``-shaped workloads saw almost none of the vectorized speedup.

This backend code-generates **one Python driver function for the entire
SDFG** at preparation time:

* the state machine is lowered to *structured* control flow
  (:func:`repro.sdfg.analysis.structured_control_flow`): natural loops (the
  guard pattern) become native ``while`` loops, if-diamonds become ``if``
  chains, linear chains stay flat;
* interstate edge conditions and symbol assignments become inline Python
  expressions (:func:`repro.symbolic.codegen.emit_interstate_expression`)
  reading program symbols from one shared dict and scalar containers from
  the data store -- no per-transition namespace rebuild, no ``eval``;
* irreducible interstate graphs fall back to a generated
  ``while``-over-current-state dispatch loop (still native conditions, just
  with an explicit state variable);
* each state's dataflow is executed by the existing vectorized scope
  machinery (:class:`~repro.backends.vectorized.VectorizedExecutor`), so map
  scopes run as NumPy array expressions with per-scope interpreter fallback.

Results are bitwise identical to the interpreter, including final symbol
values, transition counts, coverage maps (transition, condition and tasklet
features) and the full error taxonomy (``HangError`` on transition-budget
exhaustion, ``ExecutionError`` wrapping of failing conditions/assignments,
``MemoryViolation`` from dataflow).  Compiled programs are cached by SDFG
content hash exactly like vectorized ones.

As a last-resort safety net (e.g. an interstate assignment targeting a name
that is *also* a scalar container, where static name routing cannot
reproduce the interpreter's shadowing dance), the driver degrades to an
``interpreted`` control loop that reuses the interpreter's ``_next_state``
verbatim -- dataflow stays vectorized, only transitions stay dynamic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.backends.base import CompiledProgram as _BaseCompiledProgram
from repro.backends.vectorized import (
    VectorizedBackend,
    VectorizedExecutor,
    VectorizedProgram,
)
from repro.interpreter.errors import ExecutionError, HangError
from repro.interpreter.executor import _EVAL_GLOBALS
from repro.interpreter.tasklet_exec import compile_expression
from repro.sdfg.analysis import (
    CFBlock,
    CFBranch,
    CFExec,
    CFLoop,
    structured_control_flow,
)
from repro.sdfg.data import Scalar
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.codegen import (
    ExpressionCodegenError,
    emit_interstate_expression,
)

__all__ = [
    "CompiledBackend",
    "CompiledWholeProgram",
    "CompiledExecutor",
    "compile_driver",
]

#: Globals of the generated driver.  User expressions see exactly the
#: interpreter's ``_EVAL_GLOBALS`` vocabulary; the dunder-prefixed aliases
#: are infrastructure used by *emitted* statements only, so they cannot
#: widen what a program's own conditions can resolve.
_DRIVER_GLOBALS: Dict[str, Any] = dict(_EVAL_GLOBALS)
_DRIVER_GLOBALS.update(
    {
        "__bool": bool,
        "__isinstance": isinstance,
        "__float": float,
        "__int": int,
        "__Exception": Exception,
    }
)


# ---------------------------------------------------------------------- #
# Driver code generation
# ---------------------------------------------------------------------- #
class _DriverEmitter:
    """Emits the Python source of one whole-program driver function."""

    def __init__(
        self,
        sdfg: SDFG,
        state_index: Dict[SDFGState, int],
        scalar_names: Set[str],
    ) -> None:
        self.sdfg = sdfg
        self.state_index = state_index
        self.scalar_names = scalar_names
        self.lines: List[str] = []
        self.indent = 0

    # .................................................................. #
    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    # .................................................................. #
    def emit_driver(self, body: Callable[[], None]) -> None:
        self.line("def __drive(__rt):")
        self.indent += 1
        self.line("__sym = __rt._symbols")
        self.line("__store = __rt._store")
        self.line("__cov = __rt._coverage")
        self.line("__max = __rt.max_transitions")
        self.line("__exec = __rt._execute_state")
        self.line("__states = __rt._compiled_states")
        self.line("__t = 0")
        self.line("__prev = '__start__'")
        body()
        self.line("return __t")
        self.indent -= 1

    def emit_exec(self, state: SDFGState) -> None:
        """One state execution, mirroring the interpreter's per-state steps:
        hang check, transition coverage, dataflow, transition count."""
        self.line("if __t > __max:")
        self.line("    __rt._hang()")
        self.line("if __cov is not None:")
        self.line(f"    __cov.record_transition(__prev, {state.label!r})")
        self.line(f"__exec(__states[{self.state_index[state]}])")
        self.line(f"__prev = {state.label!r}")
        self.line("__t += 1")

    # .................................................................. #
    def emit_condition(self, edge) -> None:
        """Sets ``__c`` to the edge condition's truth value (or raises the
        interpreter's :class:`ExecutionError` wrapper)."""
        cond = edge.data.condition
        if cond.strip() in ("True", "1"):
            # The interpreter evaluates these to True; skip the try block.
            self.line("__c = True")
            return
        try:
            src = emit_interstate_expression(cond, self.scalar_names)
            expr = f"__bool({src})"
        except ExpressionCodegenError:
            # Unparseable condition: defer to the interpreter's dynamic
            # evaluation so the failure mode (and message) is identical.
            expr = f"__bool(__rt._eval_raw({cond!r}))"
        self.line("try:")
        self.line(f"    __c = {expr}")
        self.line("except __Exception as __exc:")
        self.line(f"    __rt._cond_fail({cond!r}, __exc)")

    def emit_record_condition(self, state: SDFGState, edge) -> None:
        location = f"{state.label}->{edge.dst.label}"
        self.line("if __cov is not None:")
        self.line(f"    __cov.record_condition({location!r}, __c)")

    def emit_assignments(self, edge) -> None:
        for sym, expr in edge.data.assignments.items():
            try:
                src = emit_interstate_expression(expr, self.scalar_names)
            except ExpressionCodegenError:
                src = f"__rt._eval_raw({expr!r})"
            self.line("try:")
            self.line(f"    __v = {src}")
            self.line("except __Exception as __exc:")
            self.line(f"    __rt._assign_fail({sym!r}, {expr!r}, __exc)")
            # Interpreter parity: integral floats become Python ints.
            self.line("if __isinstance(__v, __float) and __v.is_integer():")
            self.line("    __v = __int(__v)")
            self.line(f"__sym[{sym!r}] = __v")

    # .................................................................. #
    # Structured emission
    # .................................................................. #
    def emit_block(self, block: CFBlock, halt: str = "return __t") -> None:
        for item in block.items:
            if isinstance(item, CFExec):
                self.emit_exec(item.state)
            elif isinstance(item, CFLoop):
                self.line("while True:")
                self.indent += 1
                self.emit_exec(item.loop.guard)
                self._emit_arms(item.branch.state, item.branch.arms, 0, halt)
                self.indent -= 1
            elif isinstance(item, CFBranch):
                arm = item.arms[0] if item.arms else None
                if (
                    len(item.arms) == 1
                    and arm.terminal == "fallthrough"
                ):
                    # Linear-chain edge: stay flat instead of nesting.
                    self.emit_condition(arm.edge)
                    self.emit_record_condition(item.state, arm.edge)
                    if arm.edge.data.condition.strip() not in ("True", "1"):
                        self.line("if not __c:")
                        self.line(f"    {halt}")
                    self.emit_assignments(arm.edge)
                else:
                    self._emit_arms(item.state, item.arms, 0, halt)
            else:  # pragma: no cover - exhaustive over CF node kinds
                raise ExpressionCodegenError(f"Unknown CF item {item!r}")
        # Defensive terminator: blocks ending in a terminal state (no
        # out-edges) fall through to here; after an exhaustive branch this
        # line is simply unreachable.
        self.line(halt)

    def _emit_arms(self, state: SDFGState, arms, i: int, halt: str) -> None:
        """Evaluate out-edges in order; the first true condition wins, no
        true condition terminates the program -- the interpreter's
        ``_next_state`` contract."""
        if i == len(arms):
            self.line(halt)
            return
        arm = arms[i]
        self.emit_condition(arm.edge)
        self.emit_record_condition(state, arm.edge)
        self.line("if __c:")
        self.indent += 1
        self.emit_assignments(arm.edge)
        if arm.terminal in ("continue", "break"):
            self.line(arm.terminal)
        elif arm.block is not None:
            self.emit_block(arm.block, halt)
        else:  # pragma: no cover - structurer emits no other terminals here
            self.line(halt)
        self.indent -= 1
        if i + 1 < len(arms):
            self.line("else:")
            self.indent += 1
            self._emit_arms(state, arms, i + 1, halt)
            self.indent -= 1
        else:
            self.line("else:")
            self.line(f"    {halt}")

    # .................................................................. #
    # Dispatch emission (irreducible graphs)
    # .................................................................. #
    def emit_dispatch(self) -> None:
        start = self.state_index[self.sdfg.start_state]
        self.line(f"__s = {start}")
        self.line("while __s >= 0:")
        self.indent += 1
        keyword = "if"
        for state, idx in self.state_index.items():
            self.line(f"{keyword} __s == {idx}:")
            keyword = "elif"
            self.indent += 1
            self.emit_exec(state)
            self._emit_dispatch_arms(state, self.sdfg.out_edges(state), 0)
            self.indent -= 1
        self.indent -= 1

    def _emit_dispatch_arms(self, state: SDFGState, edges, i: int) -> None:
        if i == len(edges):
            self.line("__s = -1")
            return
        edge = edges[i]
        self.emit_condition(edge)
        self.emit_record_condition(state, edge)
        self.line("if __c:")
        self.indent += 1
        self.emit_assignments(edge)
        self.line(f"__s = {self.state_index[edge.dst]}")
        self.indent -= 1
        self.line("else:")
        self.indent += 1
        self._emit_dispatch_arms(state, edges, i + 1)
        self.indent -= 1


def _interpreted_drive(rt: "CompiledExecutor") -> int:
    """Fallback control loop: the interpreter's transition machinery verbatim
    (dataflow still runs through the vectorized scope kernels)."""
    from repro.interpreter.executor import SDFGExecutor

    return SDFGExecutor._run_control_loop(rt)


def compile_driver(
    sdfg: SDFG, state_index: Dict[SDFGState, int]
) -> Tuple[str, Optional[str], Optional[Callable]]:
    """Generate the whole-program driver for ``sdfg``.

    Returns ``(mode, source, fn)`` where mode is ``"structured"``,
    ``"dispatch"``, ``"interpreted"`` (dynamic-transition safety net) or
    ``"empty"`` (stateless program; running it raises like the interpreter).
    """
    if not sdfg.states():
        return "empty", None, None

    scalar_names = {
        name for name, desc in sdfg.arrays.items() if isinstance(desc, Scalar)
    }
    assigned: Set[str] = set()
    for e in sdfg.edges():
        assigned |= set(e.data.assignments)
    if assigned & scalar_names:
        # An interstate assignment shadowing a scalar container cannot be
        # routed statically (the interpreter's namespace lets the assigned
        # value win within a transition, the scalar win on the next one).
        return "interpreted", None, _interpreted_drive

    try:
        tree = structured_control_flow(sdfg)
        emitter = _DriverEmitter(sdfg, state_index, scalar_names)
        if tree is not None:
            mode = "structured"
            emitter.emit_driver(lambda: emitter.emit_block(tree))
        else:
            mode = "dispatch"
            emitter.emit_driver(emitter.emit_dispatch)
        source = emitter.source()
        namespace: Dict[str, Any] = {}
        code = compile(source, f"<compiled-sdfg:{sdfg.name}>", "exec")
        exec(code, dict(_DRIVER_GLOBALS), namespace)  # noqa: S102
        return mode, source, namespace["__drive"]
    except Exception:  # noqa: BLE001 - never fail prepare; degrade instead
        return "interpreted", None, _interpreted_drive


# ---------------------------------------------------------------------- #
# Executor / program / backend
# ---------------------------------------------------------------------- #
class CompiledExecutor(VectorizedExecutor):
    """A :class:`VectorizedExecutor` whose control flow is one generated
    Python function instead of the generic interpretation loop."""

    def __init__(self, sdfg: SDFG, max_transitions: int = 100_000, **kwargs) -> None:
        super().__init__(sdfg, max_transitions=max_transitions, **kwargs)
        self._compiled_states: List[SDFGState] = list(sdfg.states())
        state_index = {s: i for i, s in enumerate(self._compiled_states)}
        # Per-state top-level (scope-free) node lists, fixed at prepare
        # time: the generic ``_execute_state`` re-derives them -- and copies
        # the full symbol dict into a fresh bindings namespace -- on every
        # transition, which costs ~25 us per tiny state and dominates
        # transition-heavy loop nests.
        self._state_toplevel: Dict[int, List[Any]] = {}
        for state in self._compiled_states:
            order = self._state_order(state)
            scopes = self._scope_cache[id(state)]
            self._state_toplevel[id(state)] = [
                n for n in order if scopes.get(n) is None
            ]
        self.control_mode, self.driver_source, self._drive = compile_driver(
            sdfg, state_index
        )

    # Runtime services the generated driver calls ...................... #
    def _hang(self) -> None:
        raise HangError(self.max_transitions)

    def _cond_fail(self, condition: str, exc: BaseException) -> None:
        raise ExecutionError(
            f"Failed to evaluate interstate condition {condition!r}: {exc}"
        ) from exc

    def _assign_fail(self, sym: str, expr: str, exc: BaseException) -> None:
        raise ExecutionError(
            f"Failed to evaluate interstate assignment {sym} = {expr!r}: {exc}"
        ) from exc

    def _eval_raw(self, expr: str) -> Any:
        """Interpreter-identical dynamic evaluation (unparseable exprs)."""
        return eval(  # noqa: S307 - restricted namespace
            compile_expression(expr), _EVAL_GLOBALS, self._interstate_namespace()
        )

    def _execute_state(self, state: SDFGState) -> None:
        """Per-state dataflow without the per-transition namespace copy.

        The generic executor snapshots ``dict(self._symbols)`` into a fresh
        bindings dict on every state execution.  Nothing below mutates the
        top-level bindings (tasklets run in their own namespaces, map scopes
        copy bindings before adding parameters, reads/writes only evaluate
        against them), so the live symbol dict is passed directly and the
        node list comes from the table built at prepare time.
        """
        symbols = self._symbols
        for node in self._state_toplevel[id(state)]:
            self._execute_node(state, node, symbols)

    # .................................................................. #
    def _run_control_loop(self) -> int:
        """The whole run contract (setup, result construction, store reset
        for cached programs) is inherited; only the transition loop is
        replaced by the generated driver."""
        if self._drive is None:
            # Stateless program: raise exactly like the interpreter.
            _ = self.sdfg.start_state
        return self._drive(self)


class CompiledWholeProgram(VectorizedProgram):
    """A program bound to a reusable :class:`CompiledExecutor`."""

    def __init__(self, sdfg: SDFG, max_transitions: int = 100_000) -> None:
        # Deliberately skip VectorizedProgram.__init__: same shape, but the
        # executor is the compiled one.
        _BaseCompiledProgram.__init__(self, sdfg)
        self.executor = CompiledExecutor(sdfg, max_transitions=max_transitions)

    @property
    def control_mode(self) -> str:
        return self.executor.control_mode

    @property
    def driver_source(self) -> Optional[str]:
        return self.executor.driver_source


class CompiledBackend(VectorizedBackend):
    """Whole-program compilation: structured interstate control flow plus
    vectorized state dataflow, cached by SDFG content hash."""

    name = "compiled"
    program_class = CompiledWholeProgram
