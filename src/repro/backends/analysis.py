"""Scope legality and fusion analysis (the *analyze* layer).

First stage of the backend lowering pipeline (analyze -> plan -> codegen ->
execute): decides, per map scope, whether the scope can execute as whole-
array NumPy operations -- and per elementwise scope chain (discovered
structurally by :func:`repro.sdfg.analysis.elementwise_scope_chains`),
whether the chain can fuse into one straight-line kernel.  The result is
the typed plan IR of :mod:`repro.backends.plan`; no code is generated and
nothing is executed here.

Rejections carry a *reason* string (recorded in
:attr:`repro.backends.plan.StatePlan.fallback_reasons`) so a sweep can
report why a scope interprets instead of vectorizing.

Fusion legality (pass 1 of the old fused-plan builder) routes each member
input either to the pre-chain store (``gather``) or to an earlier member's
in-flight value (``chain``); reads of WCR-written or subset-mismatched
intermediates truncate the chain.  A member that *writes* with WCR is legal
-- accumulate-into-chain -- but terminates the chain: deferred writes and
pre-chain gathers only reproduce the interpreter when no later member can
observe (or race with) the accumulation.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.backends.plan import (
    ChainPlan,
    InputPlan,
    OutputPlan,
    PLAN_FORMAT_VERSION,
    ProgramPlan,
    ScopePlan,
    StatePlan,
)
from repro.sdfg.analysis import elementwise_scope_chains
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.telemetry import TRACER, inc as _metric_inc, observe as _metric_observe

__all__ = [
    "code_is_vectorizable",
    "unit_affine_offset",
    "point_index_exprs",
    "analyze_scope",
    "analyze_chain",
    "analyze_state",
    "analyze_program",
    "container_private_to_chain",
    "ALLOWED_NP_FUNCS",
]

#: Element-wise NumPy functions allowed inside vectorized tasklet code.
ALLOWED_NP_FUNCS = frozenset(
    {
        "exp", "expm1", "log", "log1p", "log2", "log10", "sqrt", "cbrt",
        "abs", "absolute", "fabs", "sign", "floor", "ceil", "trunc", "rint",
        "sin", "cos", "tan", "arcsin", "arccos", "arctan", "arctan2",
        "sinh", "cosh", "tanh", "power", "maximum", "minimum", "fmod",
        "hypot", "copysign", "where",
    }
)

_ALLOWED_BINOPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)
_ALLOWED_UNARYOPS = (ast.USub, ast.UAdd)

_RAISING_BINOPS = (ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def code_is_vectorizable(code: str, np_names: frozenset) -> bool:
    """Whether tasklet code stays element-wise under array substitution.

    Accepts straight-line assignments built from arithmetic, ``abs``,
    ``math.*`` (via the shim) and a whitelist of element-wise ``np`` / ``numpy``
    functions.  Control flow, comparisons, subscripts and anything else that
    changes meaning between scalars and arrays is rejected -- the scope then
    falls back to the interpreter.  Augmented assignment is rejected too:
    after ``b = a``, ``b += c`` would mutate the *aliased* gathered input
    array in place, whereas the scalar path rebinds ``b``.

    ``np_names`` are the names bound to NumPy values in the interpreter's
    scalar path (the input connectors).  ``/ // % **`` are only accepted
    when an operand is NumPy-typed there as well: with pure-Python operands
    (map parameters, constants, ``math.*`` results) the interpreter raises
    (``ZeroDivisionError``, ...) where NumPy arrays would warn and continue,
    so such scopes must fall back to keep crash classification identical.
    """
    try:
        tree = ast.parse(code)
    except SyntaxError:
        return False
    np_locals = set(np_names)

    def np_typed(node: ast.AST) -> bool:
        """Whether the interpreter's scalar path yields a NumPy value here."""
        if isinstance(node, ast.Name):
            return node.id in np_locals
        if isinstance(node, ast.BinOp):
            return np_typed(node.left) or np_typed(node.right)
        if isinstance(node, ast.UnaryOp):
            return np_typed(node.operand)
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "abs":
                return any(np_typed(a) for a in node.args)
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                # np.* returns NumPy scalars even for Python inputs;
                # math.* returns plain Python floats.
                return fn.value.id in ("np", "numpy")
        return False

    def expr_ok(node: ast.AST) -> bool:
        if isinstance(node, ast.BinOp):
            if not (
                isinstance(node.op, _ALLOWED_BINOPS)
                and expr_ok(node.left)
                and expr_ok(node.right)
            ):
                return False
            if isinstance(node.op, _RAISING_BINOPS):
                return np_typed(node.left) or np_typed(node.right)
            return True
        if isinstance(node, ast.UnaryOp):
            return isinstance(node.op, _ALLOWED_UNARYOPS) and expr_ok(node.operand)
        if isinstance(node, ast.Name):
            return True
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float, bool))
        if isinstance(node, ast.Call):
            if node.keywords:
                return False
            if not all(expr_ok(a) for a in node.args):
                return False
            fn = node.func
            if isinstance(fn, ast.Name):
                return fn.id == "abs"
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                if fn.value.id == "math":
                    return True
                if fn.value.id in ("np", "numpy"):
                    return fn.attr in ALLOWED_NP_FUNCS
            return False
        return False

    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            return False
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return False
        if not expr_ok(stmt.value):
            return False
        if np_typed(stmt.value):
            np_locals.add(stmt.targets[0].id)
        else:
            np_locals.discard(stmt.targets[0].id)
    return True


def unit_affine_offset(expr, param: str) -> Optional[int]:
    """Integer ``c`` such that ``expr == param + c``, else ``None``.

    The match is *structural* -- ``Symbol(param)`` or a two-term sum of
    ``Symbol(param)`` and an integer constant (what ``i + 1`` / ``i - 1`` /
    ``1 + i`` parse and fold to).  Probing concrete points instead would
    accept piecewise expressions (``i % 4096``, ``Min(i, C)``) that agree
    with ``param + c`` on the probe set but wrap elsewhere, silently
    corrupting vectorized writes.
    """
    from repro.symbolic.expressions import Add, Integer, Symbol

    if isinstance(expr, Symbol):
        return 0 if expr.name == param else None
    if isinstance(expr, Add) and len(expr.args) == 2:
        a, b = expr.args
        if isinstance(b, Symbol):
            a, b = b, a
        if isinstance(a, Symbol) and a.name == param and isinstance(b, Integer):
            return b.value
    return None


def point_index_exprs(memlet: Memlet) -> Optional[List[str]]:
    """Per-dimension index expression strings, or None if not all points."""
    if memlet.subset is None:
        return None
    exprs = []
    for r in memlet.subset.ranges:
        if not r.is_point():
            return None
        exprs.append(str(r.begin))
    return exprs


# ---------------------------------------------------------------------- #
# Scope analysis
# ---------------------------------------------------------------------- #
def analyze_scope(
    state: SDFGState, entry: MapEntry, children: List[Any]
) -> Tuple[Optional[ScopePlan], Optional[str]]:
    """Build the vectorized plan for one map scope, or explain the refusal.

    Returns ``(plan, None)`` on success and ``(None, reason)`` otherwise;
    the reason slug names the first legality rule that failed.
    """
    # Exactly one tasklet in the scope: nested maps, nested SDFGs and
    # in-scope access nodes all fall back to the interpreter.
    if len(children) != 1 or not isinstance(children[0], Tasklet):
        return None, "scope-not-single-tasklet"
    tasklet = children[0]
    if tasklet.side_effect_callback:
        return None, "side-effect-tasklet"
    params = entry.map.params

    inputs: List[InputPlan] = []
    for edge in state.in_edges(tasklet):
        memlet: Memlet = edge.data
        if memlet is None or memlet.is_empty:
            if edge.src is not entry:
                return None, "non-entry-dependency-edge"
            continue
        if edge.src is not entry or edge.dst_conn is None:
            return None, "input-not-from-map-entry"
        if memlet.dynamic or memlet.other_subset is not None:
            return None, "dynamic-or-copy-input-subset"
        exprs = point_index_exprs(memlet)
        if exprs is None:
            return None, "non-point-input-subset"
        inputs.append(
            InputPlan(edge.dst_conn, memlet.data, exprs, str(memlet.subset))
        )

    outputs: List[OutputPlan] = []
    for edge in state.out_edges(tasklet):
        memlet = edge.data
        if memlet is None or memlet.is_empty:
            if isinstance(edge.dst, MapExit) and edge.dst.map is entry.map:
                continue
            return None, "empty-output-not-to-map-exit"
        if not isinstance(edge.dst, MapExit) or edge.dst.map is not entry.map:
            return None, "output-not-to-own-map-exit"
        if edge.src_conn is None or memlet.dynamic or memlet.other_subset is not None:
            return None, "dynamic-or-copy-output-subset"
        if memlet.subset is None:
            return None, "missing-output-subset"
        dims: List[Tuple[str, Any]] = []
        used_params: List[str] = []
        for r in memlet.subset.ranges:
            if not r.is_point():
                return None, "non-point-output-subset"
            text = str(r.begin).strip()
            if text in params:
                if text in used_params:
                    # Same parameter indexing two dimensions.
                    return None, "parameter-reused-across-dims"
                used_params.append(text)
                dims.append(("param", (params.index(text), 0)))
            elif not (r.begin.free_symbols & set(params)):
                dims.append(("const", text))
            else:
                # Affine-but-not-bare (e.g. ``i + 1``): lower to a slice
                # offset when the index is unit-slope in one parameter;
                # the shift keeps the write a bijection, so the plain /
                # WCR write paths apply unchanged.
                candidates = r.begin.free_symbols & set(params)
                if len(candidates) != 1:
                    return None, "non-affine-output-index"
                p = next(iter(candidates))
                offset = unit_affine_offset(r.begin, p)
                if offset is None or p in used_params:
                    return None, "non-affine-output-index"
                used_params.append(p)
                dims.append(("param", (params.index(p), offset)))
        if memlet.wcr is None:
            # Without a reduction, the write must be a bijection on the
            # iteration space (every parameter appears as its own
            # dimension), otherwise iteration order would matter.
            if set(used_params) != set(params):
                return None, "non-bijective-write"
        elif memlet.wcr not in ("sum", "prod", "min", "max"):
            return None, "unsupported-wcr"
        outputs.append(
            OutputPlan(edge.src_conn, memlet.data, dims, memlet.wcr, str(memlet.subset))
        )

    # Two output edges into the same container interleave their writes
    # per iteration in the interpreter but would run as two full-array
    # passes here; only vectorize single-writer containers.
    out_data = [o.data for o in outputs]
    if len(out_data) != len(set(out_data)):
        return None, "multi-writer-container"
    # An iteration must never observe another iteration's write: reading
    # a container that the scope also writes is only safe when read and
    # write subsets are textually identical (pure element-wise update).
    for spec in inputs:
        for other in outputs:
            if other.data != spec.data:
                continue
            if other.wcr is not None or spec.subset_str != other.subset_str:
                return None, "read-write-overlap"

    if not code_is_vectorizable(tasklet.code, frozenset(s.conn for s in inputs)):
        return None, "non-vectorizable-code"

    # Setup dependencies: every non-parameter name the iteration grids,
    # gather indices and write geometry read.  Executions with unchanged
    # values for these names reuse the cached setup (loop hoisting).
    deps: Set[str] = set()
    for rng in entry.map.ranges:
        deps |= rng.free_symbols
    for edge in state.in_edges(tasklet):
        if edge.data is not None and not edge.data.is_empty and edge.data.subset is not None:
            deps |= edge.data.subset.free_symbols
    for edge in state.out_edges(tasklet):
        if edge.data is not None and not edge.data.is_empty and edge.data.subset is not None:
            deps |= edge.data.subset.free_symbols
    deps -= set(params)
    return (
        ScopePlan(
            entry_guid=entry.guid,
            entry_label=entry.label,
            tasklet_guid=tasklet.guid,
            tasklet_label=tasklet.label,
            code=tasklet.code,
            inputs=inputs,
            outputs=outputs,
            setup_deps=tuple(sorted(deps)),
        ),
        None,
    )


# ---------------------------------------------------------------------- #
# Fusion analysis
# ---------------------------------------------------------------------- #
def container_private_to_chain(
    sdfg: SDFG, state: SDFGState, data: str, chain_nodes: Set[Any]
) -> bool:
    """Whether every use of ``data`` in the whole program is inside the chain.

    Only then may the fused kernel skip materializing the container: nothing
    else -- no other state, no non-chain node in this state, no final-output
    copy -- can observe the missing write.
    """
    for other in sdfg.states():
        for node in other.nodes():
            if not isinstance(node, AccessNode) or node.data != data:
                continue
            if other is not state:
                return False
            for edge in other.in_edges(node):
                if edge.src not in chain_nodes:
                    return False
            for edge in other.out_edges(node):
                if edge.dst not in chain_nodes:
                    return False
    return True


def analyze_chain(
    sdfg: SDFG,
    state: SDFGState,
    entries: List[MapEntry],
    plans: Dict[int, Optional[ScopePlan]],
) -> Optional[ChainPlan]:
    """Fuse the longest legal prefix of a candidate chain (or refuse).

    ``entries`` is a structural candidate from
    :func:`repro.sdfg.analysis.elementwise_scope_chains`; members without a
    vectorized plan, or whose memlets violate the fusion preconditions
    (mismatched intermediate subsets, reads of WCR-written containers,
    overlapping-write hazards), truncate the chain at that point.  A member
    writing with WCR may join -- but only as the chain's *tail*: with the
    accumulation target unread inside the chain, the deferred write is
    indistinguishable from the interpreter's, while any later member would
    reorder against the accumulation.
    """
    from repro.sdfg.data import Array

    planned: List[Tuple[MapEntry, ScopePlan]] = []
    for entry in entries:
        plan = plans.get(entry.guid)
        if plan is None:
            break
        planned.append((entry, plan))

    # Legality walk: route each input either to the store (gather) or to an
    # earlier member's value (chain); any read of an intra-chain write that
    # is not an exact elementwise match truncates the chain.
    accepted: List[Tuple[MapEntry, ScopePlan, List[str]]] = []
    written: Dict[str, OutputPlan] = {}
    gathered: Set[str] = set()
    deps: Set[str] = set()
    for entry, plan in planned:
        routes: List[str] = []
        legal = True
        for spec in plan.inputs:
            prev = written.get(spec.data)
            if prev is None:
                routes.append("gather")
                gathered.add(spec.data)
            elif prev.wcr is None and prev.subset_str == spec.subset_str:
                routes.append("chain")
            else:
                legal = False  # WCR-fed or subset-mismatched intermediate read
                break
        if not legal:
            break
        accepted.append((entry, plan, routes))
        deps.update(plan.setup_deps)
        for spec in plan.outputs:
            written[spec.data] = spec
        if any(spec.wcr is not None for spec in plan.outputs):
            # Accumulate-into-chain: a WCR writer is only legal as the tail.
            break
    if len(accepted) < 2:
        return None
    member_entries = [entry for entry, _, _ in accepted]

    # Intermediates used nowhere outside the chain are never materialized.
    chain_nodes: Set[Any] = set()
    tasklets_by_guid = {n.guid: n for n in state.nodes()}
    for entry, plan, _ in accepted:
        chain_nodes.add(entry)
        chain_nodes.add(tasklets_by_guid[plan.tasklet_guid])
    for node in state.nodes():
        if isinstance(node, MapExit) and any(
            node.map is e.map for e in member_entries
        ):
            chain_nodes.add(node)
    internal: Set[str] = set()
    for data in written:
        desc = sdfg.arrays.get(data)
        if (
            desc is not None
            and desc.transient
            and isinstance(desc, Array)
            # A container the chain also *gathers* (reads before any chain
            # write) carries a loop-borne dependence: the next execution of
            # this state must see the materialized value, so the write
            # cannot be skipped even when every use site is in the chain.
            and data not in gathered
            and container_private_to_chain(sdfg, state, data, chain_nodes)
        ):
            internal.add(data)

    return ChainPlan(
        member_guids=tuple(e.guid for e in member_entries),
        routes=[routes for _, _, routes in accepted],
        internal=tuple(sorted(internal)),
        setup_deps=tuple(sorted(deps)),
    )


# ---------------------------------------------------------------------- #
# State / program analysis
# ---------------------------------------------------------------------- #
def analyze_state(
    sdfg: SDFG,
    state: SDFGState,
    order: List[Any],
    scopes: Dict[Any, Any],
    fuse: bool = True,
) -> StatePlan:
    """Analyze one state: every map scope, then every fusable chain.

    Telemetry: lowering outcomes count into
    ``repro_scope_lowering_total{outcome=...}``, rejections additionally
    into ``repro_scope_fallback_total{reason=...}`` keyed by the same
    reason slugs recorded in :attr:`StatePlan.fallback_reasons`, and
    accepted fusion chains observe their member count into the
    ``repro_fusion_chain_length`` histogram.
    """
    with TRACER.span("analyze", "prepare") as span:
        span.set("state", state.label)
        plans: Dict[int, Optional[ScopePlan]] = {}
        reasons: Dict[int, str] = {}
        for node in order:
            if not isinstance(node, MapEntry):
                continue
            children = [
                n for n in order if scopes.get(n) is node and not isinstance(n, MapExit)
            ]
            plan, reason = analyze_scope(state, node, children)
            plans[node.guid] = plan
            if reason is not None:
                reasons[node.guid] = reason
                _metric_inc(
                    "repro_scope_lowering_total", labels={"outcome": "fallback"}
                )
                _metric_inc("repro_scope_fallback_total", labels={"reason": reason})
            else:
                _metric_inc(
                    "repro_scope_lowering_total", labels={"outcome": "vectorized"}
                )
        chains: List[ChainPlan] = []
        if fuse:
            for chain in elementwise_scope_chains(state, order, scopes):
                chain_plan = analyze_chain(sdfg, state, chain, plans)
                if chain_plan is not None:
                    chains.append(chain_plan)
                    _metric_observe(
                        "repro_fusion_chain_length", len(chain_plan.member_guids)
                    )
    return StatePlan(
        state_label=state.label,
        scopes=plans,
        fallback_reasons=reasons,
        chains=chains,
    )


def analyze_program(sdfg: SDFG, fuse: bool = True) -> ProgramPlan:
    """Analyze every state of a program into one :class:`ProgramPlan`."""
    states: List[StatePlan] = []
    for state in sdfg.states():
        order = state.topological_sort()
        scopes = state.scope_dict()
        states.append(analyze_state(sdfg, state, order, scopes, fuse=fuse))
    return ProgramPlan(
        format=PLAN_FORMAT_VERSION,
        sdfg_name=sdfg.name,
        states=states,
        hoisted_symbols=(),
    )
