"""The execution-backend seam.

FuzzyFlow's workflow separates *what* a dataflow program computes from *how*
it is executed: every fuzzing trial only needs an
:class:`~repro.interpreter.executor.ExecutionResult` for a (program, inputs,
symbols) triple.  An :class:`ExecutionBackend` encapsulates one execution
strategy behind a two-phase API:

* :meth:`ExecutionBackend.prepare` performs all per-program work -- argument
  coercion plans, symbol binding, subset compilation, code generation -- and
  returns a :class:`CompiledProgram`,
* :meth:`CompiledProgram.run` executes the prepared program on concrete
  inputs.  Repeated trials on the same program (the fuzzing hot loop) pay the
  preparation cost once.

Backends are looked up by name through a registry so callers (the
differential fuzzer, the verifier, the sweep pipeline CLI) can thread a plain
string through process boundaries.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.interpreter.errors import ExecutionError
from repro.interpreter.executor import ExecutionResult
from repro.sdfg.sdfg import SDFG

__all__ = [
    "CompiledProgram",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "list_backends",
    "DEFAULT_BACKEND",
]

#: Name of the reference backend used when no selection is made.
DEFAULT_BACKEND = "interpreter"


class CompiledProgram(abc.ABC):
    """A program prepared for repeated execution by one backend."""

    def __init__(self, sdfg: SDFG) -> None:
        self.sdfg = sdfg

    @abc.abstractmethod
    def run(
        self,
        arguments: Optional[Mapping[str, Any]] = None,
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> ExecutionResult:
        """Execute the prepared program and return the final system state.

        Must raise the :mod:`repro.interpreter.errors` hierarchy for runtime
        failures (crashes, hangs, memory violations) so differential testing
        classifies trials identically across backends.
        """

    def run_batch(
        self,
        arguments_list: List[Mapping[str, Any]],
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> List[Union[ExecutionResult, ExecutionError]]:
        """Execute the program once per argument mapping (same symbols).

        Returns one outcome per trial, **in order**: the
        :class:`ExecutionResult` of a successful run or the
        :class:`~repro.interpreter.errors.ExecutionError` it raised --
        batch execution must never let one trial's crash mask its
        neighbours' verdicts.  Non-``ExecutionError`` exceptions (e.g.
        backend divergences) propagate.

        The default runs the trials serially through :meth:`run`; the
        batched backend overrides this to stack trials along a leading
        batch axis.
        """
        outcomes: List[Union[ExecutionResult, ExecutionError]] = []
        for arguments in arguments_list:
            try:
                outcomes.append(
                    self.run(arguments, symbols, collect_coverage=collect_coverage)
                )
            except ExecutionError as exc:
                outcomes.append(exc)
        return outcomes


class ExecutionBackend(abc.ABC):
    """One strategy for executing dataflow programs."""

    #: Registry name of the backend.
    name: str = "abstract"

    @abc.abstractmethod
    def prepare(self, sdfg: SDFG, max_transitions: int = 100_000) -> CompiledProgram:
        """Compile a program for repeated execution."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[[], ExecutionBackend]] = {}
_INSTANCES: Dict[str, ExecutionBackend] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register a backend factory under a name (overwrites silently)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def list_backends() -> List[str]:
    """Names of all registered execution backends."""
    return sorted(_FACTORIES)


def get_backend(backend: Union[str, ExecutionBackend]) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Besides plain registry names, ``cross:REF,CAND`` materializes a
    self-checking pair of any two registered backends (e.g.
    ``cross:compiled,interpreter``); the bare name ``cross`` remains the
    interpreter-vs-vectorized default.

    Instances are shared per name so backend-level caches (e.g. the
    vectorized backend's compiled-program cache) persist across callers
    within one process.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend.startswith("cross:"):
        if backend not in _INSTANCES:
            _INSTANCES[backend] = _make_cross_pair(backend)
        return _INSTANCES[backend]
    if backend not in _FACTORIES:
        raise KeyError(
            f"Unknown execution backend '{backend}' "
            f"(available: {', '.join(list_backends())}, "
            f"or 'cross:REF,CAND' for any pair)"
        )
    if backend not in _INSTANCES:
        _INSTANCES[backend] = _FACTORIES[backend]()
    return _INSTANCES[backend]


def _make_cross_pair(name: str) -> ExecutionBackend:
    """Build a ``cross:REF,CAND`` backend from two registered names."""
    from repro.backends.cross import CrossBackend

    parts = [p.strip() for p in name[len("cross:"):].split(",")]
    if len(parts) != 2 or not all(parts):
        raise KeyError(
            f"Invalid cross pair '{name}': expected 'cross:REF,CAND' with "
            f"exactly two backend names"
        )
    for part in parts:
        if part == "cross" or part.startswith("cross:"):
            raise KeyError(f"Cross pairs cannot nest ('{name}')")
        if part not in _FACTORIES:
            raise KeyError(
                f"Unknown execution backend '{part}' in cross pair '{name}' "
                f"(available: {', '.join(list_backends())})"
            )
    return CrossBackend(reference=parts[0], candidate=parts[1])
