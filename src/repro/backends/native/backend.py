"""The ``native`` backend: trial-batched execution with C-compiled kernels.

Extends the batched backend with a native tier: at prepare time the
``native-c`` emitter lowers eligible scopes and fused chains to C, the
translation unit is compiled once (or reloaded from the program's disk
artifact, keyed by the toolchain fingerprint), and the resulting kernels
run through zero-copy buffer pointers.  Everything the emitter rejects --
and any compile or load failure, including no toolchain at all -- runs the
inherited batched/compiled Python path per scope, bitwise identically.

Fallback is the parity mechanism, not an afterthought: the native setup
re-derives the exact same domain, bounds and geometry checks the Python
setup performs, and *any* failure (an out-of-bounds subset, a non-affine
index, a symbol value a double cannot represent exactly) simply defers to
the Python op, which re-derives everything and raises the authoritative
error.  A successful native setup implies the Python setup would have
succeeded too, so the only errors the native path raises itself are the
in-kernel math guards -- mapped back to the exact exception (type and
message) CPython's ``math`` module raises.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import faultinject
from repro.backends.batched import BatchedBackend, BatchedExecutor, BatchedProgram
from repro.backends.codegen.native_c import EXACT_INT_LIMIT, NativeKernel
from repro.backends.codegen.python_driver import _artifact_stamp
from repro.backends.native.bridge import KernelHandle, load_shared_object
from repro.backends.native.probe import probe_shared_object
from repro.backends.native.toolchain import (
    NativeCompileError,
    compile_shared_object,
    detect_toolchain,
)
from repro.backends.plan import PLAN_FORMAT_VERSION
from repro.interpreter.errors import TaskletExecutionError
from repro.interpreter.executor import _EVAL_GLOBALS
from repro.sdfg.nodes import MapEntry, MapExit
from repro.telemetry import TRACER as _TRACER
from repro.telemetry import observe as _metric_observe
from repro.telemetry import perf_counter as _perf_counter

__all__ = ["NativeBackend", "NativeProgram", "NativeExecutor"]

_EXC = {"ValueError": ValueError, "OverflowError": OverflowError}


class _NativeGeom:
    """One kernel's packed geometry for one (symbols, layout) signature.

    Holds *no* buffer references: geometry depends only on symbol values
    (the setup-dependency key) and on the buffers' shapes and strides (the
    layout signature), never on their contents or addresses -- so it is
    cached persistently across runs, and each call merely re-points the
    bound pointer block at the current store's arrays."""

    __slots__ = ("call", "iterations", "scalars")

    def __init__(self, call, iterations: int, scalars: np.ndarray) -> None:
        self.call = call
        self.iterations = iterations
        self.scalars = scalars


def _affine_offsets(
    idx: List[Any], elem_strides: List[int], nparams: int
) -> Optional[Tuple[int, List[int]]]:
    """Decompose per-dimension gather indices into ``base + sum(coef*i)``.

    ``idx`` is exactly what the Python setup evaluates (broadcast index
    grids / scalars); the decomposition is verified element-for-element
    against the arrays, so a non-affine index simply returns ``None`` (the
    scope then runs on the Python path)."""
    base = 0
    coefs = [0] * nparams
    for d, v in enumerate(idx):
        ed = elem_strides[d]
        if isinstance(v, np.ndarray):
            if v.ndim > nparams:
                return None
            off = nparams - v.ndim
            flat = v.reshape(-1)
            if flat.size == 0:
                return None
            b = int(flat[0])
            cd = [0] * v.ndim
            for a in range(v.ndim):
                if v.shape[a] > 1:
                    unit = [0] * v.ndim
                    unit[a] = 1
                    cd[a] = int(v[tuple(unit)]) - b
            expected = np.array(b, dtype=np.int64)
            for a in range(v.ndim):
                if cd[a]:
                    ushape = [1] * v.ndim
                    ushape[a] = v.shape[a]
                    expected = expected + cd[a] * np.arange(
                        v.shape[a], dtype=np.int64
                    ).reshape(ushape)
            if not np.array_equal(v, np.broadcast_to(expected, v.shape)):
                return None
            base += ed * b
            for a in range(v.ndim):
                coefs[off + a] += ed * cd[a]
        else:
            base += ed * int(v)
    return base, coefs


class NativeExecutor(BatchedExecutor):
    """A :class:`BatchedExecutor` whose scope/chain ops try a compiled C
    kernel first and defer to the inherited Python ops on any miss."""

    EMITTER_NAME = "native-c"

    def __init__(self, *args, **kwargs) -> None:
        #: ``("scope"|"chain", entry guid) -> (kernel, handle)``.  Created
        #: before ``super().__init__`` because the op closures built there
        #: consult it (late-bound) at call time.
        self._native_kernels: Dict[Tuple[str, int], Tuple[NativeKernel, KernelHandle]] = {}
        #: Build diagnostics: kernel/reject counts, toolchain fingerprint,
        #: the assembled C source and ``.so`` bytes (for artifacts), and
        #: the failure mode when the tier is unavailable.
        self.native_build: Dict[str, Any] = {}
        self._native_lib = None
        #: Persistent geometry cache, ``id(kernel) -> {signature: geom}``
        #: (see :class:`_NativeGeom` for why it survives across runs).
        self._native_geoms: Dict[int, Dict[Any, Optional[_NativeGeom]]] = {}
        #: Per-run fast path: ``id(kernel) -> (run id, batched, depkey,
        #: geom, ptrs)``.  Within one run the store's arrays are stable, so
        #: repeated invocations (loop iterations) skip the layout signature
        #: and pointer rebuild entirely.
        self._native_memo: Dict[int, Tuple] = {}
        self._native_run = 0
        super().__init__(*args, **kwargs)
        self.stats["native"] = 0
        self._prepare_native(kwargs.get("artifact"))

    # .................................................................. #
    # Preparation: emit, compile (or reload), load
    # .................................................................. #
    def _prepare_native(self, artifact: Optional[Dict[str, Any]]) -> None:
        kernels: List[NativeKernel] = []
        kmap: Dict[Tuple[str, int], NativeKernel] = {}
        rejected: Dict[str, str] = {}
        for state in self._compiled_states:
            table = self._table_for(state)
            order = self._state_order(state)
            scopes = self._scope_cache[id(state)]
            for node in order:
                if scopes.get(node) is not None or isinstance(node, MapExit):
                    continue
                if not isinstance(node, MapEntry):
                    continue
                if node.guid in table.members:
                    continue
                fused = table.heads.get(node.guid)
                if fused is not None:
                    kr, reason = self.emitter.chain_kernel(
                        self.sdfg, fused, f"k{len(kernels)}"
                    )
                    key = ("chain", node.guid)
                else:
                    plan = table.plans.get(node.guid)
                    if plan is None:
                        continue  # analyzer-rejected: interpreter territory
                    kr, reason = self.emitter.scope_kernel(
                        self.sdfg, plan, f"k{len(kernels)}"
                    )
                    key = ("scope", node.guid)
                if kr is None:
                    rejected[node.label] = reason or "native-emit-error"
                else:
                    # Bounds-check-only containers (internal chain writes
                    # with no buffer slot): part of the layout signature.
                    kr.check_data = tuple(
                        spec.data
                        for kind, spec, _bi in kr.accesses
                        if kind == "check"
                    )
                    kernels.append(kr)
                    kmap[key] = kr
        self.native_build = {
            "kernels": len(kernels),
            "rejected": rejected,
            "fingerprint": None,
            "c_source": None,
            "so": None,
            "cache": "none",
            "error": None,
        }
        if not kernels:
            return
        toolchain = detect_toolchain()
        if toolchain is None:
            self.native_build["error"] = "no-toolchain"
            return
        fingerprint = toolchain.fingerprint()
        self.native_build["fingerprint"] = fingerprint
        source = self.emitter.assemble_source(kernels)
        self.native_build["c_source"] = source

        so_bytes: Optional[bytes] = None
        if artifact:
            native = artifact.get("native")
            if (
                isinstance(native, dict)
                and native.get("c_source") == source
                and artifact.get("toolchain") == fingerprint
            ):
                try:
                    so_bytes = base64.b64decode(native["so"])
                    self.native_build["cache"] = "artifact"
                except Exception:  # noqa: BLE001 - corrupt cache: recompile
                    so_bytes = None
        if so_bytes is None:
            try:
                with _TRACER.span("native.compile", "native") as span:
                    span.set("kernels", len(kernels))
                    t0 = _perf_counter()
                    so_bytes = compile_shared_object(toolchain, source)
                    _metric_observe(
                        "repro_native_compile_seconds", _perf_counter() - t0
                    )
                self.native_build["cache"] = "compiled"
            except NativeCompileError as exc:
                self.native_build["error"] = f"compile: {exc}"
                return
        probe_failed: frozenset = frozenset()
        if self.native_build["cache"] == "compiled":
            # Freshly compiled bytes have never executed: first-call each
            # kernel in a disposable subprocess so a segfaulting kernel
            # kills the probe child, not this process.  Artifact reloads
            # skip this -- they already survived real calls.
            probe_failed = probe_shared_object(
                so_bytes, [k.fn_name for k in kernels]
            )
            if probe_failed:
                self.native_build["probe_failed"] = sorted(probe_failed)
                if len(probe_failed) == len(kernels):
                    self.native_build["error"] = "probe: all kernels failed"
                    self.native_build["cache"] = "none"
                    return
        try:
            with _TRACER.span("native.link", "native") as span:
                span.set("kernels", len(kernels))
                lib = load_shared_object(so_bytes, [k.fn_name for k in kernels])
        except OSError as exc:
            self.native_build["error"] = f"load: {exc}"
            self.native_build["cache"] = "none"
            return
        self.native_build["so"] = so_bytes
        self._native_lib = lib
        for key, kr in kmap.items():
            if kr.fn_name in probe_failed:
                continue  # its scope runs the Python path, bitwise identical
            handle = lib.get(kr.fn_name)
            if handle is not None:
                self._native_kernels[key] = (kr, handle)

    # .................................................................. #
    # Op construction: try native, defer to the inherited op otherwise
    # .................................................................. #
    def _make_scope_op(self, state, entry, plan):
        base = super()._make_scope_op(state, entry, plan)
        if plan is None:
            return base
        key = ("scope", entry.guid)

        def op(symbols, _base=base, _key=key, _plan=plan):
            native = self._native_kernels.get(_key)
            if native is None or not _plan.usable:
                _base(symbols)
                return
            if not self._run_native(native[0], native[1], symbols):
                _base(symbols)

        return op

    def _make_fused_op(self, state, fused, table):
        base = super()._make_fused_op(state, fused, table)
        key = ("chain", fused.member_guids[0])

        def op(symbols, _base=base, _key=key, _fused=fused):
            native = self._native_kernels.get(_key)
            if native is None or not _fused.usable:
                _base(symbols)
                return
            if not self._run_native(native[0], native[1], symbols):
                _base(symbols)

        return op

    def _make_batched_scope_op(self, plan):
        base = super()._make_batched_scope_op(plan)
        key = ("scope", plan.entry.guid)

        def op(symbols, _base=base, _key=key, _plan=plan):
            native = self._native_kernels.get(_key)
            if native is None or not _plan.usable:
                _base(symbols)
                return
            if not self._run_native(native[0], native[1], symbols):
                _base(symbols)

        return op

    def _make_batched_fused_op(self, fused):
        base = super()._make_batched_fused_op(fused)
        key = ("chain", fused.member_guids[0])

        def op(symbols, _base=base, _key=key, _fused=fused):
            native = self._native_kernels.get(_key)
            if native is None or not _fused.usable:
                _base(symbols)
                return
            if not self._run_native(native[0], native[1], symbols):
                _base(symbols)

        return op

    # .................................................................. #
    # Native invocation
    # .................................................................. #
    def _setup(self, arguments: Dict[str, Any], symbols: Dict[str, Any]) -> None:
        # A fresh store invalidates the per-run pointer memo (the geometry
        # cache itself survives: it holds offsets, not addresses).
        self._native_run += 1
        super()._setup(arguments, symbols)

    def _run_native(
        self, kr: NativeKernel, handle: KernelHandle, symbols: Dict[str, Any]
    ) -> bool:
        """Attempt one native execution; ``False`` defers to Python.

        Raises only the in-kernel guard errors (the exact exception the
        interpreter's per-element ``math`` call would raise)."""
        if not kr.usable or not kr.bound.usable:
            return False
        batched = self._batched_mode
        kid = id(kr)
        # The geometry cache key: symbol values the setup depends on, plus
        # the exact memory layout of every container the kernel touches
        # (buffers and bounds-check-only containers alike).  Everything the
        # setup derives -- domain, bounds verdicts, affine offsets -- is a
        # pure function of these, so entries survive across runs; only the
        # buffer *addresses* change per run.  Within one run (one store,
        # one trial view) even the addresses are stable, so the per-run
        # memo skips the signature and pointer rebuild on repeat calls --
        # the loop-iteration fast path.
        try:
            deps = kr.setup_deps
            depkey = (
                tuple([symbols.get(name) for name in deps]) if deps else ()
            )
            memo = self._native_memo.get(kid)
            if (
                memo is not None
                and memo[0] == self._native_run
                and memo[1] == self._setup_epoch
                and memo[2] == batched
                and memo[3] == depkey
            ):
                geom, ptrs = memo[4], memo[5]
            else:
                store = self._store
                arrays = []
                for name in kr.buffers:
                    arr = store.get(name)
                    if arr is None:
                        return False
                    arrays.append(arr)
                sig = [batched]
                sig.extend(depkey)
                for arr in arrays:
                    sig.append(arr.shape)
                    sig.append(arr.strides)
                for name in kr.check_data:
                    arr = store.get(name)
                    if arr is None:
                        return False
                    sig.append(arr.shape)
                    sig.append(arr.strides)
                key = tuple(sig)
                cache = self._native_geoms.setdefault(kid, {})
                if key in cache:
                    geom = cache[key]
                else:
                    try:
                        geom = self._native_geometry(kr, handle, symbols)
                    except Exception:  # noqa: BLE001 - Python raises the real error
                        geom = None
                    if len(cache) > 64:
                        cache.clear()  # fuzzing across many sizes: stay bounded
                    cache[key] = geom
                ptrs = (
                    [arr.ctypes.data for arr in arrays]
                    if geom is not None
                    else None
                )
                self._native_memo[kid] = (
                    self._native_run,
                    self._setup_epoch,
                    batched,
                    depkey,
                    geom,
                    ptrs,
                )
        except TypeError:
            return False  # unhashable symbol value: Python path handles it
        if geom is None:
            return False
        scalars = geom.scalars
        for i, name in enumerate(kr.extras):
            if name not in symbols:
                return False  # Python path raises the NameError taxonomy
            value = symbols[name]
            if isinstance(value, (bool, np.bool_)):
                scalars[i] = 1.0 if value else 0.0
            elif isinstance(value, (int, np.integer)):
                iv = int(value)
                if abs(iv) > EXACT_INT_LIMIT:
                    return False
                scalars[i] = float(iv)
            elif isinstance(value, (float, np.floating)):
                scalars[i] = float(value)
            else:
                return False
        # Outside the retire-guard: an injected exception propagates as a
        # task error (like any executor failure); crash faults act like a
        # real in-kernel segfault.
        faultinject.hit("native.call", key=kr.fn_name)
        try:
            rc = geom.call(ptrs, self._batch if batched else 1)
        except Exception:  # noqa: BLE001 - invocation-level failure: retire
            kr.usable = False
            return False
        if rc:
            if rc - 1 >= len(kr.guards):
                kr.usable = False
                return False
            guard = kr.guards[rc - 1]
            raise TaskletExecutionError(
                guard.label, _EXC[guard.exc](guard.message)
            )
        if not batched and self._coverage is not None:
            # Counts only feed coverage; skip the per-guid bookkeeping on
            # plain runs (batched ops discard counts either way).
            for guid in kr.count_guids:
                self._tasklet_counts[guid] = (
                    self._tasklet_counts.get(guid, 0) + geom.iterations
                )
        self.stats["native"] += 1
        return True

    def _native_geometry(
        self, kr: NativeKernel, handle: KernelHandle, bindings: Dict[str, Any]
    ) -> Optional[_NativeGeom]:
        """Geometry packing for one kernel (the native twin of the Python
        scope/fused setup).

        Performs every check the Python setup performs (domain, unknown
        containers, index bounds, write dimensionality) -- a failure either
        raises (caught by the caller) or returns ``None``; both defer to
        the Python op, which reproduces the authoritative error.  Success
        here therefore implies the Python path would have succeeded."""
        axes, _shape_full, iterations, grids = self._resolve_domain(
            kr.entry, bindings
        )
        if iterations == 0 or len(axes) != kr.nparams:
            # Empty domains skip all checks (interpreter parity); the
            # Python op handles them with the same cached-setup cost.
            return None
        nparams = kr.nparams
        idx_ns = dict(bindings)
        idx_ns.update(grids)
        batched = self._batched_mode

        begins: List[int] = []
        steps: List[int] = []
        for vals in axes:
            b = int(vals[0])
            s = int(vals[1]) - b if len(vals) > 1 else 0
            last = b + s * (len(vals) - 1)
            if abs(b) > EXACT_INT_LIMIT or abs(last) > EXACT_INT_LIMIT:
                return None  # parameter values must be double-exact
            begins.append(b)
            steps.append(s)
        geom: List[int] = []
        for b, s in zip(begins, steps):
            geom.append(b)
            geom.append(s)

        arrays: List[np.ndarray] = []
        shapes: Dict[str, Tuple[int, ...]] = {}
        strides: Dict[str, List[int]] = {}
        bstrides: List[int] = []
        for name in kr.buffers:
            arr = self._store.get(name)
            if arr is None or arr.dtype != np.float64:
                return None
            if batched:
                if arr.ndim < 1 or arr.strides[0] % 8:
                    return None
                shape, byte_strides = arr.shape[1:], arr.strides[1:]
                bstrides.append(arr.strides[0] // 8)
            else:
                shape, byte_strides = arr.shape, arr.strides
                bstrides.append(0)
            elem = []
            for s in byte_strides:
                if s % 8:
                    return None
                elem.append(s // 8)
            shapes[name] = tuple(shape)
            strides[name] = elem
            arrays.append(arr)

        for kind, spec, _bi in kr.accesses:
            arr = self._store.get(spec.data)
            if arr is None:
                return None  # Python path raises the unknown-container error
            if kind == "gather":
                idx = self._index_arrays(spec.idx_code, idx_ns)
                self._check_vector_bounds(
                    spec.data, spec.subset_str, idx, shapes[spec.data]
                )
                dec = _affine_offsets(idx, strides[spec.data], nparams)
                if dec is None:
                    return None
                base, coefs = dec
                geom.append(base)
                geom.extend(coefs)
            else:  # "write" or "check"
                if kind == "check":
                    shape = arr.shape[1:] if batched else arr.shape
                else:
                    shape = shapes[spec.data]
                index_1d: List[np.ndarray] = []
                for dkind, payload in spec.dims:
                    if dkind == "param":
                        axis, offset = payload
                        index_1d.append(
                            axes[axis] + offset if offset else axes[axis]
                        )
                    else:
                        c = int(eval(payload, _EVAL_GLOBALS, bindings))  # noqa: S307
                        index_1d.append(np.asarray([c], dtype=np.int64))
                self._check_vector_bounds(
                    spec.data, spec.subset_str, index_1d, shape
                )
                if kind == "write":
                    elem = strides[spec.data]
                    base = 0
                    coefs = [0] * nparams
                    for d, (dkind, payload) in enumerate(spec.dims):
                        if dkind == "param":
                            axis, offset = payload
                            base += elem[d] * (begins[axis] + offset)
                            coefs[axis] += elem[d] * steps[axis]
                        else:
                            base += elem[d] * int(index_1d[d][0])
                    geom.append(base)
                    geom.extend(coefs)

        counts_arr = np.asarray([len(vals) for vals in axes], dtype=np.int64)
        geom_arr = np.asarray(geom, dtype=np.int64)
        scalars_arr = np.zeros(max(len(kr.extras), 1), dtype=np.float64)
        bstrides_arr = np.asarray(bstrides or [0], dtype=np.int64)
        call = handle.bind(
            len(kr.buffers), counts_arr, geom_arr, scalars_arr, bstrides_arr
        )
        return _NativeGeom(call, iterations, scalars_arr)


class NativeProgram(BatchedProgram):
    """A batched program whose artifact additionally carries the native
    tier: the assembled C source and compiled shared object, stamped with
    the toolchain fingerprint that produced them."""

    executor_class = NativeExecutor
    #: Disk-cache entries live beside -- not on top of -- the compiled and
    #: batched backends' artifacts: the native artifact embeds a shared
    #: object those backends would drag around for nothing.
    artifact_variant = "-native"

    @classmethod
    def check_artifact(cls, artifact: Dict[str, Any]) -> bool:
        """Artifact validity *including* the toolchain stamp: the stamp's
        toolchain must equal this machine's current fingerprint (``None``
        when no compiler is present), so a stale or missing toolchain field
        is a miss and the entry is rewritten."""
        stamp = _artifact_stamp()
        toolchain = detect_toolchain()
        stamp["toolchain"] = (
            toolchain.fingerprint() if toolchain is not None else None
        )
        if not all(k in artifact and artifact[k] == v for k, v in stamp.items()):
            return False
        if artifact.get("plan_format") != PLAN_FORMAT_VERSION:
            return False
        if artifact.get("mode") not in ("structured", "dispatch", "interpreted"):
            return False
        native = artifact.get("native")
        if native is not None:
            if stamp["toolchain"] is None:
                return False
            if not (
                isinstance(native, dict)
                and isinstance(native.get("c_source"), str)
                and isinstance(native.get("so"), str)
            ):
                return False
        return True

    def artifact(self) -> Optional[Dict[str, Any]]:
        art = super().artifact()
        if art is None:
            return None
        build = self.executor.native_build
        art["toolchain"] = build.get("fingerprint")
        if build.get("so") is not None and build.get("c_source"):
            art["native"] = {
                "c_source": build["c_source"],
                "so": base64.b64encode(build["so"]).decode("ascii"),
            }
        return art


class NativeBackend(BatchedBackend):
    """Trial batching plus a native C kernel tier: fused chains and
    fixed-trip affine loop nests compile to a shared object at prepare
    time (cached on disk per toolchain fingerprint); everything else --
    and every machine without a C compiler -- runs the batched backend's
    Python path bitwise identically."""

    name = "native"
    program_class = NativeProgram
