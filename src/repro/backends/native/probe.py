"""First-call crash containment for freshly compiled kernel libraries.

A freshly compiled shared object has never executed: a toolchain bug, a
mis-linked symbol, or a codegen defect can segfault on the very first call
and take the whole sweep process down with it.  This module probes such a
library in a **disposable subprocess** before the sweep process ever loads
it: each kernel is invoked once with zero-trip geometry (see
:func:`~repro.backends.native.bridge.zero_trip_call` -- no loop body runs,
no buffer is dereferenced).  A kernel that crashes or hangs kills only the
probe child; the parent marks it failed and the backend excludes it from
the native tier, so its scope runs the bitwise-identical Python path.

Protocol: the parent pipes the base64 shared object over stdin and passes
kernel names on argv; the child prints ``loaded`` once the library is
mapped, then ``ok <fn>`` per surviving kernel.  A child killed by a signal
condemns the first un-acknowledged kernel -- the parent respawns a child
for the remaining names, so one bad kernel never poisons its siblings.
A child that fails *before* ``loaded`` for a non-signal reason (e.g. an
import error in a stripped-down environment) makes the probe inconclusive:
no kernel is condemned, matching the ``REPRO_NATIVE_PROBE=0`` opt-out.

Libraries reloaded from the disk artifact cache skip probing -- they were
probed (and survived real calls) when first compiled.  Results are memoized
per library digest, so one process never probes the same bytes twice.

The child hits the ``native.probe`` fault point per kernel, so chaos tests
can deterministically crash the probe and assert the fallback engages.
"""

from __future__ import annotations

import base64
import hashlib
import os
import subprocess
import sys
from typing import Dict, FrozenSet, List, Sequence, Set

__all__ = ["PROBE_ENV", "probe_shared_object"]

#: Set to ``0`` to skip probing (trust every freshly compiled kernel).
PROBE_ENV = "REPRO_NATIVE_PROBE"

#: A probe child that outlives this is hung (e.g. a ``hang`` fault or a
#: kernel spinning in its prologue): kill it, condemn the kernel.
_TIMEOUT_SECONDS = 30.0

#: sha256(so_bytes) -> failed kernel names; one probe per library per process.
_memo: Dict[str, FrozenSet[str]] = {}


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    # The child must import repro regardless of how the parent found it
    # (installed package vs. PYTHONPATH vs. sys.path manipulation).
    pkg_root = os.path.dirname(  # .../src, four levels up from this file
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        pkg_root if not existing else pkg_root + os.pathsep + existing
    )
    return env


def probe_shared_object(
    so_bytes: bytes, fn_names: Sequence[str]
) -> FrozenSet[str]:
    """Probe every kernel of a compiled library; return the failed names.

    Failed means the zero-trip first call crashed the probe child (signal
    death) or hung it past the probe deadline.  An empty result means every
    kernel survived -- or probing is disabled (``REPRO_NATIVE_PROBE=0``) or
    inconclusive (child could not start), both of which fall back to
    trusting the library, exactly as every build did before probing existed.
    """
    if os.environ.get(PROBE_ENV, "").strip() == "0" or not fn_names:
        return frozenset()
    digest = hashlib.sha256(so_bytes).hexdigest()
    cached = _memo.get(digest)
    if cached is not None:
        return cached
    failed: Set[str] = set()
    remaining: List[str] = list(fn_names)
    encoded = base64.b64encode(so_bytes)
    env = _child_env()
    while remaining:
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.backends.native.probe",
                 *remaining],
                input=encoded,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                timeout=_TIMEOUT_SECONDS,
                env=env,
            )
        except subprocess.TimeoutExpired as exc:
            # Condemn whichever kernel the hung child had not acknowledged.
            out = exc.stdout or b""
            ok = _acknowledged(out)
            survivors = [n for n in remaining if n in ok]
            culprit = next((n for n in remaining if n not in ok), None)
            if culprit is not None:
                failed.add(culprit)
            remaining = [
                n for n in remaining if n not in ok and n != culprit
            ]
            if not survivors and culprit is None:
                break  # no progress possible
            continue
        except OSError:
            break  # cannot spawn children at all: inconclusive
        out = proc.stdout or b""
        ok = _acknowledged(out)
        if b"loaded" not in out.splitlines():
            if proc.returncode and proc.returncode > 0:
                break  # import/load error, not a kernel crash: inconclusive
            # Signal death before the library even mapped: every kernel in
            # this library is suspect.
            failed.update(remaining)
            break
        if proc.returncode == 0:
            failed.update(n for n in remaining if n not in ok)
            break
        # Signal death mid-probe: the first un-acknowledged kernel crashed;
        # respawn for the ones after it.
        culprit = next((n for n in remaining if n not in ok), None)
        if culprit is None:
            break
        failed.add(culprit)
        remaining = [n for n in remaining if n not in ok and n != culprit]
    result = frozenset(failed)
    _memo[digest] = result
    return result


def _acknowledged(stdout: bytes) -> Set[str]:
    ok: Set[str] = set()
    for line in stdout.splitlines():
        if line.startswith(b"ok "):
            ok.add(line[3:].decode("utf-8", "replace").strip())
    return ok


def _child_main(fn_names: List[str]) -> int:
    """Probe-child body: load the piped library, zero-trip each kernel."""
    from repro import faultinject
    from repro.backends.native.bridge import load_shared_object, zero_trip_call

    so_bytes = base64.b64decode(sys.stdin.buffer.read())
    try:
        lib = load_shared_object(so_bytes, list(fn_names))
    except OSError:
        return 1
    print("loaded", flush=True)
    for name in fn_names:
        faultinject.hit("native.probe", key=name)
        handle = lib.get(name)
        if handle is None:
            continue  # never acknowledged -> parent marks it failed
        zero_trip_call(handle)  # the test is surviving the call at all
        print(f"ok {name}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(_child_main(sys.argv[1:]))
