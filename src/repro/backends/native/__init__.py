"""Runtime bridge for the native C kernel tier.

Three small modules with a strict division of labor:

* :mod:`repro.backends.native.toolchain` -- compiler detection,
  fingerprinting and shared-object compilation (no loading);
* :mod:`repro.backends.native.bridge` -- the *only* module in the
  backends tree that loads shared objects (enforced by ``make
  lint-arch``);
* :mod:`repro.backends.native.backend` -- the ``native`` backend:
  executor, program (artifact contract) and backend registration glue.

The C code itself is produced by the ``native-c`` emitter in the codegen
layer (:mod:`repro.backends.codegen.native_c`); this package only builds,
loads and invokes it.
"""

from repro.backends.native.backend import (
    NativeBackend,
    NativeExecutor,
    NativeProgram,
)
from repro.backends.native.toolchain import (
    CC_ENV,
    NATIVE_CFLAGS,
    Toolchain,
    detect_toolchain,
)

__all__ = [
    "NativeBackend",
    "NativeExecutor",
    "NativeProgram",
    "CC_ENV",
    "NATIVE_CFLAGS",
    "Toolchain",
    "detect_toolchain",
]
