"""The ctypes bridge: the only module in the backends tree that loads
shared objects (``tools/lint_arch.py`` enforces this).

Keeping every ``dlopen`` and foreign-function detail here gives the rest of
the native tier a tiny, auditable surface: the emitter produces C source and
a manifest, the toolchain module produces ``.so`` bytes, and this module
turns those bytes into per-kernel invocation closures over zero-copy NumPy
buffer pointers.

Every generated kernel shares one signature::

    int64_t kernel(double **bufs, const int64_t *counts,
                   const int64_t *geom, const double *scalars,
                   int64_t nbatch, const int64_t *bstrides);

returning ``0`` on success or ``1 + guard_index`` when a math-domain guard
fired (the caller maps the index back to the exception the interpreter
would have raised).  All geometry lives in caller-owned ``int64`` /
``double`` NumPy arrays; :meth:`KernelHandle.bind` captures their pointers
(and the arrays themselves, keeping the memory alive) so the per-call cost
is a single foreign call with one varying integer argument.
"""

from __future__ import annotations

import ctypes
import os
import tempfile
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "KernelHandle",
    "LoadedLibrary",
    "load_shared_object",
    "zero_trip_call",
]

_ARGTYPES = [
    ctypes.POINTER(ctypes.c_void_p),  # double **bufs
    ctypes.POINTER(ctypes.c_int64),   # const int64_t *counts
    ctypes.POINTER(ctypes.c_int64),   # const int64_t *geom
    ctypes.POINTER(ctypes.c_double),  # const double *scalars
    ctypes.c_int64,                   # int64_t nbatch
    ctypes.POINTER(ctypes.c_int64),   # const int64_t *bstrides
]


class KernelHandle:
    """One resolved kernel function of a loaded library."""

    def __init__(self, cfunc) -> None:
        self._fn = cfunc

    def bind(
        self,
        nbufs: int,
        counts: np.ndarray,
        geom: np.ndarray,
        scalars: np.ndarray,
        bstrides: np.ndarray,
    ) -> Callable[[Sequence[int], int], int]:
        """A geometry-bound invocation closure:
        ``call(buffer_ptrs, nbatch) -> return code``.

        The NumPy arrays are captured by reference -- the caller may rewrite
        ``scalars`` in place between calls (per-run symbol values) without
        rebinding.  Buffer addresses are *per call* (``ndarray.ctypes.data``
        of the current run's store arrays): the pointer block is reused and
        re-pointed, so one geometry binding serves every run that shares the
        same layout.  The caller guarantees the owning arrays are alive for
        the duration of each call.
        """
        bufs = (ctypes.c_void_p * max(nbufs, 1))()
        # Pre-cast once: handing ctypes an exact POINTER instance per call
        # skips the per-argument conversion machinery.
        c_bufs = ctypes.cast(bufs, ctypes.POINTER(ctypes.c_void_p))
        c_counts = counts.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))
        c_geom = geom.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))
        c_scalars = scalars.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        c_bstrides = bstrides.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))
        fn = self._fn
        # Keep the geometry arrays alive for as long as the closure lives.
        refs = (counts, geom, scalars, bstrides)
        last: List[Optional[Sequence[int]]] = [None]

        def call(buffer_ptrs: Sequence[int], nbatch: int, _refs=refs) -> int:
            # Callers never mutate a pointer list in place, so identity
            # means the block already holds these addresses (the common
            # loop-iteration case re-passes the memoized list object).
            if buffer_ptrs is not last[0]:
                for i, ptr in enumerate(buffer_ptrs):
                    bufs[i] = ptr
                last[0] = buffer_ptrs
            return fn(c_bufs, c_counts, c_geom, c_scalars, nbatch, c_bstrides)

        return call


class LoadedLibrary:
    """A loaded kernel library with its resolved function handles."""

    def __init__(self, lib, handles: Dict[str, KernelHandle]) -> None:
        self._lib = lib
        self._handles = handles

    def get(self, fn_name: str) -> Optional[KernelHandle]:
        return self._handles.get(fn_name)


def zero_trip_call(handle: KernelHandle) -> int:
    """Invoke a kernel once with zero-trip geometry.

    Every count is zero and ``nbatch`` is zero, so no loop body executes and
    no buffer is ever dereferenced -- the call exercises only symbol
    resolution, the calling convention, and the kernel prologue.  This is
    the first-call probe the disposable probe subprocess runs against a
    freshly compiled library: a miscompiled or mis-linked kernel that would
    take the process down does so *there*, not in the sweep process.  The
    scratch blocks are oversized (64 buffer slots, 32 counts, 256 geometry
    words) so any generated kernel's prologue reads land in owned memory.
    """
    bufs = (ctypes.c_void_p * 64)()
    counts = (ctypes.c_int64 * 32)()
    geom = (ctypes.c_int64 * 256)()
    scalars = (ctypes.c_double * 64)()
    bstrides = (ctypes.c_int64 * 64)()
    return int(
        handle._fn(
            ctypes.cast(bufs, ctypes.POINTER(ctypes.c_void_p)),
            ctypes.cast(counts, ctypes.POINTER(ctypes.c_int64)),
            ctypes.cast(geom, ctypes.POINTER(ctypes.c_int64)),
            ctypes.cast(scalars, ctypes.POINTER(ctypes.c_double)),
            0,
            ctypes.cast(bstrides, ctypes.POINTER(ctypes.c_int64)),
        )
    )


def load_shared_object(
    so_bytes: bytes, fn_names: List[str]
) -> LoadedLibrary:
    """Load compiled kernel bytes and resolve the named functions.

    The bytes are written to a private temporary file, ``dlopen``-ed, and
    the file unlinked immediately (POSIX keeps the mapping alive), so
    nothing persists outside the disk cache.  Raises ``OSError`` when the
    object cannot be loaded or a function is missing -- callers treat any
    failure as "no native tier" and fall back.
    """
    fd, path = tempfile.mkstemp(prefix="repro-native-", suffix=".so")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(so_bytes)
        lib = ctypes.CDLL(path)
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
    handles: Dict[str, KernelHandle] = {}
    for name in fn_names:
        try:
            cfunc = getattr(lib, name)
        except AttributeError as exc:
            raise OSError(f"kernel '{name}' missing from shared object") from exc
        cfunc.restype = ctypes.c_int64
        cfunc.argtypes = _ARGTYPES
        handles[name] = KernelHandle(cfunc)
    return LoadedLibrary(lib, handles)
