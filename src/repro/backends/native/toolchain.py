"""C toolchain detection and shared-object compilation for the native tier.

The native backend only ever *optionally* has a compiler: detection resolves
``cc``/``gcc``/``clang`` from ``PATH`` (or the single compiler named by the
``REPRO_NATIVE_CC`` environment variable, which doubles as a force-disable
switch when pointed at a nonexistent path) and probes it once per process.
Everything downstream treats ``None`` as "no toolchain": the backend then
runs bitwise identically on the pure-Python path.

A :class:`Toolchain` carries the resolved compiler path, its ``--version``
banner and the exact flag set; :meth:`Toolchain.fingerprint` is the identity
persisted in disk-cache artifact stamps, so an artifact built by a different
compiler (or different flags) is a cache miss, never a silently reused
binary.

The flag set is part of the bitwise-parity contract:

* ``-ffp-contract=off`` forbids FMA contraction (a fused multiply-add rounds
  once where NumPy rounds twice);
* ``-fno-builtin`` stops the compiler from constant-folding libm calls with
  its own (correctly-rounded) soft-float -- the generated code must call the
  very same ``libm`` the interpreter's ``math`` module calls;
* no ``-ffast-math`` ever: reassociation would change results.  ``-O3``
  is safe under that constraint: auto-vectorizing *across* independent
  elementwise lanes preserves each lane's operation order exactly, and the
  compiler never vectorizes an in-order FP reduction (the WCR tail)
  without ``-fassociative-math``.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "CC_ENV",
    "NATIVE_CFLAGS",
    "NativeCompileError",
    "Toolchain",
    "detect_toolchain",
    "compile_shared_object",
]

#: Environment variable naming the C compiler to use.  When set, it is the
#: *only* candidate: pointing it at a nonexistent path disables the native
#: tier entirely (the documented force-disable switch for tests and for
#: machines whose system compiler should not be trusted).
CC_ENV = "REPRO_NATIVE_CC"

#: Compiler flags, in order.  Changing these changes results: they are part
#: of the toolchain fingerprint stamped into disk artifacts.
NATIVE_CFLAGS: Tuple[str, ...] = (
    "-O3",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-builtin",
)


class NativeCompileError(Exception):
    """The C compiler was present but failed to produce a shared object."""


@dataclass(frozen=True)
class Toolchain:
    """A probed C compiler: path, version banner, and the flag set."""

    cc: str
    version: str
    flags: Tuple[str, ...] = NATIVE_CFLAGS

    def fingerprint(self) -> Dict[str, Any]:
        """JSON-safe identity for artifact stamps (path + version + flags)."""
        return {"cc": self.cc, "version": self.version, "flags": list(self.flags)}


#: Per-process detection cache, keyed by the ``REPRO_NATIVE_CC`` value so
#: tests that repoint the variable re-probe instead of seeing a stale result.
_DETECTED: Dict[str, Optional[Toolchain]] = {}


def detect_toolchain() -> Optional[Toolchain]:
    """The usable C toolchain, or ``None`` when no compiler answers."""
    key = os.environ.get(CC_ENV, "")
    if key not in _DETECTED:
        _DETECTED[key] = _probe(key)
    return _DETECTED[key]


def _probe(override: str) -> Optional[Toolchain]:
    candidates = [override] if override else ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path is None:
            continue
        try:
            proc = subprocess.run(
                [path, "--version"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                timeout=30,
                check=False,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if proc.returncode != 0:
            continue
        banner = proc.stdout.decode("utf-8", errors="replace").splitlines()
        return Toolchain(cc=path, version=banner[0].strip() if banner else "")
    return None


def compile_shared_object(toolchain: Toolchain, c_source: str) -> bytes:
    """Compile one C translation unit into a shared object, returned as bytes.

    The build happens in a private temporary directory (concurrent workers
    never race on paths); the caller persists the bytes (disk cache) and
    loads them through :mod:`repro.backends.native.bridge`.  Raises
    :class:`NativeCompileError` on any compiler failure.
    """
    with tempfile.TemporaryDirectory(prefix="repro-native-") as tmpdir:
        src = os.path.join(tmpdir, "kernels.c")
        out = os.path.join(tmpdir, "kernels.so")
        with open(src, "w", encoding="utf-8") as f:
            f.write(c_source)
        cmd = [toolchain.cc, *toolchain.flags, "-o", out, src, "-lm"]
        try:
            proc = subprocess.run(
                cmd,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                timeout=120,
                check=False,
            )
        except (OSError, subprocess.SubprocessError) as exc:
            raise NativeCompileError(f"compiler invocation failed: {exc}") from exc
        if proc.returncode != 0:
            stderr = proc.stderr.decode("utf-8", errors="replace")
            raise NativeCompileError(
                f"{toolchain.cc} exited with {proc.returncode}: {stderr[:2000]}"
            )
        try:
            with open(out, "rb") as f:
                return f.read()
        except OSError as exc:
            raise NativeCompileError(f"no shared object produced: {exc}") from exc
