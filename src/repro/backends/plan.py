"""The typed lowering-plan IR (the *plan* layer of backend lowering).

Backend lowering is a four-stage pipeline (see :mod:`repro.backends`):

    analyze  ->  plan  ->  codegen  ->  execute

This module is the contract between the stages: every lowering decision the
analyzer makes -- which scopes vectorize and why the others do not, which
scopes fuse into which chains, which intermediates are chain-private, which
gather/write geometry each memlet lowers to, which symbols the driver
hoists -- is captured in plain, serializable dataclasses.  Emitters
(:mod:`repro.backends.codegen`) consume plans and bind them to a concrete
program's nodes; the execute layer never re-derives a decision.

Plans are JSON round-trippable (:meth:`ProgramPlan.to_dict` /
:meth:`ProgramPlan.from_dict`), so the compiled backend persists them in its
on-disk artifacts next to the generated driver: a sibling worker process
skips scope analysis and fusion legality entirely.  The format is versioned
by :data:`PLAN_FORMAT_VERSION`; a mismatch is a cache *miss* (the plan is
re-derived and the artifact rewritten), never an error.

Expressions are stored as *source strings* (per-dimension point indices,
constant output dimensions), not compiled code objects -- compilation is the
emitters' job, which keeps the IR picklable and diffable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "PLAN_FORMAT_VERSION",
    "InputPlan",
    "OutputPlan",
    "ScopePlan",
    "ChainPlan",
    "StatePlan",
    "ProgramPlan",
]

#: Version of the serialized plan format.  Bump on ANY structural change to
#: the dataclasses below: persisted artifacts carry it, and a mismatch
#: invalidates the cached entry.
PLAN_FORMAT_VERSION = 1


@dataclass
class InputPlan:
    """One gathered tasklet input (a point-subset read)."""

    conn: str
    data: str
    #: One index expression (source text) per container dimension.
    index_exprs: List[str]
    subset_str: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "conn": self.conn,
            "data": self.data,
            "index_exprs": list(self.index_exprs),
            "subset_str": self.subset_str,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "InputPlan":
        return cls(
            conn=d["conn"],
            data=d["data"],
            index_exprs=[str(e) for e in d["index_exprs"]],
            subset_str=d["subset_str"],
        )


@dataclass
class OutputPlan:
    """One scattered tasklet output (a point-subset write, possibly WCR)."""

    conn: str
    data: str
    #: Per dimension: ``("param", (axis, offset))`` for a unit-slope affine
    #: index in one map parameter, or ``("const", expr)`` for an index
    #: expression (source text) free of map parameters.
    dims: List[Tuple[str, Any]]
    wcr: Optional[str]
    subset_str: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "conn": self.conn,
            "data": self.data,
            "dims": [list(dim) for dim in self.dims],
            "wcr": self.wcr,
            "subset_str": self.subset_str,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "OutputPlan":
        dims: List[Tuple[str, Any]] = []
        for kind, payload in d["dims"]:
            if kind == "param":
                axis, offset = payload
                dims.append(("param", (int(axis), int(offset))))
            else:
                dims.append(("const", str(payload)))
        return cls(
            conn=d["conn"],
            data=d["data"],
            dims=dims,
            wcr=d.get("wcr"),
            subset_str=d["subset_str"],
        )


@dataclass
class ScopePlan:
    """The vectorized-lowering recipe for one map scope.

    Nodes are referenced by guid (stable across clone and JSON round-trip,
    and covered by the SDFG content hash, so an artifact plan always
    resolves against the program it was derived from).
    """

    entry_guid: int
    entry_label: str
    tasklet_guid: int
    tasklet_label: str
    #: The tasklet source (straight-line, vectorizable; see analysis).
    code: str
    inputs: List[InputPlan]
    outputs: List[OutputPlan]
    #: Non-parameter names the scope's setup (grids, gather indices, write
    #: geometry) reads; executions with unchanged values reuse the setup.
    setup_deps: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry_guid": self.entry_guid,
            "entry_label": self.entry_label,
            "tasklet_guid": self.tasklet_guid,
            "tasklet_label": self.tasklet_label,
            "code": self.code,
            "inputs": [i.to_dict() for i in self.inputs],
            "outputs": [o.to_dict() for o in self.outputs],
            "setup_deps": list(self.setup_deps),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScopePlan":
        return cls(
            entry_guid=int(d["entry_guid"]),
            entry_label=d["entry_label"],
            tasklet_guid=int(d["tasklet_guid"]),
            tasklet_label=d["tasklet_label"],
            code=d["code"],
            inputs=[InputPlan.from_dict(i) for i in d["inputs"]],
            outputs=[OutputPlan.from_dict(o) for o in d["outputs"]],
            setup_deps=tuple(d.get("setup_deps", ())),
        )


@dataclass
class ChainPlan:
    """Fusion membership and input routing of one elementwise scope chain.

    ``routes`` parallels each member's :attr:`ScopePlan.inputs`: every
    input either reads the pre-chain store (``"gather"``) or an earlier
    member's in-flight value (``"chain"``).  ``internal`` names containers
    private to the chain, whose writes are never materialized.
    """

    member_guids: Tuple[int, ...]
    routes: List[List[str]]
    internal: Tuple[str, ...] = ()
    setup_deps: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "member_guids": list(self.member_guids),
            "routes": [list(r) for r in self.routes],
            "internal": list(self.internal),
            "setup_deps": list(self.setup_deps),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ChainPlan":
        return cls(
            member_guids=tuple(int(g) for g in d["member_guids"]),
            routes=[[str(step) for step in r] for r in d["routes"]],
            internal=tuple(d.get("internal", ())),
            setup_deps=tuple(d.get("setup_deps", ())),
        )


@dataclass
class StatePlan:
    """Every lowering decision for one state's dataflow."""

    state_label: str
    #: Plan (or ``None`` for analyzer-rejected scopes) per map-entry guid.
    scopes: Dict[int, Optional[ScopePlan]] = field(default_factory=dict)
    #: Why each rejected scope falls back to the interpreter (per guid).
    fallback_reasons: Dict[int, str] = field(default_factory=dict)
    chains: List[ChainPlan] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "state_label": self.state_label,
            "scopes": {
                str(guid): (plan.to_dict() if plan is not None else None)
                for guid, plan in self.scopes.items()
            },
            "fallback_reasons": {
                str(guid): reason for guid, reason in self.fallback_reasons.items()
            },
            "chains": [c.to_dict() for c in self.chains],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "StatePlan":
        return cls(
            state_label=d["state_label"],
            scopes={
                int(guid): (ScopePlan.from_dict(p) if p is not None else None)
                for guid, p in d.get("scopes", {}).items()
            },
            fallback_reasons={
                int(guid): str(reason)
                for guid, reason in d.get("fallback_reasons", {}).items()
            },
            chains=[ChainPlan.from_dict(c) for c in d.get("chains", [])],
        )


@dataclass
class ProgramPlan:
    """The complete lowering plan of one program.

    ``states`` follows the order of ``sdfg.states()`` (the artifact and the
    rebuilt program enumerate identically -- the content hash pins the
    serialization).  ``hoisted_symbols`` records the loop-invariant symbol
    loads the driver emitter hoisted, for inspection and reporting.
    """

    format: int
    sdfg_name: str
    states: List[StatePlan] = field(default_factory=list)
    hoisted_symbols: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": self.format,
            "sdfg_name": self.sdfg_name,
            "states": [s.to_dict() for s in self.states],
            "hoisted_symbols": list(self.hoisted_symbols),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ProgramPlan":
        fmt = d.get("format")
        if fmt != PLAN_FORMAT_VERSION:
            raise ValueError(
                f"Plan format {fmt!r} does not match {PLAN_FORMAT_VERSION}"
            )
        return cls(
            format=int(fmt),
            sdfg_name=d.get("sdfg_name", ""),
            states=[StatePlan.from_dict(s) for s in d.get("states", [])],
            hoisted_symbols=tuple(d.get("hoisted_symbols", ())),
        )
