"""The vectorized compiled backend.

Lowers map scopes whose memlets are affine in the map parameters to NumPy
array expressions: instead of expanding the iteration space one element at a
time (the interpreter's hot loop), a vectorizable scope is executed as a
handful of whole-array operations -- gather the inputs with broadcast index
grids, run the tasklet code once on arrays, scatter/reduce the outputs.

Scope *plans* are code-generated once per (program, scope) at preparation
time and reused across runs; whole compiled programs are cached by SDFG
content hash, so preparing the same cutout twice (e.g. repeated sweep tasks)
is free.  Any construct the planner cannot express -- nested SDFGs or nested
maps inside a scope, data-dependent (``dynamic``) subsets, non-affine output
indices, write-conflict patterns it cannot prove race-free, tasklet code
outside the vectorizable subset of Python -- falls back node-by-node to the
interpreter for exactly that scope, keeping the two backends semantically
interchangeable.

Three further layers keep the hot loop tight (PR 5):

* **scope fusion** -- chains of elementwise scopes (producer writes B over
  domain D, consumer reads B over the identical D) compose into *one*
  straight-line code object with member-unique locals; values flow between
  members as arrays (dtype-cast at each handoff, reproducing the store
  round-trip) and chain-private intermediates are never materialized;
* **loop-hoisted setup** -- iteration grids, gather indices and write
  geometry are cached per plan, keyed by the values of exactly the symbols
  they read, so every iteration of an enclosing interstate loop reuses
  them; arithmetic index sequences use basic slicing instead of advanced
  indexing;
* an optional **on-disk cache tier** (``cache_dir`` /
  :data:`CACHE_DIR_ENV`) shares compile artifacts across worker processes
  (used by the compiled whole-program backend for its generated drivers).

Bitwise fidelity to the interpreter is a design goal (the ``cross`` backend
and the backend-equivalence test suite assert it):

* write-conflict reductions accumulate **sequentially in iteration order**
  (one vector operation per reduction index) rather than with NumPy's
  pairwise ``reduce``, so floating-point results match the interpreter bit
  for bit,
* ``math.*`` calls are routed through a shim that applies the *scalar*
  :mod:`math` function element-wise (libm and NumPy's SIMD transcendentals
  may differ in the last ulp),
* scopes where an iteration could read an element written by a *different*
  iteration of the same scope are not vectorized.

On an out-of-bounds access the backend raises the same
:class:`~repro.interpreter.errors.MemoryViolation` the interpreter raises;
the only observable difference is that the vectorized backend detects the
violation before mutating any container (the interpreter stops mid-scope).
Since results are only returned for successful runs, differential verdicts
are unaffected.
"""

from __future__ import annotations

import ast
import hashlib
import json
import math
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.backends.base import CompiledProgram, ExecutionBackend
from repro.interpreter.errors import (
    ExecutionError,
    MemoryViolation,
    TaskletExecutionError,
)
from repro.interpreter.executor import _EVAL_GLOBALS, ExecutionResult, SDFGExecutor
from repro.interpreter.tasklet_exec import _SAFE_BUILTINS, compile_expression
from repro.sdfg.analysis import elementwise_scope_chains
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.serialize import sdfg_to_json
from repro.sdfg.state import SDFGState

__all__ = [
    "VectorizedBackend",
    "VectorizedProgram",
    "VectorizedExecutor",
    "ProgramDiskCache",
    "sdfg_content_hash",
    "CACHE_DIR_ENV",
]

#: Environment variable naming the on-disk compiled-program cache directory.
#: Read dynamically at each :meth:`VectorizedBackend.prepare`, so setting it
#: (e.g. via ``--cache-dir``) affects already-constructed backend instances
#: and survives ``fork``/``spawn`` into pool and cluster workers.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def sdfg_content_hash(sdfg: SDFG) -> str:
    """Content hash of a program (its canonical JSON serialization)."""
    return hashlib.sha256(sdfg_to_json(sdfg).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# math shim: scalar-identical element-wise transcendentals
# ---------------------------------------------------------------------- #
class _MathShim:
    """``math`` stand-in whose functions also accept arrays.

    Array inputs are processed element-wise with the *scalar* ``math``
    function, keeping results bitwise identical to the interpreter's
    per-iteration execution (libm vs. NumPy SIMD transcendentals can differ
    in the last ulp)."""

    def __init__(self) -> None:
        self._wrappers: Dict[str, Callable] = {}

    def __getattr__(self, name: str):
        attr = getattr(math, name)
        if not callable(attr):
            return attr
        fn = self._wrappers.get(name)
        if fn is None:

            def fn(*args, _scalar=attr):
                if any(isinstance(a, np.ndarray) and a.ndim > 0 for a in args):
                    ufn = np.frompyfunc(_scalar, len(args), 1)
                    return ufn(*args).astype(np.float64)
                return _scalar(*args)

            self._wrappers[name] = fn
        return fn


_MATH_SHIM = _MathShim()

#: Element-wise NumPy functions allowed inside vectorized tasklet code.
_ALLOWED_NP_FUNCS = frozenset(
    {
        "exp", "expm1", "log", "log1p", "log2", "log10", "sqrt", "cbrt",
        "abs", "absolute", "fabs", "sign", "floor", "ceil", "trunc", "rint",
        "sin", "cos", "tan", "arcsin", "arccos", "arctan", "arctan2",
        "sinh", "cosh", "tanh", "power", "maximum", "minimum", "fmod",
        "hypot", "copysign", "where",
    }
)

_ALLOWED_BINOPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)
_ALLOWED_UNARYOPS = (ast.USub, ast.UAdd)


_RAISING_BINOPS = (ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _code_is_vectorizable(code: str, np_names: frozenset) -> bool:
    """Whether tasklet code stays element-wise under array substitution.

    Accepts straight-line assignments built from arithmetic, ``abs``,
    ``math.*`` (via the shim) and a whitelist of element-wise ``np`` / ``numpy``
    functions.  Control flow, comparisons, subscripts and anything else that
    changes meaning between scalars and arrays is rejected -- the scope then
    falls back to the interpreter.  Augmented assignment is rejected too:
    after ``b = a``, ``b += c`` would mutate the *aliased* gathered input
    array in place, whereas the scalar path rebinds ``b``.

    ``np_names`` are the names bound to NumPy values in the interpreter's
    scalar path (the input connectors).  ``/ // % **`` are only accepted
    when an operand is NumPy-typed there as well: with pure-Python operands
    (map parameters, constants, ``math.*`` results) the interpreter raises
    (``ZeroDivisionError``, ...) where NumPy arrays would warn and continue,
    so such scopes must fall back to keep crash classification identical.
    """
    try:
        tree = ast.parse(code)
    except SyntaxError:
        return False
    np_locals = set(np_names)

    def np_typed(node: ast.AST) -> bool:
        """Whether the interpreter's scalar path yields a NumPy value here."""
        if isinstance(node, ast.Name):
            return node.id in np_locals
        if isinstance(node, ast.BinOp):
            return np_typed(node.left) or np_typed(node.right)
        if isinstance(node, ast.UnaryOp):
            return np_typed(node.operand)
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "abs":
                return any(np_typed(a) for a in node.args)
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                # np.* returns NumPy scalars even for Python inputs;
                # math.* returns plain Python floats.
                return fn.value.id in ("np", "numpy")
        return False

    def expr_ok(node: ast.AST) -> bool:
        if isinstance(node, ast.BinOp):
            if not (
                isinstance(node.op, _ALLOWED_BINOPS)
                and expr_ok(node.left)
                and expr_ok(node.right)
            ):
                return False
            if isinstance(node.op, _RAISING_BINOPS):
                return np_typed(node.left) or np_typed(node.right)
            return True
        if isinstance(node, ast.UnaryOp):
            return isinstance(node.op, _ALLOWED_UNARYOPS) and expr_ok(node.operand)
        if isinstance(node, ast.Name):
            return True
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float, bool))
        if isinstance(node, ast.Call):
            if node.keywords:
                return False
            if not all(expr_ok(a) for a in node.args):
                return False
            fn = node.func
            if isinstance(fn, ast.Name):
                return fn.id == "abs"
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                if fn.value.id == "math":
                    return True
                if fn.value.id in ("np", "numpy"):
                    return fn.attr in _ALLOWED_NP_FUNCS
            return False
        return False

    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            return False
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return False
        if not expr_ok(stmt.value):
            return False
        if np_typed(stmt.value):
            np_locals.add(stmt.targets[0].id)
        else:
            np_locals.discard(stmt.targets[0].id)
    return True


# ---------------------------------------------------------------------- #
# Scope plans
# ---------------------------------------------------------------------- #
@dataclass
class _InputSpec:
    conn: str
    data: str
    #: One compiled index expression per dimension (point subsets only).
    idx_code: List[Any]
    subset_str: str


@dataclass
class _OutputSpec:
    conn: str
    data: str
    #: Per dimension: ``("param", (axis, offset))`` for a unit-slope affine
    #: expression in one map parameter (``i`` -> offset 0, ``i + 1`` ->
    #: offset 1, ``i - 1`` -> offset -1) or ``("const", code)`` for an
    #: expression free of map parameters.
    dims: List[Tuple[str, Any]]
    wcr: Optional[str]
    subset_str: str


def _unit_affine_offset(expr, param: str) -> Optional[int]:
    """Integer ``c`` such that ``expr == param + c``, else ``None``.

    The match is *structural* -- ``Symbol(param)`` or a two-term sum of
    ``Symbol(param)`` and an integer constant (what ``i + 1`` / ``i - 1`` /
    ``1 + i`` parse and fold to).  Probing concrete points instead would
    accept piecewise expressions (``i % 4096``, ``Min(i, C)``) that agree
    with ``param + c`` on the probe set but wrap elsewhere, silently
    corrupting vectorized writes.
    """
    from repro.symbolic.expressions import Add, Integer, Symbol

    if isinstance(expr, Symbol):
        return 0 if expr.name == param else None
    if isinstance(expr, Add) and len(expr.args) == 2:
        a, b = expr.args
        if isinstance(b, Symbol):
            a, b = b, a
        if isinstance(a, Symbol) and a.name == param and isinstance(b, Integer):
            return b.value
    return None


@dataclass
class _ScopePlan:
    """A vectorized execution recipe for one map scope."""

    entry: MapEntry
    tasklet: Tasklet
    code_obj: Any
    inputs: List[_InputSpec]
    outputs: List[_OutputSpec]
    #: Names (beyond the map parameters) whose values the scope's *setup* --
    #: iteration grids, gather indices, write geometry, bounds checks --
    #: depends on.  Within one run, executions whose values for these names
    #: are unchanged (e.g. every iteration of an enclosing interstate loop)
    #: reuse the cached setup: the loop-invariant part of the scope is
    #: hoisted out of the loop.
    setup_deps: Tuple[str, ...] = ()
    #: Cleared permanently if vectorized execution fails at runtime
    #: (e.g. an index expression that does not evaluate on index grids).
    usable: bool = True


def _point_index_codes(memlet: Memlet) -> Optional[List[Any]]:
    """Compiled per-dimension index expressions, or None if not all points."""
    if memlet.subset is None:
        return None
    codes = []
    for r in memlet.subset.ranges:
        if not r.is_point():
            return None
        codes.append(compile_expression(str(r.begin)))
    return codes


class _PlanBuilder:
    """Builds (or refuses to build) a vectorized plan for a map scope."""

    def __init__(self, state: SDFGState, entry: MapEntry, children: List[Any]) -> None:
        self.state = state
        self.entry = entry
        self.children = children

    def build(self) -> Optional[_ScopePlan]:
        entry, state = self.entry, self.state
        # Exactly one tasklet in the scope: nested maps, nested SDFGs and
        # in-scope access nodes all fall back to the interpreter.
        if len(self.children) != 1 or not isinstance(self.children[0], Tasklet):
            return None
        tasklet = self.children[0]
        if tasklet.side_effect_callback:
            return None
        params = entry.map.params

        inputs: List[_InputSpec] = []
        for edge in state.in_edges(tasklet):
            memlet: Memlet = edge.data
            if memlet is None or memlet.is_empty:
                if edge.src is not entry:
                    return None
                continue
            if edge.src is not entry or edge.dst_conn is None:
                return None
            if memlet.dynamic or memlet.other_subset is not None:
                return None  # data-dependent subset or copy annotation
            codes = _point_index_codes(memlet)
            if codes is None:
                return None
            inputs.append(
                _InputSpec(edge.dst_conn, memlet.data, codes, str(memlet.subset))
            )

        outputs: List[_OutputSpec] = []
        for edge in state.out_edges(tasklet):
            memlet = edge.data
            if memlet is None or memlet.is_empty:
                if isinstance(edge.dst, MapExit) and edge.dst.map is entry.map:
                    continue
                return None
            if not isinstance(edge.dst, MapExit) or edge.dst.map is not entry.map:
                return None
            if edge.src_conn is None or memlet.dynamic or memlet.other_subset is not None:
                return None
            if memlet.subset is None:
                return None
            dims: List[Tuple[str, Any]] = []
            used_params: List[str] = []
            for r in memlet.subset.ranges:
                if not r.is_point():
                    return None
                text = str(r.begin).strip()
                if text in params:
                    if text in used_params:
                        return None  # same parameter indexing two dimensions
                    used_params.append(text)
                    dims.append(("param", (params.index(text), 0)))
                elif not (r.begin.free_symbols & set(params)):
                    dims.append(("const", compile_expression(text)))
                else:
                    # Affine-but-not-bare (e.g. ``i + 1``): lower to a slice
                    # offset when the index is unit-slope in one parameter;
                    # the shift keeps the write a bijection, so the plain /
                    # WCR write paths below apply unchanged.
                    candidates = r.begin.free_symbols & set(params)
                    if len(candidates) != 1:
                        return None
                    p = next(iter(candidates))
                    offset = _unit_affine_offset(r.begin, p)
                    if offset is None or p in used_params:
                        return None
                    used_params.append(p)
                    dims.append(("param", (params.index(p), offset)))
            if memlet.wcr is None:
                # Without a reduction, the write must be a bijection on the
                # iteration space (every parameter appears as its own
                # dimension), otherwise iteration order would matter.
                if set(used_params) != set(params):
                    return None
            elif memlet.wcr not in ("sum", "prod", "min", "max"):
                return None
            outputs.append(
                _OutputSpec(edge.src_conn, memlet.data, dims, memlet.wcr, str(memlet.subset))
            )

        # Two output edges into the same container interleave their writes
        # per iteration in the interpreter but would run as two full-array
        # passes here; only vectorize single-writer containers.
        out_data = [o.data for o in outputs]
        if len(out_data) != len(set(out_data)):
            return None
        # An iteration must never observe another iteration's write: reading
        # a container that the scope also writes is only safe when read and
        # write subsets are textually identical (pure element-wise update).
        for spec in inputs:
            for other in outputs:
                if other.data != spec.data:
                    continue
                if other.wcr is not None or spec.subset_str != other.subset_str:
                    return None

        if not _code_is_vectorizable(
            tasklet.code, frozenset(s.conn for s in inputs)
        ):
            return None
        try:
            code_obj = compile(tasklet.code, "<vectorized-tasklet>", "exec")
        except SyntaxError:
            return None

        # Setup dependencies: every non-parameter name the iteration grids,
        # gather indices and write geometry read.  Executions with unchanged
        # values for these names reuse the cached setup (loop hoisting).
        deps: Set[str] = set()
        for rng in entry.map.ranges:
            deps |= rng.free_symbols
        for edge in state.in_edges(tasklet):
            if edge.data is not None and not edge.data.is_empty and edge.data.subset is not None:
                deps |= edge.data.subset.free_symbols
        for edge in state.out_edges(tasklet):
            if edge.data is not None and not edge.data.is_empty and edge.data.subset is not None:
                deps |= edge.data.subset.free_symbols
        deps -= set(params)
        return _ScopePlan(
            entry, tasklet, code_obj, inputs, outputs, tuple(sorted(deps))
        )


# ---------------------------------------------------------------------- #
# Scope fusion
# ---------------------------------------------------------------------- #
#
# A chain of elementwise map scopes (producer writes B over domain D,
# consumer reads B over the same D) executes as ONE fused vectorized kernel:
# iteration grids are built once, external inputs are gathered once, each
# member tasklet runs back to back on whole arrays, values flowing between
# members stay in registers (well, arrays) instead of being scattered to and
# re-gathered from their intermediate containers, and intermediates whose
# only uses live inside the chain are never materialized at all.
#
# Bitwise parity rules the design:
#
# * values handed from producer to consumer are cast to the intermediate
#   container's dtype first -- exactly the store round-trip the interpreter
#   performs;
# * every member's write indices are still bounds-checked (in member order),
#   so a chain raises the same MemoryViolation whether or not it is fused;
# * a read of an intra-chain-written container is only legal when its subset
#   is textually identical to the *latest* write of that container (and that
#   write is not a reduction) -- anything else (stencil reads of an
#   intermediate, WCR-fed reads, overlapping-subset hazards) truncates the
#   chain, and the remaining scopes execute individually;
# * external gathers read the pre-chain store and all container writes are
#   deferred, which matches the interpreter because a chain member never
#   reads an earlier member's external write (such reads are either routed
#   through the chain or reject fusion).


@dataclass
class _FusedMember:
    """One scope's role inside a fused chain."""

    plan: _ScopePlan
    #: Store reads this member performs: (input spec, composed-code name the
    #: gathered value is bound under).  Values an earlier member produced
    #: need no runtime binding at all -- the composed code reads them as
    #: plain locals.
    gathers: List[Tuple[_InputSpec, str]]
    #: (kind, spec, composed-code name of the produced value).  ``"write"``
    #: materializes via the usual deferred write; ``"internal"`` only
    #: bounds-checks (the container is private to the chain and never
    #: observed).
    outputs: List[Tuple[str, _OutputSpec, str]]


@dataclass
class _FusedPlan:
    """A fused execution recipe for a chain of elementwise map scopes.

    The member tasklets are composed into **one** code object: every member
    local is renamed to a member-unique name, consumer input connectors are
    bound directly to the (dtype-cast) producer values, and the whole chain
    executes as a single straight-line NumPy expression sequence -- no
    per-member namespaces, no intermediate materialization.
    """

    entry: MapEntry  # the head scope: grids/domain are built from its map
    members: List[_FusedMember]
    member_entries: List[MapEntry]
    member_guids: Tuple[int, ...]
    #: The composed chain program (and its source, for debuggability).
    code_obj: Any
    source: str
    code_filename: str
    #: Cast callables the composed code calls at producer/consumer handoffs
    #: (``name -> callable``); injected into the execution namespace.
    cast_bindings: Dict[str, Callable]
    #: (first source line, tasklet label) per member, for attributing a
    #: composed-execution exception to the member that raised it.
    line_labels: List[Tuple[int, str]]
    setup_deps: Tuple[str, ...]
    usable: bool = True

    def label_for(self, exc: BaseException) -> str:
        """The tasklet label owning the composed-code line that raised."""
        lineno = None
        tb = exc.__traceback__
        while tb is not None:
            if tb.tb_frame.f_code.co_filename == self.code_filename:
                lineno = tb.tb_lineno
            tb = tb.tb_next
        label = self.line_labels[0][1]
        if lineno is not None:
            for start, candidate in self.line_labels:
                if start <= lineno:
                    label = candidate
        return label


def _make_cast(np_dtype) -> Callable:
    """A callable reproducing the store round-trip's dtype cast."""
    dt = np.dtype(np_dtype)

    def cast(value, _dt=dt):
        arr = np.asarray(value)
        return arr if arr.dtype == _dt else arr.astype(_dt)

    return cast


class _LoadRenamer(ast.NodeTransformer):
    """Renames name *loads* through a live mapping (member-local scoping)."""

    def __init__(self, mapping: Dict[str, str]) -> None:
        self.mapping = mapping

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if isinstance(node.ctx, ast.Load) and node.id in self.mapping:
            return ast.copy_location(
                ast.Name(id=self.mapping[node.id], ctx=ast.Load()), node
            )
        return node


def _container_private_to_chain(
    sdfg: SDFG, state: SDFGState, data: str, chain_nodes: Set[Any]
) -> bool:
    """Whether every use of ``data`` in the whole program is inside the chain.

    Only then may the fused kernel skip materializing the container: nothing
    else -- no other state, no non-chain node in this state, no final-output
    copy -- can observe the missing write.
    """
    for other in sdfg.states():
        for node in other.nodes():
            if not isinstance(node, AccessNode) or node.data != data:
                continue
            if other is not state:
                return False
            for edge in other.in_edges(node):
                if edge.src not in chain_nodes:
                    return False
            for edge in other.out_edges(node):
                if edge.dst not in chain_nodes:
                    return False
    return True


def _build_fused_plan(
    sdfg: SDFG,
    state: SDFGState,
    entries: List[MapEntry],
    plans: Dict[int, Optional[_ScopePlan]],
) -> Optional[_FusedPlan]:
    """Fuse the longest legal prefix of a candidate chain (or refuse).

    ``entries`` is a structural candidate from
    :func:`repro.sdfg.analysis.elementwise_scope_chains`; members without a
    vectorized plan, or whose memlets violate the fusion preconditions
    (mismatched intermediate subsets, reads of WCR-written containers,
    overlapping-write hazards), truncate the chain at that point.
    """
    from repro.sdfg.data import Array

    planned: List[Tuple[MapEntry, _ScopePlan]] = []
    for entry in entries:
        plan = plans.get(entry.guid)
        if plan is None:
            break
        planned.append((entry, plan))

    # Pass 1 -- legality walk: route each input either to the store (gather)
    # or to an earlier member's value (chain); any read of an intra-chain
    # write that is not an exact elementwise match truncates the chain.
    accepted: List[Tuple[MapEntry, _ScopePlan, List[Tuple[str, Any]]]] = []
    written: Dict[str, _OutputSpec] = {}
    consumed: Set[Tuple[str, str]] = set()
    gathered: Set[str] = set()
    deps: Set[str] = set()
    for entry, plan in planned:
        routes: List[Tuple[str, Any]] = []
        legal = True
        for spec in plan.inputs:
            prev = written.get(spec.data)
            if prev is None:
                routes.append(("gather", spec))
                gathered.add(spec.data)
            elif prev.wcr is None and prev.subset_str == spec.subset_str:
                key = (spec.data, spec.subset_str)
                routes.append(("chain", (spec, key)))
                consumed.add(key)
            else:
                legal = False  # WCR-fed or subset-mismatched intermediate read
                break
        if not legal:
            break
        accepted.append((entry, plan, routes))
        deps.update(plan.setup_deps)
        for spec in plan.outputs:
            written[spec.data] = spec
    if len(accepted) < 2:
        return None
    member_entries = [entry for entry, _, _ in accepted]

    # Intermediates used nowhere outside the chain are never materialized.
    chain_nodes: Set[Any] = set()
    for entry, plan, _ in accepted:
        chain_nodes.add(entry)
        chain_nodes.add(plan.tasklet)
    for node in state.nodes():
        if isinstance(node, MapExit) and any(
            node.map is e.map for e in member_entries
        ):
            chain_nodes.add(node)
    internal: Set[str] = set()
    for data in written:
        desc = sdfg.arrays.get(data)
        if (
            desc is not None
            and desc.transient
            and isinstance(desc, Array)
            # A container the chain also *gathers* (reads before any chain
            # write) carries a loop-borne dependence: the next execution of
            # this state must see the materialized value, so the write
            # cannot be skipped even when every use site is in the chain.
            and data not in gathered
            and _container_private_to_chain(sdfg, state, data, chain_nodes)
        ):
            internal.add(data)

    # Pass 2 -- composition: rename every member-local to a member-unique
    # name, bind consumer connectors directly to the (dtype-cast) producer
    # values, and emit one straight-line program for the whole chain.
    lines: List[str] = []
    line_labels: List[Tuple[int, str]] = []
    cast_bindings: Dict[str, Callable] = {}
    chain_var: Dict[Tuple[str, str], str] = {}
    members: List[_FusedMember] = []
    cast_counter = 0
    try:
        for k, (entry, plan, routes) in enumerate(accepted):
            mapping: Dict[str, str] = {}
            gathers: List[Tuple[_InputSpec, str]] = []
            for kind, payload in routes:
                if kind == "gather":
                    spec = payload
                    name = f"__g{k}_{spec.conn}"
                    mapping[spec.conn] = name
                    gathers.append((spec, name))
                else:
                    spec, key = payload
                    mapping[spec.conn] = chain_var[key]
            start = len(lines) + 1
            renamer = _LoadRenamer(mapping)
            tree = ast.parse(plan.tasklet.code)
            for stmt in tree.body:
                # Straight-line single-target assignments are guaranteed by
                # _code_is_vectorizable; rename the loads first (against the
                # *pre-assignment* mapping), then bind the target.
                value = ast.fix_missing_locations(renamer.visit(stmt.value))
                target = stmt.targets[0].id
                local = f"__v{k}_{target}"
                lines.append(f"{local} = {ast.unparse(value)}")
                mapping[target] = local
            outputs: List[Tuple[str, _OutputSpec, str]] = []
            for spec in plan.outputs:
                out_name = mapping.get(spec.conn, f"__v{k}_{spec.conn}")
                kind = "internal" if spec.data in internal else "write"
                outputs.append((kind, spec, out_name))
                key = (spec.data, spec.subset_str)
                if key in consumed:
                    # Producer/consumer handoff: the value a later member
                    # reads back, cast to the container dtype exactly as the
                    # interpreter's store write would.
                    cast_name = f"__cast{cast_counter}"
                    var = f"__chain{cast_counter}"
                    cast_counter += 1
                    cast_bindings[cast_name] = _make_cast(
                        sdfg.arrays[spec.data].dtype.as_numpy()
                    )
                    lines.append(f"{var} = {cast_name}({out_name})")
                    chain_var[key] = var
            line_labels.append((start, plan.tasklet.label))
            members.append(_FusedMember(plan, gathers, outputs))
        source = "\n".join(lines) + "\n"
        filename = f"<fused-chain:{member_entries[0].label}>"
        code_obj = compile(source, filename, "exec")
    except Exception:  # noqa: BLE001 - never fail planning; fall back
        return None

    return _FusedPlan(
        entry=member_entries[0],
        members=members,
        member_entries=member_entries,
        member_guids=tuple(e.guid for e in member_entries),
        code_obj=code_obj,
        source=source,
        code_filename=filename,
        cast_bindings=cast_bindings,
        line_labels=line_labels,
        setup_deps=tuple(sorted(deps)),
    )


@dataclass
class _StateTable:
    """Per-state vectorization decisions, built once per program."""

    #: Plan (or ``None`` for planner-rejected scopes) per map-entry guid,
    #: covering top-level *and* nested map entries.
    plans: Dict[int, Optional[_ScopePlan]]
    #: Fused chains by head-entry guid.
    heads: Dict[int, _FusedPlan]
    #: Non-head member guids (statically skippable when their chain runs).
    members: Set[int] = field(default_factory=set)


# ---------------------------------------------------------------------- #
# Executor
# ---------------------------------------------------------------------- #
@dataclass
class _WriteGeom:
    """Precomputed geometry of one vectorized container write."""

    spec: _OutputSpec
    arr: np.ndarray
    mesh: Tuple
    perm: List[int]
    target_shape: Tuple[int, ...]
    red_axes: List[int]
    kept_shape: Tuple[int, ...]
    #: True when the slab already has the output's dimension order and
    #: shape, so the per-write transpose/reshape can be skipped.
    identity_shape: bool = False


@dataclass
class _ScopeSetup:
    """The symbol-dependent (but value-independent) part of one scope
    execution: iteration grids, bounds-checked gather indices and write
    geometry.  Reused across executions whose ``setup_deps`` values are
    unchanged -- i.e. hoisted out of enclosing interstate loops."""

    shape_full: Tuple[int, ...]
    iterations: int
    grids: Dict[str, np.ndarray]
    #: (connector, container array, index, needs_copy) per input.  ``index``
    #: is a slice tuple on the fast path (``needs_copy=True``: basic
    #: indexing views must be copied to keep gather-copy semantics) or an
    #: advanced-indexing tuple (which copies implicitly).
    gathers: List[Tuple[str, np.ndarray, Tuple, bool]]
    geoms: List[_WriteGeom]


@dataclass
class _FusedSetup:
    """Loop-hoistable setup of a fused chain (shared grids, flattened
    gathers and per-member write geometry)."""

    shape_full: Tuple[int, ...]
    iterations: int
    grids: Dict[str, np.ndarray]
    #: (composed-code name, container array, index, needs_copy), flattened
    #: across all members (values bound before the single composed exec).
    gathers: List[Tuple[str, np.ndarray, Tuple, bool]]
    #: Per member, aligned with its ``outputs``: the write geometry.
    member_geoms: List[List[_WriteGeom]]


class VectorizedExecutor(SDFGExecutor):
    """An :class:`SDFGExecutor` that executes vectorizable map scopes as
    NumPy array expressions and falls back to element-wise interpretation
    for everything else.

    Chains of elementwise scopes are additionally *fused* (one gather /
    compute / scatter pass per chain instead of per scope; see
    :class:`_FusedPlan`), and scope setup -- iteration grids, gather
    indices, write geometry -- is cached per plan and reused while the
    symbols it depends on are unchanged, hoisting that work out of
    interstate loops."""

    _VEC_GLOBALS = {
        "__builtins__": _SAFE_BUILTINS,
        "np": np,
        "numpy": np,
        "math": _MATH_SHIM,
    }

    def __init__(self, *args, fuse: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Whether elementwise scope chains are fused (disable to measure
        #: the fusion win, or to bisect a suspected fusion bug).
        self.fuse = fuse
        #: Per-state vectorization decisions (plans + fused chains), built
        #: once per state on first execution.
        self._tables: Dict[int, _StateTable] = {}
        #: Per-plan setup cache: ``id(plan) -> (dep-values key, setup)``.
        #: Valid within one run only (it captures store arrays).
        self._setup_cache: Dict[int, Tuple[Tuple, Any]] = {}
        #: Member-scope guids already covered by a fused execution in the
        #: current state execution.
        self._fused_done: Set[int] = set()
        #: Scope-execution counters (vectorized vs. interpreter fallback;
        #: ``fused`` counts whole-chain executions).
        self.stats: Dict[str, int] = {"vectorized": 0, "fallback": 0, "fused": 0}

    def run(self, *args, **kwargs) -> ExecutionResult:
        try:
            return super().run(*args, **kwargs)
        finally:
            # Programs prepared by the vectorized backend outlive their runs
            # in the content-hash cache; drop the per-run data store (and the
            # setup cache, which captures store arrays) so a cached program
            # does not pin its last trial's arrays.
            self._store = {}
            self._symbols = {}
            self._setup_cache = {}

    def _setup(self, arguments: Dict[str, Any], symbols: Dict[str, Any]) -> None:
        super()._setup(arguments, symbols)
        # Setup caches capture per-run store arrays; never reuse across runs.
        self._setup_cache.clear()
        self._fused_done.clear()

    # .................................................................. #
    # Per-state decision tables
    # .................................................................. #
    def _table_for(self, state: SDFGState) -> _StateTable:
        table = self._tables.get(id(state))
        if table is None:
            table = self._build_state_table(state)
            self._tables[id(state)] = table
        return table

    def _build_state_table(self, state: SDFGState) -> _StateTable:
        order = self._state_order(state)
        scopes = self._scope_cache[id(state)]
        plans: Dict[int, Optional[_ScopePlan]] = {}
        for node in order:
            if not isinstance(node, MapEntry):
                continue
            children = [
                n for n in order if scopes.get(n) is node and not isinstance(n, MapExit)
            ]
            plans[node.guid] = _PlanBuilder(state, node, children).build()
        heads: Dict[int, _FusedPlan] = {}
        members: Set[int] = set()
        if self.fuse:
            for chain in elementwise_scope_chains(state, order, scopes):
                fused = _build_fused_plan(self.sdfg, state, chain, plans)
                if fused is not None:
                    heads[fused.member_guids[0]] = fused
                    members.update(fused.member_guids[1:])
        return _StateTable(plans, heads, members)

    # .................................................................. #
    # Scope execution
    # .................................................................. #
    def _execute_map_scope(self, state, entry, bindings) -> None:
        guid = entry.guid
        if guid in self._fused_done:
            # Covered by the fused execution of this chain's head earlier in
            # the same state execution.
            self._fused_done.discard(guid)
            return
        table = self._table_for(state)
        fused = table.heads.get(guid)
        if fused is not None and self._try_fused(fused, bindings):
            self._fused_done.update(fused.member_guids[1:])
            return
        self._run_single_scope(state, entry, table.plans.get(guid), bindings)

    def _try_fused(self, fused: _FusedPlan, bindings: Dict[str, Any]) -> bool:
        """Execute a fused chain; ``False`` defers to per-scope execution."""
        if not fused.usable:
            return False
        try:
            writes, counts = self._compute_fused(fused, bindings)
        except ExecutionError:
            raise
        except Exception:  # noqa: BLE001 - chain did not survive contact
            fused.usable = False
            return False
        for apply_write in writes:
            apply_write()
        for tasklet_guid, n in counts:
            self._tasklet_counts[tasklet_guid] = (
                self._tasklet_counts.get(tasklet_guid, 0) + n
            )
        self.stats["vectorized"] += len(fused.members)
        self.stats["fused"] += 1
        return True

    def _run_single_scope(
        self,
        state: SDFGState,
        entry: MapEntry,
        plan: Optional[_ScopePlan],
        bindings: Dict[str, Any],
    ) -> None:
        if plan is not None and plan.usable:
            try:
                writes, iterations = self._compute_vectorized(plan, bindings)
            except ExecutionError:
                raise
            except Exception:  # noqa: BLE001 - plan did not survive contact
                plan.usable = False
            else:
                for apply_write in writes:
                    apply_write()
                if iterations:
                    # One logical tasklet execution per iteration, exactly as
                    # the interpreter counts them (coverage-map parity).
                    self._tasklet_counts[plan.tasklet.guid] = (
                        self._tasklet_counts.get(plan.tasklet.guid, 0) + iterations
                    )
                self.stats["vectorized"] += 1
                return
        self.stats["fallback"] += 1
        SDFGExecutor._execute_map_scope(self, state, entry, bindings)

    # .................................................................. #
    # Setup (loop-hoisted per dependent-symbol values)
    # .................................................................. #
    def _resolve_domain(
        self, entry: MapEntry, bindings: Dict[str, Any]
    ) -> Tuple[List[np.ndarray], Tuple[int, ...], int, Dict[str, np.ndarray]]:
        """Concrete iteration axes and broadcast grids for a map."""
        axes: List[np.ndarray] = []
        for rng in entry.map.ranges:
            b, e, s = rng.evaluate(bindings)
            if s == 0:
                raise ExecutionError(f"Map '{entry.label}' has a zero step")
            axes.append(np.arange(b, e + 1 if s > 0 else e - 1, s, dtype=np.int64))
        shape_full = tuple(len(a) for a in axes)
        iterations = int(np.prod(shape_full, dtype=np.int64))
        nparams = len(axes)
        grids: Dict[str, np.ndarray] = {}
        for axis, (param, vals) in enumerate(zip(entry.map.params, axes)):
            gshape = [1] * nparams
            gshape[axis] = len(vals)
            grids[param] = vals.reshape(gshape)
        return axes, shape_full, iterations, grids

    @staticmethod
    def _seq_slice(flat: np.ndarray, trusted: bool = False) -> Optional[slice]:
        """A slice indexing the same 1-D positions as ``flat``, or ``None``.

        Only arithmetic sequences (the shape every map-parameter axis and
        every unit-slope affine index takes) qualify; basic indexing is
        several times faster than advanced indexing with an index array.
        The caller has already bounds-checked the values, so non-negative
        starts are guaranteed.  ``trusted`` skips the O(n) element check for
        sequences constructed from ``np.arange`` by this module itself --
        the endpoints check still guards against accidental misuse.
        """
        n = flat.size
        first = int(flat[0])
        if n == 1:
            return slice(first, first + 1)
        step = int(flat[1]) - first
        if step == 0:
            return None
        last = first + step * (n - 1)
        if int(flat[-1]) != last:
            return None
        if not trusted and not np.array_equal(
            flat, np.arange(first, last + (1 if step > 0 else -1), step, dtype=flat.dtype)
        ):
            return None
        if step > 0:
            return slice(first, last + 1, step)
        stop = last - 1
        return slice(first, None if stop < 0 else stop, step)

    @classmethod
    def _gather_slices(
        cls, idx: List[Any], arr: np.ndarray, nparams: int
    ) -> Optional[Tuple]:
        """A basic-indexing equivalent of a broadcast gather, or ``None``.

        Legal exactly when the slice result has the gather's shape: the
        ranks must agree (``arr.ndim == nparams``) and every index array
        must vary only along its *own* dimension's axis (so dimension order
        and parameter-axis order coincide).  Constant dimensions become
        length-1 slices, matching the broadcast's length-1 axes.
        """
        if arr.ndim != nparams:
            return None
        out: List[Any] = []
        saw_array = False
        for d, v in enumerate(idx):
            if isinstance(v, np.ndarray):
                if any(s != 1 for a, s in enumerate(v.shape) if a != d):
                    return None
                sl = cls._seq_slice(v.ravel())
                if sl is None:
                    return None
                saw_array = True
                out.append(sl)
            else:
                if int(v) < 0:
                    return None
                out.append(slice(int(v), int(v) + 1))
        # All-constant gathers yield a NumPy scalar; slices would yield a
        # (1, ..., 1) array.  Leave those on the advanced path.
        return tuple(out) if saw_array else None

    def _resolve_gather(
        self, spec: _InputSpec, idx_ns: Dict[str, Any], nparams: int
    ) -> Tuple[str, np.ndarray, Tuple, bool]:
        arr = self._store.get(spec.data)
        if arr is None:
            raise ExecutionError(f"Read from unknown container '{spec.data}'")
        idx = self._index_arrays(spec.idx_code, idx_ns)
        self._check_vector_bounds(spec.data, spec.subset_str, idx, arr.shape)
        fast = self._gather_slices(idx, arr, nparams)
        if fast is not None:
            # Basic indexing returns a view; the copy preserves the
            # gather-copy semantics (readers must see pre-scope values even
            # after deferred writes mutate the container).
            return spec.conn, arr, fast, True
        return spec.conn, arr, tuple(idx), False

    def _resolve_write(
        self,
        spec: _OutputSpec,
        axes: List[np.ndarray],
        shape_full: Tuple[int, ...],
        bindings: Dict[str, Any],
    ) -> _WriteGeom:
        arr = self._store.get(spec.data)
        if arr is None:
            raise ExecutionError(f"Write to unknown container '{spec.data}'")
        if len(spec.dims) != arr.ndim:
            raise MemoryViolation(
                spec.data, spec.subset_str, arr.shape, "dimensionality mismatch"
            )
        index_1d: List[np.ndarray] = []
        param_axes: List[int] = []
        for kind, payload in spec.dims:
            if kind == "param":
                axis, offset = payload
                param_axes.append(axis)
                index_1d.append(axes[axis] + offset if offset else axes[axis])
            else:
                c = int(eval(payload, _EVAL_GLOBALS, bindings))  # noqa: S307
                index_1d.append(np.asarray([c], dtype=np.int64))
        self._check_vector_bounds(spec.data, spec.subset_str, index_1d, arr.shape)
        nparams = len(shape_full)
        red_axes = [a for a in range(nparams) if a not in param_axes]
        kept_sorted = sorted(param_axes)
        kept_shape = tuple(shape_full[a] for a in kept_sorted)
        # Value axes end up in ascending-parameter order; ``perm`` reorders
        # them to the output's dimension order, ``target_shape`` re-inserts
        # length-1 axes for constant-indexed dimensions.
        perm = [kept_sorted.index(a) for a in param_axes]
        target_shape = tuple(
            shape_full[payload[0]] if kind == "param" else 1
            for kind, payload in spec.dims
        )
        # Every per-dimension index is an arithmetic sequence (map axes plus
        # a constant offset, or a single constant), so the scatter target is
        # expressible with basic slicing -- several times faster than the
        # ``np.ix_`` advanced-indexing mesh, which stays as the fallback.
        # ``trusted``: these arrays are arange-built by _resolve_domain.
        slices = [self._seq_slice(v, trusted=True) for v in index_1d]
        if index_1d and all(s is not None for s in slices):
            mesh: Tuple = tuple(slices)
        else:
            mesh = np.ix_(*index_1d) if index_1d else ()
        identity_shape = perm == sorted(perm) and target_shape == kept_shape
        return _WriteGeom(
            spec, arr, mesh, perm, target_shape, red_axes, kept_shape,
            identity_shape,
        )

    def _scope_setup(self, plan: _ScopePlan, bindings: Dict[str, Any]) -> _ScopeSetup:
        key = tuple(bindings.get(name) for name in plan.setup_deps)
        cached = self._setup_cache.get(id(plan))
        if cached is not None and cached[0] == key:
            return cached[1]
        axes, shape_full, iterations, grids = self._resolve_domain(plan.entry, bindings)
        if iterations == 0:
            # The interpreter executes nothing for an empty domain -- in
            # particular it never bounds-checks the memlets -- so neither
            # may the setup.
            setup = _ScopeSetup(shape_full, 0, grids, [], [])
        else:
            idx_ns = dict(bindings)
            idx_ns.update(grids)
            nparams = len(axes)
            gathers = [
                self._resolve_gather(spec, idx_ns, nparams) for spec in plan.inputs
            ]
            geoms = [
                self._resolve_write(spec, axes, shape_full, bindings)
                for spec in plan.outputs
            ]
            setup = _ScopeSetup(shape_full, iterations, grids, gathers, geoms)
        self._setup_cache[id(plan)] = (key, setup)
        return setup

    def _fused_setup(self, fused: _FusedPlan, bindings: Dict[str, Any]) -> _FusedSetup:
        key = tuple(bindings.get(name) for name in fused.setup_deps)
        cached = self._setup_cache.get(id(fused))
        if cached is not None and cached[0] == key:
            return cached[1]
        axes, shape_full, iterations, grids = self._resolve_domain(
            fused.entry, bindings
        )
        if iterations == 0:
            setup = _FusedSetup(shape_full, 0, grids, [], [])
        else:
            idx_ns = dict(bindings)
            idx_ns.update(grids)
            nparams = len(axes)
            gathers: List[Tuple[str, np.ndarray, Tuple, bool]] = []
            member_geoms: List[List[_WriteGeom]] = []
            for member in fused.members:
                for spec, name in member.gathers:
                    _, arr, idx, needs_copy = self._resolve_gather(
                        spec, idx_ns, nparams
                    )
                    gathers.append((name, arr, idx, needs_copy))
                member_geoms.append(
                    [
                        self._resolve_write(spec, axes, shape_full, bindings)
                        for _, spec, _ in member.outputs
                    ]
                )
            setup = _FusedSetup(shape_full, iterations, grids, gathers, member_geoms)
        self._setup_cache[id(fused)] = (key, setup)
        return setup

    # .................................................................. #
    # Vectorized evaluation
    # .................................................................. #
    def _compute_vectorized(
        self, plan: _ScopePlan, bindings: Dict[str, Any]
    ) -> Tuple[List[Callable[[], None]], int]:
        """Evaluate a vectorized scope; returns deferred writes.

        Nothing is mutated here: bounds checks and tasklet execution happen
        first, container writes are returned as closures so a mid-flight
        failure can safely fall back to the interpreter.
        """
        setup = self._scope_setup(plan, bindings)
        if setup.iterations == 0:
            return [], 0

        # Run the tasklet once on whole arrays.  Map parameters are visible
        # as index grids, program symbols as scalars -- mirroring the
        # interpreter's per-iteration namespace.  Gathers read the live
        # store (advanced indexing copies, so in-scope element-wise
        # self-updates see the pre-scope values, as each iteration does).
        ns: Dict[str, Any] = dict(bindings)
        ns.update(setup.grids)
        for conn, arr, idx, needs_copy in setup.gathers:
            value = arr[idx]
            ns[conn] = value.copy() if needs_copy else value
        try:
            exec(plan.code_obj, self._VEC_GLOBALS, ns)  # noqa: S102
        except Exception as exc:  # noqa: BLE001 - same typed error as TaskletRunner
            raise TaskletExecutionError(plan.tasklet.label, exc) from exc

        writes: List[Callable[[], None]] = []
        for geom in setup.geoms:
            writes.append(
                self._make_write(
                    geom,
                    self._output_value(plan.tasklet, geom.spec.conn, ns, setup.shape_full),
                    setup.shape_full,
                )
            )
        return writes, setup.iterations

    def _compute_fused(
        self, fused: _FusedPlan, bindings: Dict[str, Any]
    ) -> Tuple[List[Callable[[], None]], List[Tuple[int, int]]]:
        """Evaluate a fused scope chain; returns deferred writes + counts.

        The whole chain is **one** ``exec`` of the composed code object:
        member locals are pre-renamed to unique names, consumer connectors
        read the producers' values directly (dtype-cast at the handoff,
        reproducing the interpreter's store round-trip bit for bit), and
        intermediate containers are never touched.  All container writes
        are deferred to the caller, like :meth:`_compute_vectorized`.
        """
        setup = self._fused_setup(fused, bindings)
        if setup.iterations == 0:
            return [], []
        ns: Dict[str, Any] = dict(bindings)
        ns.update(setup.grids)
        for name, arr, idx, needs_copy in setup.gathers:
            value = arr[idx]
            ns[name] = value.copy() if needs_copy else value
        ns.update(fused.cast_bindings)
        try:
            exec(fused.code_obj, self._VEC_GLOBALS, ns)  # noqa: S102
        except Exception as exc:  # noqa: BLE001 - attributed by source line
            raise TaskletExecutionError(fused.label_for(exc), exc) from exc

        writes: List[Callable[[], None]] = []
        counts: List[Tuple[int, int]] = []
        for member, geoms in zip(fused.members, setup.member_geoms):
            for (kind, spec, out_name), geom in zip(member.outputs, geoms):
                value = self._output_value(
                    member.plan.tasklet, out_name, ns, setup.shape_full,
                    display_conn=spec.conn,
                )
                if kind == "write":
                    writes.append(self._make_write(geom, value, setup.shape_full))
            counts.append((member.plan.tasklet.guid, setup.iterations))
        return writes, counts

    @staticmethod
    def _output_value(
        tasklet: Tasklet,
        conn: str,
        ns: Dict[str, Any],
        shape_full: Tuple[int, ...],
        display_conn: Optional[str] = None,
    ) -> np.ndarray:
        if conn not in ns:
            raise TaskletExecutionError(
                tasklet.label,
                KeyError(
                    f"tasklet did not assign output connector "
                    f"'{display_conn or conn}'"
                ),
            )
        value = np.asarray(ns[conn])
        if value.shape == shape_full:
            return value  # the common case: broadcast_to would be a no-op
        return np.broadcast_to(value, shape_full)

    # .................................................................. #
    @staticmethod
    def _index_arrays(idx_code: List[Any], idx_ns: Dict[str, Any]) -> List[Any]:
        out = []
        for code in idx_code:
            v = eval(code, _EVAL_GLOBALS, idx_ns)  # noqa: S307
            out.append(v if isinstance(v, np.ndarray) else int(v))
        return out

    @staticmethod
    def _check_vector_bounds(
        data: str, subset_str: str, idx: List[Any], shape: Tuple[int, ...]
    ) -> None:
        if len(idx) != len(shape):
            raise MemoryViolation(data, subset_str, shape, "dimensionality mismatch")
        for v, dim in zip(idx, shape):
            arr = np.asarray(v)
            if arr.size == 0:
                continue
            lo, hi = int(arr.min()), int(arr.max())
            if lo < 0 or hi >= dim:
                raise MemoryViolation(data, subset_str, shape)

    def _make_write(
        self,
        geom: _WriteGeom,
        value: np.ndarray,
        shape_full: Tuple[int, ...],
    ) -> Callable[[], None]:
        from repro.sdfg.dtypes import reduction_function

        spec, arr = geom.spec, geom.arr
        perm, target_shape, mesh = geom.perm, geom.target_shape, geom.mesh

        if spec.wcr is None and geom.identity_shape and not geom.red_axes:
            # Bijective write whose value already has the output's layout
            # (the overwhelmingly common case): one basic-index assignment.
            def apply_direct() -> None:
                arr[mesh] = value

            return apply_direct

        # Reduction slabs, flattened in iteration (lexicographic) order.
        slabs = np.moveaxis(value, geom.red_axes, range(len(geom.red_axes))).reshape(
            (-1,) + geom.kept_shape
        )

        if geom.identity_shape:

            def shape_for_write(a: np.ndarray) -> np.ndarray:
                return a

        else:

            def shape_for_write(a: np.ndarray) -> np.ndarray:
                return a.transpose(perm).reshape(target_shape)

        if spec.wcr is None:

            def apply_plain() -> None:
                arr[mesh] = shape_for_write(slabs[0])

            return apply_plain

        func = reduction_function(spec.wcr)

        def apply_wcr() -> None:
            # Sequential accumulation in iteration order: bitwise identical
            # to the interpreter's per-element read-modify-write loop
            # (NumPy's pairwise reduce would round differently).  Each step
            # casts back to the container dtype, mirroring the interpreter's
            # per-iteration store (accumulating in the promoted dtype would
            # round non-float64 containers differently).
            region = np.array(arr[mesh], copy=True)
            for k in range(slabs.shape[0]):
                region = np.asarray(func(region, shape_for_write(slabs[k]))).astype(
                    arr.dtype, copy=False
                )
            arr[mesh] = region

        return apply_wcr


# ---------------------------------------------------------------------- #
# On-disk compiled-program cache
# ---------------------------------------------------------------------- #
class ProgramDiskCache:
    """A directory of compile *artifacts* keyed by SDFG content hash.

    Pool and cluster workers are separate processes: each one pays the full
    per-program compilation cost (control-flow structuring, driver code
    generation, plan analysis) even when every sibling already compiled the
    exact same program.  The disk tier shares those artifacts across
    processes -- and across sweep invocations -- so a program cluster-wide
    compiles once.

    Entries are JSON documents written atomically (temp file + ``rename``),
    so concurrent workers may race freely: the loser of a race simply
    overwrites the winner with identical content.  A corrupt, truncated or
    stale-versioned entry is treated as a miss (and rewritten), never an
    error -- the cache can always be rebuilt from source programs.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, content_hash: str, max_transitions: int) -> str:
        return os.path.join(
            self.directory, f"{content_hash}-{max_transitions}.json"
        )

    def load(self, content_hash: str, max_transitions: int) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(content_hash, max_transitions), "r", encoding="utf-8") as f:
                artifact = json.load(f)
        except (OSError, ValueError):
            return None
        return artifact if isinstance(artifact, dict) else None

    def store(
        self, content_hash: str, max_transitions: int, artifact: Dict[str, Any]
    ) -> None:
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(artifact, f)
                os.replace(tmp, self._path(content_hash, max_transitions))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a read-only or full cache directory degrades to no cache


# ---------------------------------------------------------------------- #
# Backend
# ---------------------------------------------------------------------- #
class VectorizedProgram(CompiledProgram):
    """A program bound to a reusable :class:`VectorizedExecutor`."""

    def __init__(
        self,
        sdfg: SDFG,
        max_transitions: int = 100_000,
        fuse: bool = True,
        artifact: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(sdfg)
        self.executor = VectorizedExecutor(
            sdfg, max_transitions=max_transitions, fuse=fuse
        )

    @property
    def stats(self) -> Dict[str, int]:
        return self.executor.stats

    #: Whether this program class produces persistable compile artifacts at
    #: all; ``False`` short-circuits the disk tier (no loads, no stores) so
    #: e.g. cross-backend workers sharing a cache directory with compiled
    #: siblings never parse artifacts they cannot use.
    persists_artifacts = False

    @classmethod
    def check_artifact(cls, artifact: Dict[str, Any]) -> bool:
        """Whether a disk artifact is usable by this program class (the
        vectorized program has no persistent compile artifact)."""
        return False

    def artifact(self) -> Optional[Dict[str, Any]]:
        """The JSON-safe compile artifact to persist, if any."""
        return None

    def run(
        self,
        arguments: Optional[Mapping[str, Any]] = None,
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> ExecutionResult:
        return self.executor.run(arguments, symbols, collect_coverage=collect_coverage)


class VectorizedBackend(ExecutionBackend):
    """Compiles map scopes to NumPy array programs, caching by content hash.

    The hash covers the exact serialization *including node guids* (which
    clones and JSON roundtrips preserve), so cache hits occur for repeated
    prepares of the same program object, its clones, and worker-side
    deserializations -- while two independent builds of the same kernel,
    whose coverage features are keyed by their distinct guids, correctly
    compile separately.

    With a cache *directory* configured (the ``cache_dir`` argument, the
    ``--cache-dir`` CLI option, or the ``REPRO_CACHE_DIR`` environment
    variable -- read dynamically so it reaches forked pool workers), the
    in-memory cache gains an on-disk tier: program classes with a
    persistable compile artifact (the compiled whole-program backend's
    generated driver) store it keyed by content hash and codegen version,
    and sibling worker processes skip recompilation.
    """

    name = "vectorized"
    #: Program type this backend prepares; subclasses (e.g. the compiled
    #: whole-program backend) swap it while inheriting the cache policy.
    program_class = VectorizedProgram

    def __init__(
        self,
        cache_size: int = 64,
        cache_dir: Optional[str] = None,
        fuse: bool = True,
    ) -> None:
        self.cache_size = cache_size
        self.fuse = fuse
        self._explicit_cache_dir = cache_dir
        self._cache: "OrderedDict[Tuple[str, int], VectorizedProgram]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.disk_hits = 0
        self.disk_misses = 0

    @property
    def cache_dir(self) -> Optional[str]:
        """The active on-disk cache directory (explicit or environment)."""
        return self._explicit_cache_dir or os.environ.get(CACHE_DIR_ENV) or None

    def prepare(self, sdfg: SDFG, max_transitions: int = 100_000) -> VectorizedProgram:
        content_hash = sdfg_content_hash(sdfg)
        key = (content_hash, max_transitions)
        program = self._cache.get(key)
        if program is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return program
        self.cache_misses += 1

        disk: Optional[ProgramDiskCache] = None
        artifact: Optional[Dict[str, Any]] = None
        directory = self.cache_dir if self.program_class.persists_artifacts else None
        if directory is not None:
            disk = ProgramDiskCache(directory)
            artifact = disk.load(content_hash, max_transitions)
            if artifact is not None and not self.program_class.check_artifact(artifact):
                artifact = None  # stale version / wrong class / corrupt
            if artifact is not None:
                self.disk_hits += 1
            else:
                self.disk_misses += 1

        program = self.program_class(
            sdfg, max_transitions=max_transitions, fuse=self.fuse, artifact=artifact
        )
        if disk is not None and artifact is None:
            fresh = program.artifact()
            if fresh is not None:
                disk.store(content_hash, max_transitions, fresh)

        self._cache[key] = program
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return program
