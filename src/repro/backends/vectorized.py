"""The vectorized compiled backend (cache + program/backend classes).

Lowers map scopes whose memlets are affine in the map parameters to NumPy
array expressions.  The lowering itself is the four-stage pipeline shared by
all compiled backends (see :mod:`repro.backends`):

* :mod:`repro.backends.analysis` decides *legality* and produces the
  serializable plan IR (:mod:`repro.backends.plan`);
* the ``numpy-eager`` emitter (:mod:`repro.backends.codegen.numpy_eager`)
  binds plans to compiled code objects, composing fused chains;
* :mod:`repro.backends.execute` hosts the runtime
  (:class:`~repro.backends.execute.VectorizedExecutor`, re-exported here).

This module keeps the backend surface: the per-process program cache keyed
by SDFG content hash, the optional on-disk artifact tier (``cache_dir`` /
:data:`CACHE_DIR_ENV`) shared across worker processes, and the
program/backend classes the registry exposes.  Scope plans are built once
per (program, scope) and reused across runs; preparing the same cutout
twice (e.g. repeated sweep tasks) is free.  Any construct the analyzer
cannot express -- nested SDFGs or nested maps inside a scope, data-dependent
(``dynamic``) subsets, non-affine output indices, write-conflict patterns it
cannot prove race-free, tasklet code outside the vectorizable subset of
Python -- falls back node-by-node to the interpreter for exactly that scope,
keeping the backends semantically interchangeable (bitwise fidelity notes
live with the runtime in :mod:`repro.backends.execute`).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Set, Tuple

from repro.backends.base import CompiledProgram, ExecutionBackend
from repro.backends.execute import VectorizedExecutor
from repro.interpreter.executor import ExecutionResult
from repro.sdfg.sdfg import SDFG
from repro.sdfg.serialize import sdfg_to_json
from repro.telemetry import TRACER, inc as _metric_inc

logger = logging.getLogger("repro.backends.cache")

#: One warning per process the first time a *corrupt* (vs. merely stale)
#: disk-cache entry is found and rewritten; after that, silence -- the
#: rewrite is self-healing and per-entry counts live in the metrics.
_CORRUPT_REWRITE_WARNED = False

__all__ = [
    "VectorizedBackend",
    "VectorizedProgram",
    "VectorizedExecutor",
    "ProgramDiskCache",
    "sdfg_content_hash",
    "CACHE_DIR_ENV",
]

#: Environment variable naming the on-disk compiled-program cache directory.
#: Read dynamically at each :meth:`VectorizedBackend.prepare`, so setting it
#: (e.g. via ``--cache-dir``) affects already-constructed backend instances
#: and survives ``fork``/``spawn`` into pool and cluster workers.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def sdfg_content_hash(sdfg: SDFG) -> str:
    """Content hash of a program (its canonical JSON serialization)."""
    return hashlib.sha256(sdfg_to_json(sdfg).encode("utf-8")).hexdigest()


class ProgramDiskCache:
    """A directory of compile *artifacts* keyed by SDFG content hash.

    Pool and cluster workers are separate processes: each one pays the full
    per-program compilation cost (control-flow structuring, driver code
    generation, plan analysis) even when every sibling already compiled the
    exact same program.  The disk tier shares those artifacts across
    processes -- and across sweep invocations -- so a program cluster-wide
    compiles once.

    Entries are JSON documents written atomically (temp file + ``rename``),
    so concurrent workers may race freely: the loser of a race simply
    overwrites the winner with identical content.  A corrupt or truncated
    entry degrades to a miss (and is rewritten, with one process-wide
    warning) and a stale-versioned entry to a recompile, never an error --
    the cache can always be rebuilt from source programs.  The two cases
    are *distinguished* (``corrupt`` vs. ``stale``) because they mean
    different things operationally: stale entries are expected after an
    upgrade, corrupt ones indicate torn writes or disk trouble.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        #: Entry paths whose last load was corrupt (for the rewrite warning).
        self._corrupt_paths: Set[str] = set()

    def _path(
        self, content_hash: str, max_transitions: int, variant: str = ""
    ) -> str:
        return os.path.join(
            self.directory, f"{content_hash}-{max_transitions}{variant}.json"
        )

    def load(
        self, content_hash: str, max_transitions: int, variant: str = ""
    ) -> Optional[Dict[str, Any]]:
        return self.load_classified(content_hash, max_transitions, variant)[0]

    def load_classified(
        self, content_hash: str, max_transitions: int, variant: str = ""
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Load an entry, classifying the outcome: ``(artifact, status)``.

        ``status`` is ``"hit"`` (a parseable artifact -- the caller may
        still downgrade it to ``"stale"`` after ``check_artifact``),
        ``"miss"`` (no entry / unreadable directory) or ``"corrupt"``
        (an entry exists but is truncated, non-JSON or not an object).
        """
        path = self._path(content_hash, max_transitions, variant)
        try:
            with open(path, "r", encoding="utf-8") as f:
                artifact = json.load(f)
        except FileNotFoundError:
            return None, "miss"
        except OSError:
            return None, "miss"  # unreadable dir/permissions: no entry seen
        except ValueError:
            self._corrupt_paths.add(path)
            return None, "corrupt"
        if not isinstance(artifact, dict):
            self._corrupt_paths.add(path)
            return None, "corrupt"
        return artifact, "hit"

    def store(
        self,
        content_hash: str,
        max_transitions: int,
        artifact: Dict[str, Any],
        variant: str = "",
    ) -> None:
        global _CORRUPT_REWRITE_WARNED
        path = self._path(content_hash, max_transitions, variant)
        if path in self._corrupt_paths:
            self._corrupt_paths.discard(path)
            if not _CORRUPT_REWRITE_WARNED:
                _CORRUPT_REWRITE_WARNED = True
                logger.warning(
                    "rewriting corrupt compile-cache entry %s (torn write or "
                    "disk trouble; self-healing, warned once per process)",
                    path,
                )
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(artifact, f)
                os.replace(tmp, self._path(content_hash, max_transitions, variant))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a read-only or full cache directory degrades to no cache


# ---------------------------------------------------------------------- #
# Backend
# ---------------------------------------------------------------------- #
class VectorizedProgram(CompiledProgram):
    """A program bound to a reusable :class:`VectorizedExecutor`."""

    def __init__(
        self,
        sdfg: SDFG,
        max_transitions: int = 100_000,
        fuse: bool = True,
        artifact: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(sdfg)
        self.executor = VectorizedExecutor(
            sdfg, max_transitions=max_transitions, fuse=fuse
        )

    @property
    def stats(self) -> Dict[str, int]:
        return self.executor.stats

    #: Whether this program class produces persistable compile artifacts at
    #: all; ``False`` short-circuits the disk tier (no loads, no stores) so
    #: e.g. cross-backend workers sharing a cache directory with compiled
    #: siblings never parse artifacts they cannot use.
    persists_artifacts = False

    #: Disk-cache filename suffix distinguishing artifact *variants*.  The
    #: pure-Python backends share the empty variant (one artifact per
    #: content hash); the native backend uses ``"-native"`` so its artifacts
    #: (which embed a compiled shared object) live in separate entries.
    artifact_variant = ""

    @classmethod
    def check_artifact(cls, artifact: Dict[str, Any]) -> bool:
        """Whether a disk artifact is usable by this program class (the
        vectorized program has no persistent compile artifact)."""
        return False

    def artifact(self) -> Optional[Dict[str, Any]]:
        """The JSON-safe compile artifact to persist, if any."""
        return None

    def run(
        self,
        arguments: Optional[Mapping[str, Any]] = None,
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> ExecutionResult:
        return self.executor.run(arguments, symbols, collect_coverage=collect_coverage)


class VectorizedBackend(ExecutionBackend):
    """Compiles map scopes to NumPy array programs, caching by content hash.

    The hash covers the exact serialization *including node guids* (which
    clones and JSON roundtrips preserve), so cache hits occur for repeated
    prepares of the same program object, its clones, and worker-side
    deserializations -- while two independent builds of the same kernel,
    whose coverage features are keyed by their distinct guids, correctly
    compile separately.

    With a cache *directory* configured (the ``cache_dir`` argument, the
    ``--cache-dir`` CLI option, or the ``REPRO_CACHE_DIR`` environment
    variable -- read dynamically so it reaches forked pool workers), the
    in-memory cache gains an on-disk tier: program classes with a
    persistable compile artifact (the compiled whole-program backend's
    generated driver) store it keyed by content hash and codegen version,
    and sibling worker processes skip recompilation.
    """

    name = "vectorized"
    #: Program type this backend prepares; subclasses (e.g. the compiled
    #: whole-program backend) swap it while inheriting the cache policy.
    program_class = VectorizedProgram

    def __init__(
        self,
        cache_size: int = 64,
        cache_dir: Optional[str] = None,
        fuse: bool = True,
    ) -> None:
        self.cache_size = cache_size
        self.fuse = fuse
        self._explicit_cache_dir = cache_dir
        self._cache: "OrderedDict[Tuple[str, int], VectorizedProgram]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.disk_hits = 0
        self.disk_misses = 0

    @property
    def cache_dir(self) -> Optional[str]:
        """The active on-disk cache directory (explicit or environment)."""
        return self._explicit_cache_dir or os.environ.get(CACHE_DIR_ENV) or None

    def prepare(self, sdfg: SDFG, max_transitions: int = 100_000) -> VectorizedProgram:
        content_hash = sdfg_content_hash(sdfg)
        key = (content_hash, max_transitions)
        program = self._cache.get(key)
        if program is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            _metric_inc(
                "repro_prepare_cache_total",
                labels={"tier": self.name, "level": "memory", "outcome": "hit"},
            )
            return program
        self.cache_misses += 1
        _metric_inc(
            "repro_prepare_cache_total",
            labels={"tier": self.name, "level": "memory", "outcome": "miss"},
        )

        with TRACER.span("backend.prepare", "prepare") as span:
            span.set("tier", self.name)
            span.set("sdfg", sdfg.name)
            disk: Optional[ProgramDiskCache] = None
            artifact: Optional[Dict[str, Any]] = None
            directory = (
                self.cache_dir if self.program_class.persists_artifacts else None
            )
            variant = self.program_class.artifact_variant
            if directory is not None:
                disk = ProgramDiskCache(directory)
                artifact, status = disk.load_classified(
                    content_hash, max_transitions, variant
                )
                if artifact is not None and not self.program_class.check_artifact(
                    artifact
                ):
                    artifact = None
                    status = "stale"  # parseable, but wrong version/class
                if artifact is not None:
                    self.disk_hits += 1
                else:
                    self.disk_misses += 1
                span.set("disk_cache", status)
                _metric_inc(
                    "repro_disk_cache_total",
                    labels={"tier": self.name, "outcome": status},
                )

            program = self.program_class(
                sdfg, max_transitions=max_transitions, fuse=self.fuse,
                artifact=artifact,
            )
            if disk is not None and artifact is None:
                fresh = program.artifact()
                if fresh is not None:
                    disk.store(content_hash, max_transitions, fresh, variant)

        self._cache[key] = program
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return program
