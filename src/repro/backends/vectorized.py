"""The vectorized compiled backend.

Lowers map scopes whose memlets are affine in the map parameters to NumPy
array expressions: instead of expanding the iteration space one element at a
time (the interpreter's hot loop), a vectorizable scope is executed as a
handful of whole-array operations -- gather the inputs with broadcast index
grids, run the tasklet code once on arrays, scatter/reduce the outputs.

Scope *plans* are code-generated once per (program, scope) at preparation
time and reused across runs; whole compiled programs are cached by SDFG
content hash, so preparing the same cutout twice (e.g. repeated sweep tasks)
is free.  Any construct the planner cannot express -- nested SDFGs or nested
maps inside a scope, data-dependent (``dynamic``) subsets, non-affine output
indices, write-conflict patterns it cannot prove race-free, tasklet code
outside the vectorizable subset of Python -- falls back node-by-node to the
interpreter for exactly that scope, keeping the two backends semantically
interchangeable.

Bitwise fidelity to the interpreter is a design goal (the ``cross`` backend
and the backend-equivalence test suite assert it):

* write-conflict reductions accumulate **sequentially in iteration order**
  (one vector operation per reduction index) rather than with NumPy's
  pairwise ``reduce``, so floating-point results match the interpreter bit
  for bit,
* ``math.*`` calls are routed through a shim that applies the *scalar*
  :mod:`math` function element-wise (libm and NumPy's SIMD transcendentals
  may differ in the last ulp),
* scopes where an iteration could read an element written by a *different*
  iteration of the same scope are not vectorized.

On an out-of-bounds access the backend raises the same
:class:`~repro.interpreter.errors.MemoryViolation` the interpreter raises;
the only observable difference is that the vectorized backend detects the
violation before mutating any container (the interpreter stops mid-scope).
Since results are only returned for successful runs, differential verdicts
are unaffected.
"""

from __future__ import annotations

import ast
import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.backends.base import CompiledProgram, ExecutionBackend
from repro.interpreter.errors import (
    ExecutionError,
    MemoryViolation,
    TaskletExecutionError,
)
from repro.interpreter.executor import _EVAL_GLOBALS, ExecutionResult, SDFGExecutor
from repro.interpreter.tasklet_exec import _SAFE_BUILTINS, compile_expression
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import MapEntry, MapExit, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.serialize import sdfg_to_json
from repro.sdfg.state import SDFGState

__all__ = [
    "VectorizedBackend",
    "VectorizedProgram",
    "VectorizedExecutor",
    "sdfg_content_hash",
]


def sdfg_content_hash(sdfg: SDFG) -> str:
    """Content hash of a program (its canonical JSON serialization)."""
    return hashlib.sha256(sdfg_to_json(sdfg).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# math shim: scalar-identical element-wise transcendentals
# ---------------------------------------------------------------------- #
class _MathShim:
    """``math`` stand-in whose functions also accept arrays.

    Array inputs are processed element-wise with the *scalar* ``math``
    function, keeping results bitwise identical to the interpreter's
    per-iteration execution (libm vs. NumPy SIMD transcendentals can differ
    in the last ulp)."""

    def __init__(self) -> None:
        self._wrappers: Dict[str, Callable] = {}

    def __getattr__(self, name: str):
        attr = getattr(math, name)
        if not callable(attr):
            return attr
        fn = self._wrappers.get(name)
        if fn is None:

            def fn(*args, _scalar=attr):
                if any(isinstance(a, np.ndarray) and a.ndim > 0 for a in args):
                    ufn = np.frompyfunc(_scalar, len(args), 1)
                    return ufn(*args).astype(np.float64)
                return _scalar(*args)

            self._wrappers[name] = fn
        return fn


_MATH_SHIM = _MathShim()

#: Element-wise NumPy functions allowed inside vectorized tasklet code.
_ALLOWED_NP_FUNCS = frozenset(
    {
        "exp", "expm1", "log", "log1p", "log2", "log10", "sqrt", "cbrt",
        "abs", "absolute", "fabs", "sign", "floor", "ceil", "trunc", "rint",
        "sin", "cos", "tan", "arcsin", "arccos", "arctan", "arctan2",
        "sinh", "cosh", "tanh", "power", "maximum", "minimum", "fmod",
        "hypot", "copysign", "where",
    }
)

_ALLOWED_BINOPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)
_ALLOWED_UNARYOPS = (ast.USub, ast.UAdd)


_RAISING_BINOPS = (ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _code_is_vectorizable(code: str, np_names: frozenset) -> bool:
    """Whether tasklet code stays element-wise under array substitution.

    Accepts straight-line assignments built from arithmetic, ``abs``,
    ``math.*`` (via the shim) and a whitelist of element-wise ``np`` / ``numpy``
    functions.  Control flow, comparisons, subscripts and anything else that
    changes meaning between scalars and arrays is rejected -- the scope then
    falls back to the interpreter.  Augmented assignment is rejected too:
    after ``b = a``, ``b += c`` would mutate the *aliased* gathered input
    array in place, whereas the scalar path rebinds ``b``.

    ``np_names`` are the names bound to NumPy values in the interpreter's
    scalar path (the input connectors).  ``/ // % **`` are only accepted
    when an operand is NumPy-typed there as well: with pure-Python operands
    (map parameters, constants, ``math.*`` results) the interpreter raises
    (``ZeroDivisionError``, ...) where NumPy arrays would warn and continue,
    so such scopes must fall back to keep crash classification identical.
    """
    try:
        tree = ast.parse(code)
    except SyntaxError:
        return False
    np_locals = set(np_names)

    def np_typed(node: ast.AST) -> bool:
        """Whether the interpreter's scalar path yields a NumPy value here."""
        if isinstance(node, ast.Name):
            return node.id in np_locals
        if isinstance(node, ast.BinOp):
            return np_typed(node.left) or np_typed(node.right)
        if isinstance(node, ast.UnaryOp):
            return np_typed(node.operand)
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "abs":
                return any(np_typed(a) for a in node.args)
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                # np.* returns NumPy scalars even for Python inputs;
                # math.* returns plain Python floats.
                return fn.value.id in ("np", "numpy")
        return False

    def expr_ok(node: ast.AST) -> bool:
        if isinstance(node, ast.BinOp):
            if not (
                isinstance(node.op, _ALLOWED_BINOPS)
                and expr_ok(node.left)
                and expr_ok(node.right)
            ):
                return False
            if isinstance(node.op, _RAISING_BINOPS):
                return np_typed(node.left) or np_typed(node.right)
            return True
        if isinstance(node, ast.UnaryOp):
            return isinstance(node.op, _ALLOWED_UNARYOPS) and expr_ok(node.operand)
        if isinstance(node, ast.Name):
            return True
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float, bool))
        if isinstance(node, ast.Call):
            if node.keywords:
                return False
            if not all(expr_ok(a) for a in node.args):
                return False
            fn = node.func
            if isinstance(fn, ast.Name):
                return fn.id == "abs"
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                if fn.value.id == "math":
                    return True
                if fn.value.id in ("np", "numpy"):
                    return fn.attr in _ALLOWED_NP_FUNCS
            return False
        return False

    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            return False
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return False
        if not expr_ok(stmt.value):
            return False
        if np_typed(stmt.value):
            np_locals.add(stmt.targets[0].id)
        else:
            np_locals.discard(stmt.targets[0].id)
    return True


# ---------------------------------------------------------------------- #
# Scope plans
# ---------------------------------------------------------------------- #
@dataclass
class _InputSpec:
    conn: str
    data: str
    #: One compiled index expression per dimension (point subsets only).
    idx_code: List[Any]
    subset_str: str


@dataclass
class _OutputSpec:
    conn: str
    data: str
    #: Per dimension: ``("param", (axis, offset))`` for a unit-slope affine
    #: expression in one map parameter (``i`` -> offset 0, ``i + 1`` ->
    #: offset 1, ``i - 1`` -> offset -1) or ``("const", code)`` for an
    #: expression free of map parameters.
    dims: List[Tuple[str, Any]]
    wcr: Optional[str]
    subset_str: str


def _unit_affine_offset(expr, param: str) -> Optional[int]:
    """Integer ``c`` such that ``expr == param + c``, else ``None``.

    The match is *structural* -- ``Symbol(param)`` or a two-term sum of
    ``Symbol(param)`` and an integer constant (what ``i + 1`` / ``i - 1`` /
    ``1 + i`` parse and fold to).  Probing concrete points instead would
    accept piecewise expressions (``i % 4096``, ``Min(i, C)``) that agree
    with ``param + c`` on the probe set but wrap elsewhere, silently
    corrupting vectorized writes.
    """
    from repro.symbolic.expressions import Add, Integer, Symbol

    if isinstance(expr, Symbol):
        return 0 if expr.name == param else None
    if isinstance(expr, Add) and len(expr.args) == 2:
        a, b = expr.args
        if isinstance(b, Symbol):
            a, b = b, a
        if isinstance(a, Symbol) and a.name == param and isinstance(b, Integer):
            return b.value
    return None


@dataclass
class _ScopePlan:
    """A vectorized execution recipe for one map scope."""

    entry: MapEntry
    tasklet: Tasklet
    code_obj: Any
    inputs: List[_InputSpec]
    outputs: List[_OutputSpec]
    #: Cleared permanently if vectorized execution fails at runtime
    #: (e.g. an index expression that does not evaluate on index grids).
    usable: bool = True


def _point_index_codes(memlet: Memlet) -> Optional[List[Any]]:
    """Compiled per-dimension index expressions, or None if not all points."""
    if memlet.subset is None:
        return None
    codes = []
    for r in memlet.subset.ranges:
        if not r.is_point():
            return None
        codes.append(compile_expression(str(r.begin)))
    return codes


class _PlanBuilder:
    """Builds (or refuses to build) a vectorized plan for a map scope."""

    def __init__(self, state: SDFGState, entry: MapEntry, children: List[Any]) -> None:
        self.state = state
        self.entry = entry
        self.children = children

    def build(self) -> Optional[_ScopePlan]:
        entry, state = self.entry, self.state
        # Exactly one tasklet in the scope: nested maps, nested SDFGs and
        # in-scope access nodes all fall back to the interpreter.
        if len(self.children) != 1 or not isinstance(self.children[0], Tasklet):
            return None
        tasklet = self.children[0]
        if tasklet.side_effect_callback:
            return None
        params = entry.map.params

        inputs: List[_InputSpec] = []
        for edge in state.in_edges(tasklet):
            memlet: Memlet = edge.data
            if memlet is None or memlet.is_empty:
                if edge.src is not entry:
                    return None
                continue
            if edge.src is not entry or edge.dst_conn is None:
                return None
            if memlet.dynamic or memlet.other_subset is not None:
                return None  # data-dependent subset or copy annotation
            codes = _point_index_codes(memlet)
            if codes is None:
                return None
            inputs.append(
                _InputSpec(edge.dst_conn, memlet.data, codes, str(memlet.subset))
            )

        outputs: List[_OutputSpec] = []
        for edge in state.out_edges(tasklet):
            memlet = edge.data
            if memlet is None or memlet.is_empty:
                if isinstance(edge.dst, MapExit) and edge.dst.map is entry.map:
                    continue
                return None
            if not isinstance(edge.dst, MapExit) or edge.dst.map is not entry.map:
                return None
            if edge.src_conn is None or memlet.dynamic or memlet.other_subset is not None:
                return None
            if memlet.subset is None:
                return None
            dims: List[Tuple[str, Any]] = []
            used_params: List[str] = []
            for r in memlet.subset.ranges:
                if not r.is_point():
                    return None
                text = str(r.begin).strip()
                if text in params:
                    if text in used_params:
                        return None  # same parameter indexing two dimensions
                    used_params.append(text)
                    dims.append(("param", (params.index(text), 0)))
                elif not (r.begin.free_symbols & set(params)):
                    dims.append(("const", compile_expression(text)))
                else:
                    # Affine-but-not-bare (e.g. ``i + 1``): lower to a slice
                    # offset when the index is unit-slope in one parameter;
                    # the shift keeps the write a bijection, so the plain /
                    # WCR write paths below apply unchanged.
                    candidates = r.begin.free_symbols & set(params)
                    if len(candidates) != 1:
                        return None
                    p = next(iter(candidates))
                    offset = _unit_affine_offset(r.begin, p)
                    if offset is None or p in used_params:
                        return None
                    used_params.append(p)
                    dims.append(("param", (params.index(p), offset)))
            if memlet.wcr is None:
                # Without a reduction, the write must be a bijection on the
                # iteration space (every parameter appears as its own
                # dimension), otherwise iteration order would matter.
                if set(used_params) != set(params):
                    return None
            elif memlet.wcr not in ("sum", "prod", "min", "max"):
                return None
            outputs.append(
                _OutputSpec(edge.src_conn, memlet.data, dims, memlet.wcr, str(memlet.subset))
            )

        # Two output edges into the same container interleave their writes
        # per iteration in the interpreter but would run as two full-array
        # passes here; only vectorize single-writer containers.
        out_data = [o.data for o in outputs]
        if len(out_data) != len(set(out_data)):
            return None
        # An iteration must never observe another iteration's write: reading
        # a container that the scope also writes is only safe when read and
        # write subsets are textually identical (pure element-wise update).
        for spec in inputs:
            for other in outputs:
                if other.data != spec.data:
                    continue
                if other.wcr is not None or spec.subset_str != other.subset_str:
                    return None

        if not _code_is_vectorizable(
            tasklet.code, frozenset(s.conn for s in inputs)
        ):
            return None
        try:
            code_obj = compile(tasklet.code, "<vectorized-tasklet>", "exec")
        except SyntaxError:
            return None
        return _ScopePlan(entry, tasklet, code_obj, inputs, outputs)


# ---------------------------------------------------------------------- #
# Executor
# ---------------------------------------------------------------------- #
class VectorizedExecutor(SDFGExecutor):
    """An :class:`SDFGExecutor` that executes vectorizable map scopes as
    NumPy array expressions and falls back to element-wise interpretation
    for everything else."""

    _VEC_GLOBALS = {
        "__builtins__": _SAFE_BUILTINS,
        "np": np,
        "numpy": np,
        "math": _MATH_SHIM,
    }

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Plans per (state id, map-entry guid); ``None`` marks scopes the
        #: planner rejected so they are not re-analyzed every execution.
        self._plans: Dict[Tuple[int, int], Optional[_ScopePlan]] = {}
        #: Scope-execution counters (vectorized vs. interpreter fallback).
        self.stats: Dict[str, int] = {"vectorized": 0, "fallback": 0}

    def run(self, *args, **kwargs) -> ExecutionResult:
        try:
            return super().run(*args, **kwargs)
        finally:
            # Programs prepared by the vectorized backend outlive their runs
            # in the content-hash cache; drop the per-run data store so a
            # cached program does not pin its last trial's arrays.
            self._store = {}
            self._symbols = {}

    # .................................................................. #
    def _plan_for(self, state: SDFGState, entry: MapEntry) -> Optional[_ScopePlan]:
        key = (id(state), entry.guid)
        if key not in self._plans:
            order = self._state_order(state)
            scopes = self._scope_cache[id(state)]
            children = [
                n for n in order if scopes.get(n) is entry and not isinstance(n, MapExit)
            ]
            self._plans[key] = _PlanBuilder(state, entry, children).build()
        plan = self._plans[key]
        if plan is not None and not plan.usable:
            return None
        return plan

    def _execute_map_scope(self, state, entry, bindings) -> None:
        plan = self._plan_for(state, entry)
        if plan is not None:
            try:
                writes, iterations = self._compute_vectorized(plan, bindings)
            except ExecutionError:
                raise
            except Exception:  # noqa: BLE001 - plan did not survive contact
                plan.usable = False
            else:
                for apply_write in writes:
                    apply_write()
                if iterations:
                    # One logical tasklet execution per iteration, exactly as
                    # the interpreter counts them (coverage-map parity).
                    self._tasklet_counts[plan.tasklet.guid] = (
                        self._tasklet_counts.get(plan.tasklet.guid, 0) + iterations
                    )
                self.stats["vectorized"] += 1
                return
        self.stats["fallback"] += 1
        super()._execute_map_scope(state, entry, bindings)

    # .................................................................. #
    def _compute_vectorized(
        self, plan: _ScopePlan, bindings: Dict[str, Any]
    ) -> Tuple[List[Callable[[], None]], int]:
        """Evaluate a vectorized scope; returns deferred writes.

        Nothing is mutated here: bounds checks and tasklet execution happen
        first, container writes are returned as closures so a mid-flight
        failure can safely fall back to the interpreter.
        """
        entry = plan.entry
        # Concrete iteration grids, one axis per map parameter.
        axes: List[np.ndarray] = []
        for rng in entry.map.ranges:
            b, e, s = rng.evaluate(bindings)
            if s == 0:
                raise ExecutionError(f"Map '{entry.label}' has a zero step")
            axes.append(np.arange(b, e + 1 if s > 0 else e - 1, s, dtype=np.int64))
        shape_full = tuple(len(a) for a in axes)
        iterations = int(np.prod(shape_full, dtype=np.int64))
        if iterations == 0:
            return [], 0
        nparams = len(axes)
        grids: Dict[str, np.ndarray] = {}
        for axis, (param, vals) in enumerate(zip(entry.map.params, axes)):
            gshape = [1] * nparams
            gshape[axis] = len(vals)
            grids[param] = vals.reshape(gshape)

        idx_ns = dict(bindings)
        idx_ns.update(grids)

        # Gather inputs (advanced indexing copies, so in-scope element-wise
        # self-updates see the pre-scope values, as each iteration does).
        values: Dict[str, Any] = {}
        for spec in plan.inputs:
            arr = self._store.get(spec.data)
            if arr is None:
                raise ExecutionError(f"Read from unknown container '{spec.data}'")
            idx = self._index_arrays(spec.idx_code, idx_ns)
            self._check_vector_bounds(spec.data, spec.subset_str, idx, arr.shape)
            values[spec.conn] = arr[tuple(idx)]

        # Resolve output targets (and check their bounds) before executing.
        out_targets = []
        for spec in plan.outputs:
            arr = self._store.get(spec.data)
            if arr is None:
                raise ExecutionError(f"Write to unknown container '{spec.data}'")
            if len(spec.dims) != arr.ndim:
                raise MemoryViolation(
                    spec.data, spec.subset_str, arr.shape, "dimensionality mismatch"
                )
            index_1d: List[np.ndarray] = []
            param_axes: List[int] = []
            for kind, payload in spec.dims:
                if kind == "param":
                    axis, offset = payload
                    param_axes.append(axis)
                    index_1d.append(axes[axis] + offset if offset else axes[axis])
                else:
                    c = int(eval(payload, _EVAL_GLOBALS, dict(bindings)))  # noqa: S307
                    index_1d.append(np.asarray([c], dtype=np.int64))
            self._check_vector_bounds(spec.data, spec.subset_str, index_1d, arr.shape)
            out_targets.append((spec, arr, index_1d, param_axes))

        # Run the tasklet once on whole arrays.  Map parameters are visible
        # as index grids, program symbols as scalars -- mirroring the
        # interpreter's per-iteration namespace.
        ns: Dict[str, Any] = dict(bindings)
        ns.update(grids)
        ns.update(values)
        try:
            exec(plan.code_obj, self._VEC_GLOBALS, ns)  # noqa: S102
        except Exception as exc:  # noqa: BLE001 - same typed error as TaskletRunner
            raise TaskletExecutionError(plan.tasklet.label, exc) from exc

        writes: List[Callable[[], None]] = []
        for spec, arr, index_1d, param_axes in out_targets:
            if spec.conn not in ns:
                raise TaskletExecutionError(
                    plan.tasklet.label,
                    KeyError(f"tasklet did not assign output connector '{spec.conn}'"),
                )
            value = np.broadcast_to(np.asarray(ns[spec.conn]), shape_full)
            writes.append(
                self._make_write(spec, arr, index_1d, param_axes, value, shape_full)
            )
        return writes, iterations

    # .................................................................. #
    @staticmethod
    def _index_arrays(idx_code: List[Any], idx_ns: Dict[str, Any]) -> List[Any]:
        out = []
        for code in idx_code:
            v = eval(code, _EVAL_GLOBALS, idx_ns)  # noqa: S307
            out.append(v if isinstance(v, np.ndarray) else int(v))
        return out

    @staticmethod
    def _check_vector_bounds(
        data: str, subset_str: str, idx: List[Any], shape: Tuple[int, ...]
    ) -> None:
        if len(idx) != len(shape):
            raise MemoryViolation(data, subset_str, shape, "dimensionality mismatch")
        for v, dim in zip(idx, shape):
            arr = np.asarray(v)
            if arr.size == 0:
                continue
            lo, hi = int(arr.min()), int(arr.max())
            if lo < 0 or hi >= dim:
                raise MemoryViolation(data, subset_str, shape)

    def _make_write(
        self,
        spec: _OutputSpec,
        arr: np.ndarray,
        index_1d: List[np.ndarray],
        param_axes: List[int],
        value: np.ndarray,
        shape_full: Tuple[int, ...],
    ) -> Callable[[], None]:
        from repro.sdfg.dtypes import reduction_function

        nparams = len(shape_full)
        red_axes = [a for a in range(nparams) if a not in param_axes]
        kept_sorted = sorted(param_axes)
        kept_shape = tuple(shape_full[a] for a in kept_sorted)
        # Value axes end up in ascending-parameter order; ``perm`` reorders
        # them to the output's dimension order, ``target_shape`` re-inserts
        # length-1 axes for constant-indexed dimensions.
        perm = [kept_sorted.index(a) for a in param_axes]
        target_shape = tuple(
            shape_full[payload[0]] if kind == "param" else 1
            for kind, payload in spec.dims
        )
        mesh = np.ix_(*index_1d) if index_1d else ()
        # Reduction slabs, flattened in iteration (lexicographic) order.
        slabs = np.moveaxis(value, red_axes, range(len(red_axes))).reshape(
            (-1,) + kept_shape
        )

        def shape_for_write(a: np.ndarray) -> np.ndarray:
            return a.transpose(perm).reshape(target_shape)

        if spec.wcr is None:

            def apply_plain() -> None:
                arr[mesh] = shape_for_write(slabs[0])

            return apply_plain

        func = reduction_function(spec.wcr)

        def apply_wcr() -> None:
            # Sequential accumulation in iteration order: bitwise identical
            # to the interpreter's per-element read-modify-write loop
            # (NumPy's pairwise reduce would round differently).  Each step
            # casts back to the container dtype, mirroring the interpreter's
            # per-iteration store (accumulating in the promoted dtype would
            # round non-float64 containers differently).
            region = np.array(arr[mesh], copy=True)
            for k in range(slabs.shape[0]):
                region = np.asarray(func(region, shape_for_write(slabs[k]))).astype(
                    arr.dtype, copy=False
                )
            arr[mesh] = region

        return apply_wcr


# ---------------------------------------------------------------------- #
# Backend
# ---------------------------------------------------------------------- #
class VectorizedProgram(CompiledProgram):
    """A program bound to a reusable :class:`VectorizedExecutor`."""

    def __init__(self, sdfg: SDFG, max_transitions: int = 100_000) -> None:
        super().__init__(sdfg)
        self.executor = VectorizedExecutor(sdfg, max_transitions=max_transitions)

    @property
    def stats(self) -> Dict[str, int]:
        return self.executor.stats

    def run(
        self,
        arguments: Optional[Mapping[str, Any]] = None,
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> ExecutionResult:
        return self.executor.run(arguments, symbols, collect_coverage=collect_coverage)


class VectorizedBackend(ExecutionBackend):
    """Compiles map scopes to NumPy array programs, caching by content hash.

    The hash covers the exact serialization *including node guids* (which
    clones and JSON roundtrips preserve), so cache hits occur for repeated
    prepares of the same program object, its clones, and worker-side
    deserializations -- while two independent builds of the same kernel,
    whose coverage features are keyed by their distinct guids, correctly
    compile separately.
    """

    name = "vectorized"
    #: Program type this backend prepares; subclasses (e.g. the compiled
    #: whole-program backend) swap it while inheriting the cache policy.
    program_class = VectorizedProgram

    def __init__(self, cache_size: int = 64) -> None:
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[str, int], VectorizedProgram]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def prepare(self, sdfg: SDFG, max_transitions: int = 100_000) -> VectorizedProgram:
        key = (sdfg_content_hash(sdfg), max_transitions)
        program = self._cache.get(key)
        if program is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return program
        self.cache_misses += 1
        program = self.program_class(sdfg, max_transitions=max_transitions)
        self._cache[key] = program
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return program
