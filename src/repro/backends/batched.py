"""The trial-batched compiled backend.

Differential fuzzing runs the *same* program dozens of times per instance on
independently sampled inputs.  The compiled backend removed per-transition
and per-scope interpretation overhead, but each trial still pays NumPy's
per-call fixed costs (kernel dispatch, gather/scatter bookkeeping) on every
scope -- for the small-extent cutouts fuzzing produces, those fixed costs
dominate the arithmetic.

This backend amortizes them across trials: ``K`` trial inputs are stacked
along a **leading batch axis** (container ``A`` of shape ``S`` becomes one
array of shape ``(K,) + S``), and each vectorized scope executes *once* per
batch instead of once per trial.  Map-parameter grids broadcast against
batched operands by NumPy's trailing-axes alignment, so the scope kernels
and the composed fused-chain code objects run unmodified -- only gather,
scatter and output-broadcast geometry grow the extra axis (the ``batched``
emitter, :mod:`repro.backends.codegen.batched`, binds plans identically and
contributes the static batchability predicates).

Not everything batches, and verdict fidelity is non-negotiable:

* **WCR / order-dependent scopes** accumulate sequentially in iteration
  order; they execute *per trial* (the op list swaps the store to one
  trial's batch-axis views at a time), as do interpreter-fallback scopes,
  plain tasklets, access copies and nested SDFGs;
* programs whose control flow could differ between trials (interstate
  expressions reading scalar containers, or drivers in ``interpreted``
  mode) are not batched at all;
* any failure during a batched attempt -- a crashing trial, a bounds
  violation, a plan that did not survive contact -- abandons the batch and
  reruns every trial serially through the compiled path, so per-trial error
  attribution (and therefore every differential verdict) is **bitwise
  identical** to ``K`` serial runs by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.backends.compiled import (
    CompiledBackend,
    CompiledExecutor,
    CompiledWholeProgram,
)
from repro.backends.execute import _WriteGeom
from repro.interpreter.coverage import CoverageMap
from repro.interpreter.errors import ExecutionError
from repro.interpreter.executor import ExecutionResult
from repro.telemetry import TRACER as _TRACER, inc as _metric_inc

__all__ = ["BatchedBackend", "BatchedProgram", "BatchedExecutor"]


class _BatchAbort(Exception):
    """Internal: the batched attempt cannot proceed; rerun serially.

    Deliberately not an :class:`ExecutionError` -- it signals an
    infrastructure retreat, not a program failure."""


class BatchedExecutor(CompiledExecutor):
    """A :class:`CompiledExecutor` that can run a batch of trials at once.

    Serial runs (``run``) behave exactly like the compiled executor.  A
    batched run (:meth:`run_batched`) swaps in a second op list where
    batchable scopes execute on ``(K,) + shape`` containers and everything
    else iterates the trials against per-trial batch-axis views; the
    gather/write geometry overrides below are keyed on ``_batched_mode`` so
    the shared runtime code paths stay untouched.
    """

    EMITTER_NAME = "batched"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Current batch size (0 outside a batched run).
        self._batch = 0
        #: The batched store: container name -> ``(K,) + shape`` array.
        self._bstore: Dict[str, np.ndarray] = {}
        #: Per-trial views into :attr:`_bstore` (trial ``k``'s serial-shaped
        #: store, used by per-trial ops; views alias the batch arrays, so
        #: in-place writes flow both ways).
        self._trial_stores: List[Dict[str, np.ndarray]] = []
        #: Lazily built batched op lists (parallel to ``_compiled_states``).
        self._batched_ops: Optional[List[List[Callable]]] = None
        self._serial_ops = self._state_ops
        self._batched_mode = False
        #: Whether the program's control flow admits batching at all.
        self._batchable: bool = self.emitter.control_is_static(
            self.sdfg, self.control_mode
        )

    # .................................................................. #
    # Batched op lists
    # .................................................................. #
    def _batched_state_ops(self) -> List[List[Callable]]:
        if self._batched_ops is None:
            self._batched_ops = [
                self._build_batched_ops(s) for s in self._compiled_states
            ]
        return self._batched_ops

    def _build_batched_ops(self, state) -> List[Callable]:
        """The batched twin of ``_build_state_ops``: batchable scopes get
        batch-axis ops, everything else runs per trial."""
        from repro.sdfg.nodes import MapEntry, MapExit

        table = self._table_for(state)
        order = self._state_order(state)
        scopes = self._scope_cache[id(state)]
        ops: List[Callable] = []
        for node in order:
            if scopes.get(node) is not None or isinstance(node, MapExit):
                continue
            if isinstance(node, MapEntry):
                if node.guid in table.members:
                    continue
                fused = table.heads.get(node.guid)
                if fused is not None:
                    if self.emitter.chain_is_batchable(fused):
                        ops.append(self._make_batched_fused_op(fused))
                    else:
                        ops.append(
                            self._make_per_trial_op(
                                self._make_fused_op(state, fused, table)
                            )
                        )
                    continue
                plan = table.plans.get(node.guid)
                if self.emitter.scope_is_batchable(plan):
                    ops.append(self._make_batched_scope_op(plan))
                else:
                    ops.append(
                        self._make_per_trial_op(
                            self._make_scope_op(state, node, plan)
                        )
                    )
                continue
            op = self._make_node_op(state, node)
            if op is not None:
                ops.append(self._make_per_trial_op(op))
        return ops

    def _make_batched_scope_op(self, plan) -> Callable:
        def op(symbols, _plan=plan):
            if not _plan.usable:
                raise _BatchAbort("scope plan unusable")
            writes, _ = self._compute_vectorized(_plan, symbols)
            for apply_write in writes:
                apply_write()

        return op

    def _make_batched_fused_op(self, fused) -> Callable:
        def op(symbols, _fused=fused):
            if not _fused.usable:
                raise _BatchAbort("fused chain unusable")
            writes, _ = self._compute_fused(_fused, symbols)
            for apply_write in writes:
                apply_write()

        return op

    def _make_per_trial_op(self, op: Callable) -> Callable:
        """Run a serial op once per trial against that trial's store views.

        The setup-cache epoch is trial-specific (``k + 1``; batched setups
        use epoch 0) so a plan's cached geometry never mixes a trial view
        with the batch array.  Symbols are shared: dataflow never mutates
        the top-level symbol dict.
        """

        def per_trial(symbols, _op=op):
            saved = self._store
            try:
                for k in range(self._batch):
                    self._store = self._trial_stores[k]
                    self._setup_epoch = k + 1
                    self._batched_mode = False
                    _op(symbols)
            finally:
                self._store = saved
                self._setup_epoch = 0
                self._batched_mode = True

        return per_trial

    # .................................................................. #
    # Batch-axis gather / write geometry (active only in batched mode)
    # .................................................................. #
    def _resolve_gather(self, spec, idx_ns, nparams):
        if not self._batched_mode:
            return super()._resolve_gather(spec, idx_ns, nparams)
        arr = self._store.get(spec.data)
        if arr is None:
            raise ExecutionError(f"Read from unknown container '{spec.data}'")
        idx = self._index_arrays(spec.idx_code, idx_ns)
        # Indices are pure symbol/parameter expressions -- identical for
        # every trial -- checked against the per-trial shape.
        self._check_vector_bounds(spec.data, spec.subset_str, idx, arr.shape[1:])
        fast = self._gather_slices(idx, arr.ndim - 1, nparams)
        if fast is not None:
            sls, taxes = fast
            bsls = (slice(None),) + sls
            if taxes is None:

                def fetch(_arr=arr, _sls=bsls):
                    return _arr[_sls].copy()

            else:
                t = (0,) + tuple(a + 1 for a in taxes)

                def fetch(_arr=arr, _sls=bsls, _t=t):
                    return _arr[_sls].transpose(_t).copy()

            return spec.conn, fetch

        adv = (slice(None),) + tuple(idx)

        def fetch(_arr=arr, _idx=adv, _np=nparams):
            value = _arr[_idx]
            if value.ndim != _np + 1:
                # All-constant (or 0-d) advanced indices collapse the grid
                # axes; restore them so the batch axis stays leading and
                # broadcasting stays trailing-aligned.
                value = value.reshape((self._batch,) + (1,) * _np)
            return value

        return spec.conn, fetch

    def _resolve_write(self, spec, axes, shape_full, bindings):
        if not self._batched_mode:
            return super()._resolve_write(spec, axes, shape_full, bindings)
        if spec.wcr is not None:
            # The op-list builder never batches WCR scopes; a WCR write
            # reaching batched geometry is an internal inconsistency.
            raise _BatchAbort("WCR write in batched mode")
        arr = self._store.get(spec.data)
        if arr is None:
            raise ExecutionError(f"Write to unknown container '{spec.data}'")
        # Resolve against the per-trial shape, then prefix the batch axis.
        geom = self._resolve_write_shape(spec, axes, shape_full, bindings, arr)
        return geom

    def _resolve_write_shape(self, spec, axes, shape_full, bindings, arr):
        from repro.interpreter.executor import _EVAL_GLOBALS
        from repro.interpreter.errors import MemoryViolation

        if len(spec.dims) != arr.ndim - 1:
            raise MemoryViolation(
                spec.data, spec.subset_str, arr.shape[1:], "dimensionality mismatch"
            )
        index_1d: List[np.ndarray] = []
        param_axes: List[int] = []
        for kind, payload in spec.dims:
            if kind == "param":
                axis, offset = payload
                param_axes.append(axis)
                index_1d.append(axes[axis] + offset if offset else axes[axis])
            else:
                c = int(eval(payload, _EVAL_GLOBALS, bindings))  # noqa: S307
                index_1d.append(np.asarray([c], dtype=np.int64))
        self._check_vector_bounds(
            spec.data, spec.subset_str, index_1d, arr.shape[1:]
        )
        nparams = len(shape_full)
        red_axes = [a for a in range(nparams) if a not in param_axes]
        kept_sorted = sorted(param_axes)
        kept_shape = tuple(shape_full[a] for a in kept_sorted)
        perm = [kept_sorted.index(a) for a in param_axes]
        target_shape = tuple(
            shape_full[payload[0]] if kind == "param" else 1
            for kind, payload in spec.dims
        )
        slices = [self._seq_slice(v, trusted=True) for v in index_1d]
        if index_1d and all(s is not None for s in slices):
            mesh: Tuple = (slice(None),) + tuple(slices)
        else:
            inner = np.ix_(*index_1d) if index_1d else ()
            mesh = (slice(None),) + tuple(inner)
        identity_shape = perm == sorted(perm) and target_shape == kept_shape
        return _WriteGeom(
            spec, arr, mesh, perm, target_shape, red_axes, kept_shape,
            identity_shape,
        )

    def _output_value(self, tasklet, conn, ns, shape_full, display_conn=None):
        # Overrides a base *staticmethod*; every call site goes through
        # ``self``, so the instance method shadows it cleanly.
        if not self._batched_mode:
            return CompiledExecutor._output_value(
                tasklet, conn, ns, shape_full, display_conn=display_conn
            )
        value = CompiledExecutor._output_value(
            tasklet, conn, ns, (self._batch,) + tuple(shape_full),
            display_conn=display_conn,
        )
        return value

    def _make_write(self, geom: _WriteGeom, value: np.ndarray, shape_full):
        if not self._batched_mode:
            return super()._make_write(geom, value, shape_full)
        # Batchable scopes have no WCR and (bijectivity) no reduction axes:
        # the value is ``(K,) + shape_full`` and one assignment suffices.
        if geom.red_axes or geom.spec.wcr is not None:
            raise _BatchAbort("reduction write in batched mode")
        arr, mesh = geom.arr, geom.mesh
        if geom.identity_shape:

            def apply_direct() -> None:
                arr[mesh] = value

            return apply_direct
        perm = [0] + [p + 1 for p in geom.perm]
        target = (self._batch,) + geom.target_shape

        def apply_shaped() -> None:
            arr[mesh] = value.transpose(perm).reshape(target)

        return apply_shaped

    # .................................................................. #
    # The batched run
    # .................................................................. #
    def run_batched(
        self,
        arguments_list: List[Mapping[str, Any]],
        symbols: Optional[Mapping[str, Any]] = None,
    ) -> List[ExecutionResult]:
        """Execute ``K`` trials in one batch-axis pass.

        Any exception -- program failure or batching limitation alike --
        propagates to the caller (:class:`BatchedProgram`), which reruns
        the whole batch serially: per-trial attribution is impossible
        mid-batch, and the serial rerun reproduces the exact per-trial
        outcomes by construction (argument coercion copies inputs, so the
        abandoned attempt leaves no trace).
        """
        trial_stores: List[Dict[str, np.ndarray]] = []
        syms0: Optional[Dict[str, Any]] = None
        for arguments in arguments_list:
            self._setup(dict(arguments), dict(symbols or {}))
            if syms0 is None:
                syms0 = dict(self._symbols)
            elif self._symbols != syms0:
                raise _BatchAbort("symbol values differ across trials")
            trial_stores.append(self._store)
            self._store = {}
        assert syms0 is not None
        names = list(trial_stores[0])
        for store in trial_stores[1:]:
            if list(store) != names:
                raise _BatchAbort("store layouts differ across trials")
            for name in names:
                a, b = trial_stores[0][name], store[name]
                if a.shape != b.shape or a.dtype != b.dtype:
                    raise _BatchAbort("container geometry differs across trials")

        batch = len(trial_stores)
        self._bstore = {
            name: np.empty(
                (batch,) + trial_stores[0][name].shape, trial_stores[0][name].dtype
            )
            for name in names
        }
        for k, store in enumerate(trial_stores):
            for name in names:
                self._bstore[name][k] = store[name]
        self._trial_stores = [
            {name: self._bstore[name][k] for name in names} for k in range(batch)
        ]
        self._store = self._bstore
        self._symbols = dict(syms0)
        self._coverage = None
        self._tasklet_counts = {}
        self._setup_cache.clear()
        self._fused_done.clear()
        self._batch = batch
        self._batched_mode = True
        self._state_ops = self._batched_state_ops()
        try:
            transitions = self._run_control_loop()
            final_symbols = dict(self._symbols)
            results: List[ExecutionResult] = []
            for k in range(batch):
                outputs = {
                    name: np.array(self._bstore[name][k], copy=True)
                    for name, desc in self.sdfg.arrays.items()
                    if not desc.transient and name in self._bstore
                }
                results.append(
                    ExecutionResult(
                        outputs=outputs,
                        symbols=dict(final_symbols),
                        transitions=transitions,
                        coverage=CoverageMap(),
                    )
                )
            return results
        finally:
            self._state_ops = self._serial_ops
            self._batched_mode = False
            self._batch = 0
            self._bstore = {}
            self._trial_stores = []
            self._store = {}
            self._symbols = {}
            self._setup_cache.clear()
            self._setup_epoch = 0


class BatchedProgram(CompiledWholeProgram):
    """A compiled program that executes batches along a leading trial axis.

    Single runs are plain compiled runs.  ``run_batch`` attempts the
    batch-axis execution when the program's control flow admits it and
    falls back to the serial default on *any* failure, keeping per-trial
    outcomes bitwise identical to serial execution.
    """

    executor_class = BatchedExecutor

    def run_batch(
        self,
        arguments_list: List[Mapping[str, Any]],
        symbols: Optional[Mapping[str, Any]] = None,
        collect_coverage: bool = False,
    ) -> List[Union[ExecutionResult, ExecutionError]]:
        executor = self.executor
        if (
            len(arguments_list) > 1
            and not collect_coverage
            and executor._batchable
        ):
            try:
                with _TRACER.span("batch.round", "fuzz") as span:
                    span.set("trials", len(arguments_list))
                    results = list(executor.run_batched(arguments_list, symbols))
                _metric_inc(
                    "repro_batch_rounds_total", labels={"path": "batched"}
                )
                return results
            except Exception:  # noqa: BLE001 - any failure: rerun serially
                pass
        _metric_inc("repro_batch_rounds_total", labels={"path": "serial"})
        return super().run_batch(
            arguments_list, symbols, collect_coverage=collect_coverage
        )


class BatchedBackend(CompiledBackend):
    """Whole-program compilation plus trial batching: ``K`` fuzzing trials
    stack along a leading batch axis and each batchable scope executes once
    per batch.  Shares the compiled backend's artifact format (and disk
    cache entries) -- the batch axis is a run-time notion, not a compile-time
    one."""

    name = "batched"
    program_class = BatchedProgram
