"""Convenience builders that lower common numerical operations to the IR.

The paper's implementation uses DaCe's Python/C/Fortran frontends to obtain
dataflow graphs from source programs.  This reproduction instead provides a
library of *op builders* (:mod:`repro.frontend.ops`) -- matrix products,
element-wise maps, reductions, softmax, initialization -- plus a small
loop-nest DSL (:mod:`repro.frontend.loopdsl`) for sequential control flow.
The workload programs in :mod:`repro.workloads` are assembled from these
builders.
"""

from repro.frontend.loopdsl import LoopNest, build_loop_nest
from repro.frontend.ops import (
    add_batched_matmul,
    add_bias_add,
    add_copy,
    add_elementwise_binary,
    add_elementwise_unary,
    add_init,
    add_matmul,
    add_reduce,
    add_scale,
    add_softmax_lastdim,
)

__all__ = [
    "add_matmul",
    "add_batched_matmul",
    "add_elementwise_unary",
    "add_elementwise_binary",
    "add_scale",
    "add_bias_add",
    "add_init",
    "add_reduce",
    "add_softmax_lastdim",
    "add_copy",
    "LoopNest",
    "build_loop_nest",
]
