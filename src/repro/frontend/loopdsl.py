"""A small DSL for building sequential loop nests in the state machine.

Sequential (control-flow) loops are expressed in the IR as guard/body/exit
state patterns.  Building a multi-level nest by hand is verbose, so
:func:`build_loop_nest` takes a list of loop descriptors and a body-builder
callback and assembles the states and interstate edges.  The synthetic
CLOUDSC workload and the loop-unrolling case study use this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.sdfg.sdfg import SDFG, InterstateEdge
from repro.sdfg.state import SDFGState

__all__ = ["LoopNest", "build_loop_nest"]


@dataclass
class LoopNest:
    """Descriptor of one sequential loop level.

    ``for <var> = <init>; <condition>; <var> = <increment>``
    """

    var: str
    init: Union[str, int]
    condition: str
    increment: str

    @classmethod
    def ascending(cls, var: str, start: Union[str, int], bound: str, step: int = 1) -> "LoopNest":
        """``for var = start; var < bound; var += step``."""
        return cls(var, start, f"{var} < {bound}", f"{var} + {step}")

    @classmethod
    def descending(cls, var: str, start: Union[str, int], bound: str, step: int = 1) -> "LoopNest":
        """``for var = start; var >= bound; var -= step`` (negative-step loop,
        the pattern whose unrolling the CLOUDSC case study found broken)."""
        return cls(var, start, f"{var} >= {bound}", f"{var} - {step}")


def build_loop_nest(
    sdfg: SDFG,
    loops: Sequence[LoopNest],
    body_builder: Callable[[SDFG, SDFGState], None],
    before: Optional[SDFGState] = None,
    after: Optional[SDFGState] = None,
    label: str = "loop",
) -> Tuple[SDFGState, SDFGState, SDFGState]:
    """Build a (possibly multi-level) sequential loop nest.

    ``body_builder(sdfg, state)`` populates the innermost body state.
    Returns ``(before_state, innermost_body_state, after_state)``.
    """
    if not loops:
        raise ValueError("At least one loop level is required")
    if before is None:
        before = sdfg.add_state(f"{label}_before")
    if after is None:
        after = sdfg.add_state(f"{label}_after")

    current_before = before
    current_after = after
    body: Optional[SDFGState] = None
    # Build outermost-first; each level's body contains the next level.
    for depth, loop in enumerate(loops):
        body = sdfg.add_state(f"{label}_body_{depth}")
        sdfg.add_loop(
            current_before,
            body,
            current_after,
            loop.var,
            loop.init,
            loop.condition,
            loop.increment,
        )
        if depth + 1 < len(loops):
            # The next level nests between fresh pre/post states that live
            # inside this level's body.  We model that by using the body state
            # itself as the "before" anchor and a new join state as "after".
            join = sdfg.add_state(f"{label}_join_{depth}")
            current_before = body
            current_after = join
            # The back edge of the current loop must leave from the join
            # state rather than the body: rewire it.
            for e in list(sdfg.out_edges(body)):
                if e.data.assignments.get(loop.var) is not None:
                    sdfg.add_edge(join, e.dst, e.data)
                    sdfg.remove_edge(e)
        else:
            body_builder(sdfg, body)
    assert body is not None
    return before, body, after
