"""Builders for common numerical operations on dataflow states.

Two granularities are used deliberately:

* **fine-grained** ops are map scopes over element-wise tasklets; these are
  the structures the evaluated transformations (tiling, vectorization,
  fusion, ...) match and rewrite, so every loop nest the paper's case studies
  optimize is expressed this way;
* **coarse-grained** ops are single block tasklets operating on whole array
  views (e.g. ``C = A @ B``); these keep interpretation of the surrounding
  program fast where the structure is not the subject of a transformation
  (the role MKL-backed library nodes play in the paper's BERT case study).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sdfg.dtypes import ScheduleType
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState

__all__ = [
    "add_matmul",
    "add_batched_matmul",
    "add_elementwise_unary",
    "add_elementwise_binary",
    "add_scale",
    "add_bias_add",
    "add_init",
    "add_reduce",
    "add_softmax_lastdim",
    "add_copy",
]


def _shape_of(sdfg: SDFG, name: str) -> List[str]:
    return [str(s) for s in sdfg.data(name).shape]


def _range_dict(params: Sequence[str], shape: Sequence[str]) -> Dict[str, str]:
    return {p: f"0:({s})-1" for p, s in zip(params, shape)}


# ---------------------------------------------------------------------- #
# Matrix products
# ---------------------------------------------------------------------- #
def add_matmul(
    sdfg: SDFG,
    state: SDFGState,
    a: str,
    b: str,
    c: str,
    coarse: bool = False,
    accumulate: bool = False,
    label: Optional[str] = None,
) -> Tuple:
    """Add ``C (+)= A @ B`` to a state.

    Fine-grained form: a 3D map (``i, j, k``) with a ``sum`` write-conflict
    resolution on ``C[i, j]`` (the output is zero-initialized first unless
    ``accumulate`` is set).  Coarse-grained form: one block tasklet.
    """
    label = label or f"matmul_{c}"
    n, k = _shape_of(sdfg, a)
    k2, m = _shape_of(sdfg, b)
    if coarse:
        ta = state.add_access(a)
        tb = state.add_access(b)
        tc = state.add_access(c)
        code = "z = x @ y" if not accumulate else "z = z_in + x @ y"
        inputs = ["x", "y"] + (["z_in"] if accumulate else [])
        t = state.add_tasklet(label, inputs, ["z"], code)
        state.add_edge(ta, None, t, "x", Memlet.full(a, [n, k]))
        state.add_edge(tb, None, t, "y", Memlet.full(b, [k2, m]))
        if accumulate:
            tc_in = state.add_access(c)
            state.add_edge(tc_in, None, t, "z_in", Memlet.full(c, [n, m]))
        state.add_edge(t, "z", tc, None, Memlet.full(c, [n, m]))
        return (t,)
    if not accumulate:
        add_init(sdfg, state, c, 0.0, label=f"{label}_init")
    tasklet, entry, exit_ = state.add_mapped_tasklet(
        label,
        {"i": f"0:({n})-1", "j": f"0:({m})-1", "k": f"0:({k})-1"},
        {"a_in": Memlet.simple(a, "i, k"), "b_in": Memlet.simple(b, "k, j")},
        "c_out = a_in * b_in",
        {"c_out": Memlet(c, "i, j", wcr="sum")},
    )
    return tasklet, entry, exit_


def add_batched_matmul(
    sdfg: SDFG,
    state: SDFGState,
    a: str,
    b: str,
    c: str,
    batch_dims: int = 2,
    label: Optional[str] = None,
) -> Tuple:
    """Add a batched ``C[b...] = A[b...] @ B[b...]`` as one block tasklet.

    ``batch_dims`` leading dimensions are treated as batch dimensions; the
    trailing two dimensions are contracted with ``numpy.matmul``.
    """
    label = label or f"bmm_{c}"
    ta, tb, tc = state.add_access(a), state.add_access(b), state.add_access(c)
    t = state.add_tasklet(label, ["x", "y"], ["z"], "z = np.matmul(x, y)")
    state.add_edge(ta, None, t, "x", Memlet.full(a, _shape_of(sdfg, a)))
    state.add_edge(tb, None, t, "y", Memlet.full(b, _shape_of(sdfg, b)))
    state.add_edge(t, "z", tc, None, Memlet.full(c, _shape_of(sdfg, c)))
    return (t,)


# ---------------------------------------------------------------------- #
# Element-wise maps
# ---------------------------------------------------------------------- #
def add_elementwise_unary(
    sdfg: SDFG,
    state: SDFGState,
    src: str,
    dst: str,
    expression: str = "out_val = in_val",
    label: Optional[str] = None,
    schedule: ScheduleType = ScheduleType.Sequential,
) -> Tuple[Tasklet, MapEntry, MapExit]:
    """Add ``dst[idx] = f(src[idx])`` over the full (shared) index space.

    ``expression`` is tasklet code using connectors ``in_val`` and ``out_val``.
    """
    shape = _shape_of(sdfg, dst)
    params = [f"i{d}" for d in range(len(shape))]
    idx = ", ".join(params)
    return state.add_mapped_tasklet(
        label or f"ew_{dst}",
        _range_dict(params, shape),
        {"in_val": Memlet.simple(src, idx)},
        expression,
        {"out_val": Memlet.simple(dst, idx)},
        schedule=schedule,
    )


def add_elementwise_binary(
    sdfg: SDFG,
    state: SDFGState,
    lhs: str,
    rhs: str,
    dst: str,
    operator: str = "+",
    label: Optional[str] = None,
) -> Tuple[Tasklet, MapEntry, MapExit]:
    """Add ``dst[idx] = lhs[idx] <op> rhs[idx]`` over the full index space."""
    shape = _shape_of(sdfg, dst)
    params = [f"i{d}" for d in range(len(shape))]
    idx = ", ".join(params)
    return state.add_mapped_tasklet(
        label or f"ew_{operator}_{dst}",
        _range_dict(params, shape),
        {"a_val": Memlet.simple(lhs, idx), "b_val": Memlet.simple(rhs, idx)},
        f"out_val = a_val {operator} b_val",
        {"out_val": Memlet.simple(dst, idx)},
    )


def add_scale(
    sdfg: SDFG,
    state: SDFGState,
    src: str,
    dst: str,
    scale: str,
    label: Optional[str] = None,
) -> Tuple[Tasklet, MapEntry, MapExit]:
    """Add ``dst[idx] = src[idx] * scale`` where ``scale`` is a scalar container.

    This is the exact loop-nest structure of the BERT multi-head-attention
    scaling step the Fig. 5 case study vectorizes.
    """
    shape = _shape_of(sdfg, dst)
    params = [f"i{d}" for d in range(len(shape))]
    idx = ", ".join(params)
    return state.add_mapped_tasklet(
        label or f"scale_{dst}",
        _range_dict(params, shape),
        {"in_val": Memlet.simple(src, idx), "s": Memlet.simple(scale, "0")},
        "out_val = in_val * s",
        {"out_val": Memlet.simple(dst, idx)},
    )


def add_bias_add(
    sdfg: SDFG,
    state: SDFGState,
    src: str,
    bias: str,
    dst: str,
    label: Optional[str] = None,
) -> Tuple[Tasklet, MapEntry, MapExit]:
    """Add ``dst[..., j] = src[..., j] + bias[j]`` (bias broadcast on the last dim)."""
    shape = _shape_of(sdfg, dst)
    params = [f"i{d}" for d in range(len(shape))]
    idx = ", ".join(params)
    return state.add_mapped_tasklet(
        label or f"bias_{dst}",
        _range_dict(params, shape),
        {"in_val": Memlet.simple(src, idx), "b_val": Memlet.simple(bias, params[-1])},
        "out_val = in_val + b_val",
        {"out_val": Memlet.simple(dst, idx)},
    )


def add_init(
    sdfg: SDFG,
    state: SDFGState,
    dst: str,
    value: float = 0.0,
    label: Optional[str] = None,
) -> Tuple[Tasklet, MapEntry, MapExit]:
    """Initialize every element of ``dst`` to a constant value."""
    shape = _shape_of(sdfg, dst)
    params = [f"i{d}" for d in range(len(shape))]
    idx = ", ".join(params)
    return state.add_mapped_tasklet(
        label or f"init_{dst}",
        _range_dict(params, shape),
        {},
        f"out_val = {value!r}",
        {"out_val": Memlet.simple(dst, idx)},
    )


# ---------------------------------------------------------------------- #
# Reductions and normalizations
# ---------------------------------------------------------------------- #
def add_reduce(
    sdfg: SDFG,
    state: SDFGState,
    src: str,
    dst: str,
    wcr: str = "sum",
    axis: Optional[int] = None,
    label: Optional[str] = None,
) -> Tuple[Tasklet, MapEntry, MapExit]:
    """Reduce ``src`` into ``dst`` with the given write-conflict resolution.

    With ``axis=None`` the reduction is total (``dst`` must be a scalar or a
    one-element array); otherwise the named axis is reduced away.  The
    destination is assumed to be initialized to the reduction identity.
    """
    shape = _shape_of(sdfg, src)
    params = [f"i{d}" for d in range(len(shape))]
    idx = ", ".join(params)
    if axis is None:
        dst_idx = ", ".join("0" for _ in _shape_of(sdfg, dst))
    else:
        dst_params = [p for d, p in enumerate(params) if d != axis]
        dst_idx = ", ".join(dst_params) if dst_params else "0"
    return state.add_mapped_tasklet(
        label or f"reduce_{dst}",
        _range_dict(params, shape),
        {"in_val": Memlet.simple(src, idx)},
        "out_val = in_val",
        {"out_val": Memlet(dst, dst_idx, wcr=wcr)},
    )


def add_softmax_lastdim(
    sdfg: SDFG,
    state: SDFGState,
    src: str,
    dst: str,
    label: Optional[str] = None,
) -> Tuple[Tasklet]:
    """Softmax along the last dimension as a coarse-grained block tasklet."""
    shape = _shape_of(sdfg, src)
    ts, td = state.add_access(src), state.add_access(dst)
    code = (
        "m = np.max(x, axis=-1, keepdims=True)\n"
        "e = np.exp(x - m)\n"
        "y = e / np.sum(e, axis=-1, keepdims=True)"
    )
    t = state.add_tasklet(label or f"softmax_{dst}", ["x"], ["y"], code)
    state.add_edge(ts, None, t, "x", Memlet.full(src, shape))
    state.add_edge(t, "y", td, None, Memlet.full(dst, shape))
    return (t,)


def add_copy(
    sdfg: SDFG,
    state: SDFGState,
    src: str,
    dst: str,
    src_subset: Optional[str] = None,
    dst_subset: Optional[str] = None,
) -> None:
    """Copy (a subset of) ``src`` into (a subset of) ``dst``."""
    src_shape = _shape_of(sdfg, src)
    dst_shape = _shape_of(sdfg, dst)
    a, b = state.add_access(src), state.add_access(dst)
    memlet = Memlet(
        src,
        src_subset if src_subset is not None else ", ".join(f"0:({s})-1" for s in src_shape),
        other_subset=(
            dst_subset if dst_subset is not None else ", ".join(f"0:({s})-1" for s in dst_shape)
        ),
    )
    state.add_nedge(a, b, memlet)
