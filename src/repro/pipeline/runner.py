"""Shared-nothing sweep execution: serial loop or multiprocessing pool.

Each worker receives only plain picklable :class:`SweepTask` descriptions,
rebuilds the workload from its suite/name (or serialized JSON), re-derives
the transformation instance by index, runs the full FuzzyFlow verification,
and returns a JSON-safe outcome dict.  With ``workers <= 1`` the same task
function runs inline, so serial and parallel sweeps are bit-identical in
everything but wall-clock time.

Outcomes stream back incrementally (``imap_unordered``) and are reassembled
into task order, so a progress callback sees every verdict as it lands while
the aggregated :class:`SweepResult` remains identical to a serial run.

Any run -- serial or parallel -- can journal outcomes to a
:class:`repro.cluster.journal.ResultStore` (``store=``) and resume from one
(``completed=``): tasks whose deterministic :attr:`SweepTask.task_id` is
already journaled are restored instead of re-executed, so a killed sweep
re-runs only its unfinished tail.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import faultinject
from repro.core.reporting import Verdict
from repro.core.verifier import FuzzyFlowVerifier
from repro.pipeline.result import SweepResult
from repro.pipeline.tasks import SweepTask
from repro.telemetry import TRACER as _TRACER
from repro.telemetry import MetricsRegistry, capture
from repro.telemetry import perf_counter as _perf_counter

__all__ = ["SweepRunner", "execute_task", "execute_task_with_metrics"]

#: Callback signature: (task index, outcome dict, completed count, total).
ProgressCallback = Callable[[int, Dict[str, Any], int, int], None]


def execute_task(task: SweepTask) -> Dict[str, Any]:
    """Run one sweep task and return its JSON-safe outcome.

    Infrastructure failures (a workload that no longer builds, an unknown
    transformation, ...) are captured in the ``error`` field instead of
    killing the whole sweep.
    """
    base = {
        "suite": task.suite,
        "workload": task.workload,
        "transformation": task.transformation.name,
        "match_index": task.match_index,
        "task_id": task.task_id,
        "worker": None,
        "error": None,
    }
    try:
        # Inside the try block: an `exception` fault becomes a journaled
        # UNTESTED outcome (like any infrastructure error) while `crash` /
        # `hang` faults take down or stall this process, exactly like a
        # real segfault or livelock in the verifier.
        faultinject.hit("task.execute", key=task.workload)
        sdfg = task.build_sdfg()
        xform = task.transformation.instantiate()
        verifier = FuzzyFlowVerifier(**task.verifier_kwargs)
        report = verifier.verify_instance(
            sdfg, xform, task.match_index, symbol_values=task.symbols
        )
    except Exception as exc:  # noqa: BLE001 - reported per task
        base["verdict"] = Verdict.UNTESTED.value
        base["match_description"] = task.match_description
        base["error"] = f"{type(exc).__name__}: {exc}"
        base["report"] = None
        return base
    base["verdict"] = report.verdict.value
    base["match_description"] = report.match_description
    base["report"] = report.to_dict()
    if report.verdict == Verdict.UNTESTED and report.error_message:
        # E.g. the worker-side rebuild produced fewer matches than the
        # coordinator enumerated: an infrastructure problem, not a verdict --
        # surface it through SweepResult.errors() instead of letting the
        # instance silently vanish from the verdict table.
        base["error"] = report.error_message
    return base


def execute_task_with_metrics(
    task: SweepTask,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run one sweep task, returning ``(outcome, metrics delta snapshot)``.

    The outcome dict is *identical* to :func:`execute_task`'s (journals and
    verdicts stay bitwise unaffected); the metrics delta rides alongside it
    so pool workers, cluster workers and serial loops can all report
    per-task telemetry without touching the journaled payload.  The trace
    buffer is flushed after each task so pool workers never lose events to
    an unclean process exit.
    """
    with capture() as sink:
        with _TRACER.span("task", "sweep") as span:
            span.set("task_id", task.task_id)
            outcome = execute_task(task)
            span.set("verdict", outcome.get("verdict"))
    _TRACER.flush()
    return outcome, sink.snapshot()


def _execute_indexed(
    item: Tuple[int, SweepTask],
) -> Tuple[int, Dict[str, Any], Dict[str, Any]]:
    """Pool worker wrapper carrying the task index through imap_unordered."""
    index, task = item
    outcome, metrics = execute_task_with_metrics(task)
    return index, outcome, metrics


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap on Linux); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class SweepRunner:
    """Fans sweep tasks out to a worker pool and aggregates the outcomes."""

    def __init__(self, workers: int = 1, chunksize: int = 1) -> None:
        self.workers = max(1, int(workers))
        self.chunksize = max(1, int(chunksize))

    def run(
        self,
        tasks: Sequence[SweepTask],
        suite: Optional[str] = None,
        buggy: Optional[bool] = None,
        backend: Optional[str] = None,
        progress_callback: Optional[ProgressCallback] = None,
        store: Optional[Any] = None,
        completed: Optional[Mapping[str, Dict[str, Any]]] = None,
        sweep_id: Optional[str] = None,
    ) -> SweepResult:
        """Execute all tasks and aggregate them into a :class:`SweepResult`.

        Parallel outcomes stream back as workers finish
        (``imap_unordered``) and are reassembled into task order, so serial
        and parallel runs aggregate identically while ``progress_callback``
        (if given) observes every verdict the moment it lands.  ``suite``,
        ``buggy`` and ``backend`` label the result; by default they are
        derived from the tasks themselves so the report header cannot
        contradict what was actually run.

        ``store`` (a :class:`repro.cluster.journal.ResultStore`) journals
        every fresh outcome as it lands; ``completed`` maps task IDs to
        already-journaled outcomes, which are restored at their task index
        without re-execution -- the resume path.  The progress callback only
        fires for freshly executed tasks, but its ``completed`` count
        includes the restored ones, so ``[k/total]`` lines stay truthful.
        ``sweep_id`` labels the result with a verification-service
        submission id (stripped by ``comparable_dict()``).
        """
        start = _perf_counter()
        tasks = list(tasks)
        total = len(tasks)
        if suite is None:
            suite = tasks[0].suite if tasks else "npbench"
        if buggy is None:
            buggy = any(
                bool(t.transformation.kwargs.get("inject_bug")) for t in tasks
            )
        if backend is None:
            backend = (
                tasks[0].verifier_kwargs.get("backend", "interpreter")
                if tasks
                else "interpreter"
            )

        # Partition into restored (journaled) and pending work.
        outcomes: List[Optional[Dict[str, Any]]] = [None] * total
        pending: List[Tuple[int, SweepTask]] = []
        done = 0
        for index, task in enumerate(tasks):
            restored = completed.get(task.task_id) if completed else None
            if restored is not None:
                outcomes[index] = restored
                done += 1
            else:
                pending.append((index, task))

        agg = MetricsRegistry()

        def land(
            index: int,
            outcome: Dict[str, Any],
            metrics: Optional[Dict[str, Any]] = None,
        ) -> None:
            nonlocal done
            outcomes[index] = outcome
            done += 1
            if metrics:
                agg.merge(metrics)
            if store is not None:
                store.record(outcome["task_id"], index, outcome)
            if progress_callback is not None:
                progress_callback(index, outcome, done, total)

        if self.workers == 1 or len(pending) <= 1:
            workers_used = 1
            for index, task in pending:
                outcome, metrics = execute_task_with_metrics(task)
                land(index, outcome, metrics)
        else:
            workers_used = min(self.workers, len(pending))
            ctx = _pool_context()
            with ctx.Pool(processes=workers_used) as pool:
                for index, outcome, metrics in pool.imap_unordered(
                    _execute_indexed, pending, chunksize=self.chunksize
                ):
                    land(index, outcome, metrics)
        return SweepResult(
            suite=suite,
            buggy=buggy,
            workers=workers_used,
            backend=backend,
            outcomes=outcomes,
            duration_seconds=_perf_counter() - start,
            sweep_id=sweep_id,
            telemetry=(
                None if agg.is_empty() else {"metrics": agg.snapshot()}
            ),
        )
