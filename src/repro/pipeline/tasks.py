"""Task enumeration for the parallel sweep pipeline.

A *sweep task* is one (workload x transformation x match instance) triple,
described entirely by plain picklable data: the workload is referenced by
its (suite, name) pair (or shipped as serialized JSON for custom programs),
the transformation by its registry name plus constructor kwargs, and the
match by its index in the deterministic enumeration order of
:meth:`repro.core.verifier.FuzzyFlowVerifier.enumerate_instances`.  Worker
processes rebuild everything from these descriptions -- no SDFG objects
cross the process boundary.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.verifier import FuzzyFlowVerifier
from repro.sdfg.sdfg import SDFG
from repro.sdfg.serialize import sdfg_from_json, sdfg_to_json
from repro.transforms import PatternTransformation, all_builtin_transformations
from repro.workloads import get_workload, get_workload_suite

__all__ = [
    "TransformationSpec",
    "SweepTask",
    "default_transformation_specs",
    "enumerate_sweep_tasks",
]

#: Suite name used for tasks that carry their program as serialized JSON.
CUSTOM_SUITE = "custom"


@dataclass(frozen=True)
class TransformationSpec:
    """A transformation referenced by registry name plus constructor kwargs."""

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def instantiate(self) -> PatternTransformation:
        registry = all_builtin_transformations()
        if self.name not in registry:
            raise KeyError(
                f"Unknown transformation '{self.name}' "
                f"(available: {', '.join(sorted(registry))})"
            )
        return registry[self.name](**dict(self.kwargs))


def default_transformation_specs(buggy: bool = False) -> List[TransformationSpec]:
    """One spec per registered built-in transformation (the Sec. 6.3 set)."""
    return [
        TransformationSpec(name, {"inject_bug": buggy})
        for name in sorted(all_builtin_transformations())
    ]


@dataclass
class SweepTask:
    """One (workload x transformation x match instance) unit of sweep work."""

    suite: str
    workload: str
    transformation: TransformationSpec
    match_index: int
    match_description: str
    symbols: Dict[str, int] = field(default_factory=dict)
    verifier_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Serialized program for ``suite == "custom"`` tasks (see
    #: :func:`repro.sdfg.serialize.sdfg_to_json`).
    sdfg_json: Optional[str] = None

    def build_sdfg(self) -> SDFG:
        """Rebuild the workload program on the worker side."""
        if self.sdfg_json is not None:
            return sdfg_from_json(self.sdfg_json)
        return get_workload(self.suite, self.workload).build()

    def describe(self) -> str:
        return f"{self.workload} / {self.transformation.name} #{self.match_index}"

    # ------------------------------------------------------------------ #
    # Identity and wire format (journal keys + cluster protocol)
    # ------------------------------------------------------------------ #
    @property
    def task_id(self) -> str:
        """Deterministic identity of this unit of work.

        The hash covers everything that decides the task's *outcome*: its
        coordinates, the fuzzing configuration and (for custom workloads)
        the serialized program.  Three fields are deliberately excluded:
        ``match_description`` (cosmetic, derived from the coordinates) and
        the ``backend`` and ``trial_batch`` entries of ``verifier_kwargs``
        -- backends are bitwise-equivalent by contract and trial batching
        is a pure execution-strategy knob with serial-identical verdicts,
        so a resumed or distributed sweep may complete a task on a
        different backend or batch size than the one that journaled it
        (heterogeneous workers are a free cross-check, not a different
        sweep).
        """
        kwargs = {
            k: v
            for k, v in self.verifier_kwargs.items()
            if k not in ("backend", "trial_batch")
        }
        basis = {
            "suite": self.suite,
            "workload": self.workload,
            "transformation": {
                "name": self.transformation.name,
                "kwargs": dict(self.transformation.kwargs),
            },
            "match_index": self.match_index,
            "symbols": dict(self.symbols),
            "verifier_kwargs": kwargs,
            "sdfg_json": self.sdfg_json,
        }
        canon = json.dumps(basis, sort_keys=True, default=str)
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description for the cluster wire protocol."""
        return {
            "suite": self.suite,
            "workload": self.workload,
            "transformation": {
                "name": self.transformation.name,
                "kwargs": dict(self.transformation.kwargs),
            },
            "match_index": self.match_index,
            "match_description": self.match_description,
            "symbols": dict(self.symbols),
            "verifier_kwargs": dict(self.verifier_kwargs),
            "sdfg_json": self.sdfg_json,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SweepTask":
        return cls(
            suite=d["suite"],
            workload=d["workload"],
            transformation=TransformationSpec(
                d["transformation"]["name"], dict(d["transformation"]["kwargs"])
            ),
            match_index=d["match_index"],
            match_description=d.get("match_description", ""),
            symbols=dict(d.get("symbols", {})),
            verifier_kwargs=dict(d.get("verifier_kwargs", {})),
            sdfg_json=d.get("sdfg_json"),
        )


def enumerate_sweep_tasks(
    suite: str = "npbench",
    workloads: Optional[Sequence[str]] = None,
    transformations: Optional[Sequence[TransformationSpec]] = None,
    buggy: bool = False,
    max_instances: Optional[int] = None,
    verifier_kwargs: Optional[Mapping[str, Any]] = None,
    custom_workloads: Optional[Sequence[tuple]] = None,
) -> List[SweepTask]:
    """Enumerate every (workload x transformation x match instance) task.

    ``workloads`` restricts the sweep to a subset of the suite's kernels by
    name.  ``transformations`` defaults to every registered built-in
    transformation with ``inject_bug=buggy``.  ``custom_workloads`` adds
    ``(name, sdfg, symbols)`` triples outside any registered suite; their
    programs are shipped to workers as serialized JSON.
    """
    transformations = list(transformations or default_transformation_specs(buggy))
    verifier_kwargs = dict(verifier_kwargs or {})
    verifier = FuzzyFlowVerifier(**verifier_kwargs)

    entries: List[tuple] = []
    if custom_workloads is None or suite != CUSTOM_SUITE:
        specs = get_workload_suite(suite)
        if workloads is not None:
            wanted = set(workloads)
            unknown = wanted - {s.name for s in specs}
            if unknown:
                raise KeyError(f"Unknown workloads in suite '{suite}': {sorted(unknown)}")
            specs = [s for s in specs if s.name in wanted]
        for wspec in specs:
            entries.append((suite, wspec.name, wspec.build(), dict(wspec.symbols), None))
    for name, sdfg, symbols in custom_workloads or []:
        entries.append((CUSTOM_SUITE, name, sdfg, dict(symbols), sdfg_to_json(sdfg)))

    tasks: List[SweepTask] = []
    for entry_suite, wname, sdfg, symbols, sdfg_json in entries:
        for tspec in transformations:
            xform = tspec.instantiate()
            matches = verifier.enumerate_instances(sdfg, xform, max_instances=max_instances)
            for index, match in enumerate(matches):
                tasks.append(
                    SweepTask(
                        suite=entry_suite,
                        workload=wname,
                        transformation=tspec,
                        match_index=index,
                        match_description=match.describe(),
                        symbols=symbols,
                        verifier_kwargs=verifier_kwargs,
                        sdfg_json=sdfg_json,
                    )
                )
    return tasks
