"""Sweep result aggregation and rendering (JSON, Markdown, plain text).

A :class:`SweepResult` collects one outcome dict per sweep task -- the
task coordinates plus the JSON-safe ``TransformationTestReport.to_dict()``
-- and derives the per-transformation verdict table the paper reports in
Table 2 (instances tested, instances failing, verdict histogram).
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.reporting import Verdict

__all__ = ["SweepResult"]

#: Version of the JSON document produced by :meth:`SweepResult.to_dict`.
#: Version 2 adds the ``backend`` field (execution backend used for the
#: sweep); version-1 documents lack it and load as ``"interpreter"``, which
#: is what every v1 sweep actually ran.
#: Version 3 fixes the ``backend`` string format: besides plain registry
#: names (now including ``"compiled"``), it may be a cross-check pair of
#: the form ``"cross:REF,CAND"`` (the bare ``"cross"`` remains shorthand
#: for ``"cross:interpreter,vectorized"``).  v2 documents load unchanged.
#: Version 4 adds two per-outcome fields for the distributed/resumable
#: sweep service (``repro.cluster``): ``task_id`` (the deterministic task
#: identity keying the result journal) and ``worker`` (shard metadata --
#: host/pid/shard/backend -- for outcomes produced by a remote worker;
#: ``None`` for local runs).  v1-v3 documents load with both defaulted to
#: ``None``; no aggregate field changed.
#: Version 5 adds the top-level ``sweep_id`` field: the submission id a
#: sweep was assigned by the always-on verification service
#: (``sweep-NNN``); ``None`` for sweeps run outside the service.  v1-v4
#: documents load with ``sweep_id=None``.  Like ``workers``, the field
#: describes *how* the sweep ran, not what it computed, so
#: :meth:`SweepResult.comparable_dict` strips it.
#: Version 6 adds the optional top-level ``telemetry`` section: the
#: aggregated metrics snapshot of the sweep (``{"metrics": {counters,
#: gauges, histograms}}``, see :mod:`repro.telemetry.metrics`), or ``None``
#: when telemetry recorded nothing.  v1-v5 documents load with
#: ``telemetry=None``.  Telemetry describes how the sweep *ran* (cache
#: luck, batching, timings), never what it computed, so
#: :meth:`SweepResult.comparable_dict` strips it.
SCHEMA_VERSION = 6

#: Per-outcome keys introduced by schema version 4, with load-time defaults
#: applied to documents written by older versions.
_V4_OUTCOME_DEFAULTS: Dict[str, Any] = {"task_id": None, "worker": None}


@dataclass
class SweepResult:
    """Aggregate outcome of one sweep run."""

    suite: str
    buggy: bool = False
    workers: int = 1
    backend: str = "interpreter"
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    duration_seconds: float = 0.0
    #: Submission id assigned by the verification service (``sweep-NNN``);
    #: ``None`` for sweeps run outside the service.
    sweep_id: Optional[str] = None
    #: Aggregated telemetry for the sweep (``{"metrics": snapshot}``), or
    #: ``None`` when nothing was recorded.  Observability data only --
    #: stripped by :meth:`comparable_dict`.
    telemetry: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    def verdict_table(self) -> Dict[str, Dict[str, Any]]:
        """Per-transformation verdict histogram (UNTESTED instances excluded)."""
        table: Dict[str, Dict[str, Any]] = {}
        for outcome in self.outcomes:
            verdict = outcome["verdict"]
            if verdict == Verdict.UNTESTED.value:
                continue
            entry = table.setdefault(
                outcome["transformation"],
                {"instances": 0, "failing": 0, "verdicts": {}},
            )
            entry["instances"] += 1
            entry["verdicts"][verdict] = entry["verdicts"].get(verdict, 0) + 1
            if Verdict(verdict).is_failure:
                entry["failing"] += 1
        return table

    def totals(self) -> Tuple[int, int]:
        """(total instances tested, total instances failing)."""
        table = self.verdict_table()
        return (
            sum(e["instances"] for e in table.values()),
            sum(e["failing"] for e in table.values()),
        )

    def errors(self) -> List[Dict[str, Any]]:
        """Outcomes that hit an infrastructure error (not a test verdict)."""
        return [o for o in self.outcomes if o.get("error")]

    # ------------------------------------------------------------------ #
    # Renderers
    # ------------------------------------------------------------------ #
    def to_dict(self, include_outcomes: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "buggy": self.buggy,
            "workers": self.workers,
            "backend": self.backend,
            "sweep_id": self.sweep_id,
            "telemetry": copy.deepcopy(self.telemetry),
            "duration_seconds": self.duration_seconds,
            "verdict_table": self.verdict_table(),
            "totals": dict(zip(("instances", "failing"), self.totals())),
        }
        if include_outcomes:
            out["outcomes"] = list(self.outcomes)
        return out

    def to_json(self, indent: Optional[int] = 2, include_outcomes: bool = True) -> str:
        return json.dumps(self.to_dict(include_outcomes=include_outcomes), indent=indent)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SweepResult":
        """Load any schema version (1-6), filling defaulted fields.

        v1 documents predate backend selection and load as ``"interpreter"``
        (what every v1 sweep ran); v1-v3 outcomes gain the v4 ``task_id`` /
        ``worker`` keys with ``None`` defaults so downstream consumers see a
        uniform shape; v1-v4 documents predate the verification service and
        load with ``sweep_id=None``; v1-v5 documents predate telemetry and
        load with ``telemetry=None``.
        """
        outcomes = []
        for o in d.get("outcomes", []):
            o = dict(o)
            for key, default in _V4_OUTCOME_DEFAULTS.items():
                o.setdefault(key, default)
            outcomes.append(o)
        return cls(
            suite=d["suite"],
            buggy=d.get("buggy", False),
            workers=d.get("workers", 1),
            backend=d.get("backend", "interpreter"),
            outcomes=outcomes,
            duration_seconds=d.get("duration_seconds", 0.0),
            sweep_id=d.get("sweep_id"),
            telemetry=d.get("telemetry"),
        )

    def comparable_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus every timing/host-dependent field.

        Two sweeps over the same tasks must agree on this document no matter
        how they were executed -- serial, multiprocess, distributed across
        heterogeneous workers, or resumed from a journal.  Stripped fields:
        wall-clock durations (sweep, per-report, per-fuzzing-campaign),
        worker counts, the service submission id, the telemetry section,
        and per-outcome ``worker`` shard metadata.
        """
        doc = copy.deepcopy(self.to_dict())
        doc.pop("duration_seconds", None)
        doc.pop("workers", None)
        doc.pop("sweep_id", None)
        doc.pop("telemetry", None)
        for outcome in doc.get("outcomes", []):
            outcome.pop("worker", None)
            report = outcome.get("report")
            if report:
                report.pop("duration_seconds", None)
                fuzzing = report.get("fuzzing")
                if fuzzing:
                    fuzzing.pop("duration_seconds", None)
        return doc

    def to_markdown(self) -> str:
        lines = [
            f"# Sweep result: suite `{self.suite}`"
            + (" (injected bugs)" if self.buggy else ""),
            "",
            f"- workers: {self.workers}",
            f"- backend: {self.backend}",
            f"- duration: {self.duration_seconds:.2f} s",
            "",
            "| Transformation | Instances | Failing | Verdicts |",
            "| --- | ---: | ---: | --- |",
        ]
        table = self.verdict_table()
        for name in sorted(table):
            entry = table[name]
            verdicts = ", ".join(
                f"{k}={v}" for k, v in sorted(entry["verdicts"].items())
            )
            lines.append(
                f"| {name} | {entry['instances']} | {entry['failing']} | {verdicts} |"
            )
        total_i, total_f = self.totals()
        lines.append(f"| **TOTAL** | **{total_i}** | **{total_f}** | |")
        reasons = self.fallback_reasons()
        if reasons:
            lines.extend(
                [
                    "",
                    "## Fallback reasons (top 5)",
                    "",
                    "| Reason | Scopes |",
                    "| --- | ---: |",
                ]
            )
            lines.extend(
                f"| {reason} | {count} |" for reason, count in reasons
            )
        return "\n".join(lines) + "\n"

    def fallback_reasons(self, top: int = 5) -> List[Tuple[str, int]]:
        """The top scope-lowering fallback reasons recorded by telemetry.

        Empty when the sweep ran without telemetry (schema <= 5 documents,
        or interpreter-only sweeps that never attempt lowering)."""
        from repro.telemetry import fallback_summary

        if not self.telemetry:
            return []
        return fallback_summary(self.telemetry.get("metrics") or {}, top=top)

    def render_text(self) -> str:
        """The aligned plain-text table the serial sweep script used to print."""
        lines = [f"{'Transformation':<28}{'instances':>12}{'failing':>10}"]
        table = self.verdict_table()
        total_i = total_f = 0
        for name in sorted(table):
            entry = table[name]
            total_i += entry["instances"]
            total_f += entry["failing"]
            lines.append(f"{name:<28}{entry['instances']:>12}{entry['failing']:>10}")
        lines.append(f"{'TOTAL':<28}{total_i:>12}{total_f:>10}")
        return "\n".join(lines)
