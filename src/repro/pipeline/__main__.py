"""Entry point for ``python -m repro.pipeline``."""

from repro.pipeline.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
