"""Parallel sweep pipeline for transformation x workload verification.

This subsystem scales the paper's headline evaluation (Sec. 6.3 / Table 2):
sweeping every built-in transformation over the NPBench-style kernel suite
and counting, per transformation, how many instances differential fuzzing
flags as semantics-changing.  Where the original experiment is a serial
loop, the pipeline

1. **enumerates** (workload x transformation x match instance) tasks as
   plain picklable descriptions (:mod:`repro.pipeline.tasks`) -- instance
   enumeration is separable from execution via
   :meth:`repro.core.verifier.FuzzyFlowVerifier.enumerate_instances`,
2. **fans them out** to a shared-nothing worker pool
   (:mod:`repro.pipeline.runner`) -- each worker rebuilds its workload from
   the suite registry (:func:`repro.workloads.get_workload`) or from JSON
   shipped via :func:`repro.sdfg.serialize.sdfg_to_json`, and
3. **aggregates** the per-task ``TransformationTestReport`` dicts into a
   :class:`repro.pipeline.result.SweepResult` with JSON and Markdown
   renderers, whose verdict table is the reproduction of Table 2.

Serial (``workers=1``) and parallel runs execute the identical task
function in the identical order, so their verdict tables match exactly.

Every task has a deterministic identity (:attr:`SweepTask.task_id`), and
any run can journal its outcomes to -- and resume from -- an append-only
result store; :mod:`repro.cluster` builds the distributed coordinator/
worker service on exactly these seams.

CLI::

    python -m repro.pipeline --suite npbench --buggy --workers 4 --trials 6
    python -m repro.pipeline --serve :8765 --journal sweep.jsonl [--resume]
    python -m repro.pipeline --connect HOST:8765 --procs 8
"""

from repro.pipeline.result import SweepResult
from repro.pipeline.runner import SweepRunner, execute_task
from repro.pipeline.tasks import (
    SweepTask,
    TransformationSpec,
    default_transformation_specs,
    enumerate_sweep_tasks,
)

__all__ = [
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "TransformationSpec",
    "default_transformation_specs",
    "enumerate_sweep_tasks",
    "execute_task",
]
