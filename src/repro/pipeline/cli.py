"""Command-line interface of the sweep pipeline.

Run with::

    python -m repro.pipeline --suite npbench [--buggy] --workers 4 --trials 6

The defaults mirror the historical serial sweep script
(``examples/npbench_sweep.py``): 6 trials per instance, at most 4 instances
per (kernel, transformation) pair, seed 0, size_max 10, no input
minimization.  ``--json`` / ``--markdown`` persist the aggregated
:class:`repro.pipeline.result.SweepResult` for downstream tooling.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.backends import get_backend, list_backends
from repro.pipeline.runner import SweepRunner
from repro.pipeline.tasks import enumerate_sweep_tasks
from repro.workloads import list_workload_suites

__all__ = ["main", "build_parser"]


def _backend_name(value: str) -> str:
    """Validate a backend name (including ``cross:REF,CAND`` pairs) without
    giving up argparse's error reporting."""
    try:
        get_backend(value)
    except KeyError as exc:
        raise argparse.ArgumentTypeError(str(exc.args[0]))
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Parallel transformation x workload verification sweep (Sec. 6.3 / Table 2).",
    )
    parser.add_argument(
        "--suite", default="npbench", choices=list_workload_suites(),
        help="workload suite to sweep (default: npbench)",
    )
    parser.add_argument(
        "--buggy", action="store_true",
        help="sweep the injected-bug transformation variants (Table 2 reproduction)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, default)",
    )
    parser.add_argument("--trials", type=int, default=6, help="fuzzing trials per instance")
    parser.add_argument(
        "--max-instances", type=int, default=4,
        help="maximum instances per (kernel, transformation) pair",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated subset of suite kernels to sweep (default: all)",
    )
    parser.add_argument(
        "--backend", default="interpreter", type=_backend_name,
        metavar="BACKEND",
        help="execution backend: one of "
        f"{', '.join(list_backends())}, or 'cross:REF,CAND' to cross-check "
        "any backend pair (e.g. 'cross:compiled,interpreter'); any "
        "divergence fails the sweep as an infrastructure error",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print each task's verdict as it completes",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzzing seed")
    parser.add_argument("--size-max", type=int, default=10, help="maximum sampled size-symbol value")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the JSON report here")
    parser.add_argument(
        "--markdown", default=None, metavar="PATH", help="write the Markdown report here"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the stdout table")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    workloads = None
    if args.kernels:
        workloads = [k.strip() for k in args.kernels.split(",") if k.strip()]

    try:
        tasks = enumerate_sweep_tasks(
            suite=args.suite,
            workloads=workloads,
            buggy=args.buggy,
            max_instances=args.max_instances,
            verifier_kwargs=dict(
                num_trials=args.trials,
                seed=args.seed,
                size_max=args.size_max,
                minimize_inputs=False,
                backend=args.backend,
            ),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    workers = max(1, args.workers)
    if not args.quiet:
        print(
            f"[pipeline] {len(tasks)} task(s) over suite '{args.suite}' "
            f"({'buggy' if args.buggy else 'faithful'}), {workers} worker(s), "
            f"backend '{args.backend}'"
        )

    progress = None
    if args.progress:  # independent of --quiet, which only hides the table
        def progress(index, outcome, completed, total):
            print(
                f"[{completed}/{total}] {outcome['workload']} / "
                f"{outcome['transformation']} #{outcome['match_index']}: "
                f"{outcome['verdict']}"
                + (f" (error: {outcome['error']})" if outcome.get("error") else ""),
                flush=True,
            )

    runner = SweepRunner(workers=workers)
    result = runner.run(
        tasks,
        suite=args.suite,
        buggy=args.buggy,
        backend=args.backend,
        progress_callback=progress,
    )

    if not args.quiet:
        print(result.render_text())
        print(f"\nduration: {result.duration_seconds:.2f} s")
        for err in result.errors():
            print(
                f"error: {err['workload']} / {err['transformation']} "
                f"#{err['match_index']}: {err['error']}",
                file=sys.stderr,
            )
        if args.buggy:
            print("(buggy sweep: every failing row corresponds to a Table 2 entry)")
        else:
            print("(faithful sweep: all instances are expected to pass)")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(result.to_json())
        if not args.quiet:
            print(f"JSON report written to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as f:
            f.write(result.to_markdown())
        if not args.quiet:
            print(f"Markdown report written to {args.markdown}")
    return 1 if result.errors() else 0


if __name__ == "__main__":
    raise SystemExit(main())
