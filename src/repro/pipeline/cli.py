"""Command-line interface of the sweep pipeline.

Run with::

    python -m repro.pipeline --suite npbench [--buggy] --workers 4 --trials 6

The defaults mirror the historical serial sweep script
(``examples/npbench_sweep.py``): 6 trials per instance, at most 4 instances
per (kernel, transformation) pair, seed 0, size_max 10, no input
minimization.  ``--json`` / ``--markdown`` persist the aggregated
:class:`repro.pipeline.result.SweepResult` for downstream tooling.

Distributed / resumable operation (see :mod:`repro.cluster`):

* ``--serve HOST:PORT`` serves the enumerated tasks to remote workers
  (``python -m repro.cluster.worker --connect HOST:PORT``) instead of
  running them locally, requeueing the in-flight shard of any worker that
  disconnects; ``--local-procs N`` additionally executes tasks in-process
  so the serve invocation makes progress with no external workers, and
  ``--http HOST:PORT`` exposes a live status endpoint;
* ``--submit HOST:PORT`` is the *thin client* of an always-on verification
  service (``python -m repro.cluster.service``): the enumerated tasks are
  POSTed to the service's HTTP endpoint, progress is polled, and the
  completed result is fetched and rendered exactly like a local run
  (``--detach`` returns immediately after printing the sweep id);
* ``--connect HOST:PORT`` turns this invocation *into* a worker
  (``--procs`` drives a local pool; ``--backend`` overrides the sweep's
  backend for this worker only);
* ``--journal PATH`` appends every completed outcome to a crash-safe JSONL
  journal, and ``--resume`` reloads it so a killed sweep (local or served)
  re-runs only its incomplete tasks.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, TextIO

from repro import faultinject
from repro.backends import get_backend, list_backends
from repro.backends.vectorized import CACHE_DIR_ENV
from repro.faultinject import FAULTS_ENV as _FAULTS_ENV
from repro.faultinject import SEED_ENV as _FAULT_SEED_ENV
from repro.cluster.protocol import TOKEN_ENV as _TOKEN_ENV
from repro.pipeline.runner import SweepRunner
from repro.pipeline.tasks import enumerate_sweep_tasks
from repro.telemetry import TRACE_ENV, configure_tracing
from repro.telemetry import perf_counter as _perf_counter
from repro.workloads import list_workload_suites

__all__ = ["main", "build_parser", "ProgressPrinter", "format_eta"]


def _backend_name(value: str) -> str:
    """Validate a backend name (including ``cross:REF,CAND`` pairs) without
    giving up argparse's error reporting."""
    try:
        get_backend(value)
    except KeyError as exc:
        raise argparse.ArgumentTypeError(str(exc.args[0]))
    return value


def format_eta(seconds: float) -> str:
    """Render a remaining-time estimate compactly (``42s``, ``3m07s``,
    ``2h05m``); unknown/unbounded estimates render as ``--``."""
    if seconds != seconds or seconds == float("inf"):
        return "--"
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


class ProgressPrinter:
    """``--progress`` callback: per-verdict lines with throughput and ETA.

    The rate comes from the *streaming reassembly clock*: tasks this
    process actually saw land, divided by the time since the printer was
    armed.  Two properties keep the line truthful under failure:

    * the displayed ``completed`` / ``total`` counts come from the runner
      or coordinator, which count each task exactly once -- a requeued task
      (worker died mid-sweep) neither inflates the denominator nor double-
      counts on redelivery, so ``[k/total]`` never drifts;
    * restored (journal-resumed) outcomes are excluded from the rate, so a
      resume's ETA reflects the speed of the tasks actually being re-run,
      not the instantly-restored prefix.

    With ``arm_on_first_outcome=True`` the clock starts at the first landed
    task instead of at construction: a served sweep may wait arbitrarily
    long for its first worker to connect, and that idle prelude must not
    dilute the rate for the rest of the sweep.  (The anchoring outcome is
    then excluded from the rate -- its latency was not observed.)
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        clock=_perf_counter,
        arm_on_first_outcome: bool = False,
    ) -> None:
        self._stream = stream if stream is not None else sys.stdout
        self._clock = clock
        self._start: Optional[float] = None if arm_on_first_outcome else clock()
        self._anchored = 0
        self._fresh = 0

    def __call__(
        self, index: int, outcome: Dict[str, Any], completed: int, total: int
    ) -> None:
        now = self._clock()
        if self._start is None:
            self._start = now
            self._anchored = 1
        self._fresh += 1
        elapsed = now - self._start
        observed = self._fresh - self._anchored
        rate = observed / elapsed if elapsed > 0 and observed > 0 else float("inf")
        remaining = max(total - completed, 0)
        eta = remaining / rate if rate > 0 else float("inf")
        line = (
            f"[{completed}/{total}] {outcome['workload']} / "
            f"{outcome['transformation']} #{outcome['match_index']}: "
            f"{outcome['verdict']}"
            + (f" (error: {outcome['error']})" if outcome.get("error") else "")
            + (
                f" | {rate:.2f} task/s, ETA {format_eta(eta)}"
                if rate != float("inf")
                else ""
            )
        )
        print(line, file=self._stream, flush=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Parallel transformation x workload verification sweep (Sec. 6.3 / Table 2).",
    )
    parser.add_argument(
        "--suite", default="npbench", choices=list_workload_suites(),
        help="workload suite to sweep (default: npbench)",
    )
    parser.add_argument(
        "--buggy", action="store_true",
        help="sweep the injected-bug transformation variants (Table 2 reproduction)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, default)",
    )
    parser.add_argument("--trials", type=int, default=6, help="fuzzing trials per instance")
    parser.add_argument(
        "--max-instances", type=int, default=4,
        help="maximum instances per (kernel, transformation) pair",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated subset of suite kernels to sweep (default: all)",
    )
    parser.add_argument(
        "--backend", default=None, type=_backend_name,
        metavar="BACKEND",
        help="execution backend: one of "
        f"{', '.join(list_backends())}, or 'cross:REF,CAND' to cross-check "
        "any backend pair (e.g. 'cross:compiled,interpreter'); any "
        "divergence fails the sweep as an infrastructure error "
        "(default: interpreter; with --connect: the worker-side override)",
    )
    parser.add_argument(
        "--trial-batch", default=1, type=int, metavar="K",
        help="trials per run_batch call (default: 1): batch-capable "
        "backends (batched, or cross pairs wrapping it) stack K trial "
        "inputs along a leading batch axis and execute each scope once "
        "per batch; verdicts are bitwise identical to serial trials",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent compiled-program cache directory (sets "
        f"{CACHE_DIR_ENV}): pool workers and cluster workers share compile "
        "artifacts across processes and sweep invocations instead of "
        "recompiling the same programs per process",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print each task's verdict as it completes, with tasks/s and ETA",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="arm deterministic fault injection, e.g. "
        "'task.execute=crash:0.1;journal.record=garble:0.2@3+' (sets "
        f"{_FAULTS_ENV} so pool and cluster worker processes inherit the "
        "plan); chaos testing only -- leave unset for real sweeps",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed for fault-injection decisions (default: "
        f"${_FAULT_SEED_ENV} or 0); same seed + spec => same faults",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append Chrome-compatible trace events (JSONL, one complete "
        f"event per line) to PATH; sets {TRACE_ENV} so pool and cluster "
        "worker processes trace into the same file (inspect with "
        "python -m repro.telemetry --summary PATH)",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzzing seed")
    parser.add_argument("--size-max", type=int, default=10, help="maximum sampled size-symbol value")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the JSON report here")
    parser.add_argument(
        "--markdown", default=None, metavar="PATH", help="write the Markdown report here"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the stdout table")
    cluster = parser.add_argument_group("distributed / resumable operation")
    cluster.add_argument(
        "--serve", default=None, metavar="HOST:PORT",
        help="serve tasks to remote workers (repro.cluster.worker --connect) "
        "instead of executing locally; PORT 0 picks a free port",
    )
    cluster.add_argument(
        "--submit", default=None, metavar="HOST:PORT",
        help="submit the enumerated tasks to an always-on verification "
        "service's HTTP endpoint (python -m repro.cluster.service --http), "
        "poll progress, and fetch the completed result",
    )
    cluster.add_argument(
        "--detach", action="store_true",
        help="with --submit: return immediately after printing the sweep "
        "id instead of waiting for completion",
    )
    cluster.add_argument(
        "--priority", type=float, default=1.0,
        help="with --submit: fair-share weight of this sweep relative to "
        "others active on the service (default 1.0; a priority-3 sweep "
        "receives ~3x the worker time of a priority-1 sweep)",
    )
    cluster.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="act as a worker for a coordinator at HOST:PORT (no local "
        "task enumeration; --procs sizes the local pool)",
    )
    cluster.add_argument(
        "--local-procs", type=int, default=0, metavar="N",
        help="with --serve: also execute tasks with N in-process executor "
        "threads, so the serving invocation progresses with zero external "
        "workers (default 0)",
    )
    cluster.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="with --serve: expose the service's HTTP status endpoint "
        "(GET /status, GET /sweeps/<id>) on this address",
    )
    cluster.add_argument(
        "--auth-token", default=os.environ.get(_TOKEN_ENV),
        help="shared cluster secret: with --serve, require it from "
        "non-loopback workers/clients; with --submit or --connect, present "
        f"it to the service (default: ${_TOKEN_ENV})",
    )
    cluster.add_argument(
        "--procs", type=int, default=1,
        help="worker-mode process count (with --connect; default 1)",
    )
    cluster.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append every completed outcome to this crash-safe JSONL journal",
    )
    cluster.add_argument(
        "--resume", action="store_true",
        help="reload --journal and re-run only tasks without a journaled "
        "outcome (safe to pass unconditionally: a missing journal starts fresh)",
    )
    cluster.add_argument(
        "--max-task-retries", type=int, default=2,
        help="re-leases allowed per task after a lost worker before the "
        "task is recorded as an infrastructure error (with --serve; default 2)",
    )
    cluster.add_argument(
        "--worker-timeout", type=float, default=0.0,
        help="with --serve: seconds of worker silence (no request, result "
        "or heartbeat ping) before the worker is declared hung and its "
        "in-flight tasks are requeued; 0 disables (default; only enable "
        "when every worker sends heartbeats)",
    )
    return parser


def _render_result(result: Any, args: argparse.Namespace) -> int:
    """Print/persist a completed sweep's report; returns the exit code.

    Shared by every mode that ends up owning a full result -- local run,
    ``--serve``, and a non-detached ``--submit``.
    """
    if args.progress:
        # The final --progress line: where lowering gave up, fleet-wide,
        # sourced from the sweep's aggregated telemetry section.
        reasons = getattr(result, "fallback_reasons", lambda: [])()
        if reasons:
            summary = ", ".join(f"{reason}={count}" for reason, count in reasons)
            print(f"[pipeline] top fallback reasons: {summary}", flush=True)
    if not args.quiet:
        print(result.render_text())
        print(f"\nduration: {result.duration_seconds:.2f} s")
        for err in result.errors():
            print(
                f"error: {err['workload']} / {err['transformation']} "
                f"#{err['match_index']}: {err['error']}",
                file=sys.stderr,
            )
        if args.buggy:
            print("(buggy sweep: every failing row corresponds to a Table 2 entry)")
        else:
            print("(faithful sweep: all instances are expected to pass)")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(result.to_json())
        if not args.quiet:
            print(f"JSON report written to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as f:
            f.write(result.to_markdown())
        if not args.quiet:
            print(f"Markdown report written to {args.markdown}")
    return 1 if result.errors() else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    modes = [flag for flag, v in (
        ("--serve", args.serve), ("--connect", args.connect),
        ("--submit", args.submit),
    ) if v]
    if len(modes) > 1:
        parser.error(f"{' and '.join(modes)} are mutually exclusive")
    if args.resume and not args.journal:
        parser.error("--resume requires --journal PATH")
    if args.submit and args.journal:
        parser.error(
            "--journal applies to the invocation executing the sweep; a "
            "--submit client delegates execution (and journaling, via its "
            "state directory) to the service"
        )

    if args.cache_dir:
        # Through the environment so forked/spawned pool workers (and any
        # backend instance, whenever constructed) pick it up.
        os.environ[CACHE_DIR_ENV] = os.path.abspath(args.cache_dir)
    if args.trace:
        # Likewise environment-propagated: every process in the sweep
        # (pool workers, cluster workers spawned from here) appends to the
        # same JSONL file under an exclusive lock.
        configure_tracing(args.trace)
    if args.faults or args.fault_seed is not None:
        # Exported to the environment so pool members replay the same
        # seeded plan (per-process hit counters reset at fork).
        try:
            faultinject.configure(args.faults, seed=args.fault_seed)
        except faultinject.FaultSpecError as exc:
            parser.error(str(exc))

    # ------------------------------------------------------------------ #
    # Worker mode: no enumeration, no report -- serve one coordinator.
    # ------------------------------------------------------------------ #
    if args.connect:
        from repro.cluster.protocol import ProtocolError
        from repro.cluster.worker import parse_endpoint, run_worker

        # A worker enumerates nothing and writes no report: flags that shape
        # or persist the sweep belong on the coordinator invocation, and
        # ignoring them silently would be worse than refusing.
        for flag, value in (
            ("--journal", args.journal), ("--resume", args.resume),
            ("--json", args.json), ("--markdown", args.markdown),
        ):
            if value:
                parser.error(
                    f"{flag} applies to the sweep owner, not a worker; "
                    f"pass it to the --serve (or local) invocation instead"
                )
        try:
            host, port = parse_endpoint(args.connect)
            run_worker(
                host,
                port,
                backend=args.backend,
                procs=max(args.procs, args.workers),
                auth_token=args.auth_token,
                quiet=args.quiet,
            )
        except (OSError, ProtocolError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    backend = args.backend or "interpreter"
    workloads = None
    if args.kernels:
        workloads = [k.strip() for k in args.kernels.split(",") if k.strip()]

    try:
        tasks = enumerate_sweep_tasks(
            suite=args.suite,
            workloads=workloads,
            buggy=args.buggy,
            max_instances=args.max_instances,
            verifier_kwargs=dict(
                num_trials=args.trials,
                seed=args.seed,
                size_max=args.size_max,
                minimize_inputs=False,
                backend=backend,
                trial_batch=args.trial_batch,
            ),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    # ------------------------------------------------------------------ #
    # Thin-client mode: hand the tasks to an always-on service over HTTP.
    # ------------------------------------------------------------------ #
    if args.submit:
        from repro.cluster.client import (
            ServiceClientError,
            submit_sweep,
            wait_sweep,
        )
        from repro.cluster.worker import parse_endpoint

        try:
            host, port = parse_endpoint(args.submit)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            status = submit_sweep(
                host, port, tasks,
                suite=args.suite,
                buggy=args.buggy,
                backend=backend,
                priority=args.priority,
                max_task_retries=args.max_task_retries,
                token=args.auth_token,
            )
            sweep_id = status["sweep_id"]
            if not args.quiet:
                print(
                    f"[pipeline] submitted {status['total']} task(s) as "
                    f"sweep {sweep_id} to {host}:{port} "
                    f"(priority {args.priority:g}); "
                    f"status: curl http://{host}:{port}/sweeps/{sweep_id}",
                    flush=True,
                )
            if args.detach:
                return 0

            def on_progress(doc: Dict[str, Any]) -> None:
                if args.progress:
                    eta = doc.get("eta_seconds")
                    print(
                        f"[{doc['done']}/{doc['total']}] sweep {sweep_id} "
                        f"{doc['state']}"
                        + (f", ETA {format_eta(eta)}" if eta else ""),
                        flush=True,
                    )

            result = wait_sweep(
                host, port, sweep_id,
                token=args.auth_token,
                poll_seconds=0.25,
                on_progress=on_progress,
            )
        except (ServiceClientError, TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return _render_result(result, args)

    store = None
    if args.journal:
        from repro.cluster.journal import JournalError, ResultStore

        try:
            store = ResultStore.open(
                args.journal, tasks, args.suite, args.buggy, backend,
                resume=args.resume,
            )
        except JournalError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.quiet and store.completed:
            print(
                f"[pipeline] resuming from {args.journal}: "
                f"{len(store.completed)}/{len(tasks)} task(s) journaled, "
                f"{len(tasks) - len(store.completed)} to run"
            )

    progress = None
    if args.progress:
        # A served sweep idles until its first worker connects; arm the
        # rate clock at the first landed outcome so that wait does not
        # dilute tasks/s and ETA for the whole run.
        progress = ProgressPrinter(arm_on_first_outcome=bool(args.serve))

    try:
        if args.serve:
            from repro.cluster.coordinator import SweepCoordinator
            from repro.cluster.worker import parse_endpoint

            try:
                host, port = parse_endpoint(args.serve)
                http_endpoint = parse_endpoint(args.http) if args.http else None
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            coordinator = SweepCoordinator(
                tasks,
                host,
                port,
                store=store,
                max_task_retries=args.max_task_retries,
                worker_timeout=args.worker_timeout,
                progress_callback=progress,
                suite=args.suite,
                buggy=args.buggy,
                backend=backend,
                auth_token=args.auth_token,
                local_procs=args.local_procs,
                http_host=http_endpoint[0] if http_endpoint else None,
                http_port=http_endpoint[1] if http_endpoint else None,
            )
            bound_host, bound_port = coordinator.start()
            if not args.quiet:
                extras = []
                if args.local_procs:
                    extras.append(f"{args.local_procs} local executor(s)")
                if coordinator.http_address:
                    hh, hp = coordinator.http_address
                    extras.append(f"status on http://{hh}:{hp}/status")
                print(
                    f"[pipeline] serving {coordinator.remaining}/{len(tasks)} "
                    f"task(s) on {bound_host}:{bound_port} "
                    f"(suite '{args.suite}', "
                    f"{'buggy' if args.buggy else 'faithful'}, "
                    f"backend '{backend}'"
                    + (", " + ", ".join(extras) if extras else "")
                    + f"); waiting for workers: "
                    f"python -m repro.cluster.worker "
                    f"--connect {bound_host}:{bound_port}",
                    flush=True,
                )
            result = coordinator.wait()
        else:
            workers = max(1, args.workers)
            if not args.quiet:
                print(
                    f"[pipeline] {len(tasks)} task(s) over suite '{args.suite}' "
                    f"({'buggy' if args.buggy else 'faithful'}), {workers} worker(s), "
                    f"backend '{backend}'"
                )
            runner = SweepRunner(workers=workers)
            result = runner.run(
                tasks,
                suite=args.suite,
                buggy=args.buggy,
                backend=backend,
                progress_callback=progress,
                store=store,
                completed=store.completed if store is not None else None,
            )
    finally:
        if store is not None:
            store.close()

    return _render_result(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
