"""Change isolation (Sec. 3, step 2): determining the change set ΔT.

Two modes are provided, mirroring the paper:

* **white box** -- the transformation self-reports the nodes/states it will
  modify (:meth:`PatternTransformation.modified_nodes` /
  :meth:`~PatternTransformation.modified_states`).  This is how DaCe
  transformations expose their pattern, and it is the default.
* **black box** -- the change set is recovered by diffing the program graph
  before and after applying the transformation to a throw-away copy.  Nodes
  are matched by their guid (which survives copies); nodes whose fingerprint
  changed, nodes that only exist on one side, and the endpoints of
  added/removed/modified edges are all part of ΔT.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sdfg.nodes import Node
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.transforms.base import Match, PatternTransformation

__all__ = ["white_box_change_set", "black_box_change_set", "graph_diff_nodes"]


def white_box_change_set(
    sdfg: SDFG, transformation: PatternTransformation, match: Match
) -> Tuple[List[Tuple[SDFGState, Node]], List[SDFGState]]:
    """ΔT as self-reported by the transformation."""
    return (
        transformation.modified_nodes(sdfg, match),
        transformation.modified_states(sdfg, match),
    )


def _edge_key(state_nodes: Dict[int, int], edge) -> Tuple:
    """A comparable identity for an edge based on endpoint guids."""
    memlet = edge.data
    return (
        edge.src.guid,
        edge.dst.guid,
        edge.src_conn,
        edge.dst_conn,
        None if memlet is None else str(memlet),
    )


def graph_diff_nodes(original: SDFG, transformed: SDFG) -> Dict[str, Set[int]]:
    """Diff two program graphs node-by-node (matched by guid).

    Returns guid sets: ``modified`` (fingerprint changed), ``removed`` (only
    in the original), ``added`` (only in the transformed), and
    ``edge_endpoints`` (guids of original nodes adjacent to changed edges).
    """
    orig_nodes: Dict[int, Tuple[SDFGState, Node]] = {
        n.guid: (s, n) for s, n in original.all_nodes()
    }
    new_nodes: Dict[int, Tuple[SDFGState, Node]] = {
        n.guid: (s, n) for s, n in transformed.all_nodes()
    }

    modified: Set[int] = set()
    for guid, (_, node) in orig_nodes.items():
        if guid in new_nodes and new_nodes[guid][1].fingerprint() != node.fingerprint():
            modified.add(guid)
    removed = set(orig_nodes) - set(new_nodes)
    added = set(new_nodes) - set(orig_nodes)

    # Edge-level diff per matching state (by label).
    edge_endpoints: Set[int] = set()
    new_states = {s.label: s for s in transformed.states()}
    for state in original.states():
        other = new_states.get(state.label)
        if other is None:
            # Whole state removed: every node in it is affected.
            edge_endpoints |= {n.guid for n in state.nodes()}
            continue
        orig_edges = {(_edge_key({}, e)) for e in state.edges()}
        new_edges = {(_edge_key({}, e)) for e in other.edges()}
        for key in orig_edges ^ new_edges:
            src_guid, dst_guid = key[0], key[1]
            edge_endpoints.add(src_guid)
            edge_endpoints.add(dst_guid)

    return {
        "modified": modified,
        "removed": removed,
        "added": added,
        "edge_endpoints": edge_endpoints,
    }


def black_box_change_set(
    sdfg: SDFG, transformation: PatternTransformation, match: Match
) -> Tuple[List[Tuple[SDFGState, Node]], List[SDFGState]]:
    """ΔT recovered by applying the transformation to a copy and diffing.

    The returned nodes/states refer to the *original* program, so the result
    is directly comparable to (and interchangeable with) the white-box change
    set.
    """
    from repro.core.cutout import transfer_match  # late import, avoids cycle

    probe = sdfg.clone()
    probe_match = transfer_match(transformation, match, probe)
    transformation.apply(probe, probe_match)

    diff = graph_diff_nodes(sdfg, probe)
    affected_guids = (
        diff["modified"] | diff["removed"] | (diff["edge_endpoints"] - diff["added"])
    )

    nodes: List[Tuple[SDFGState, Node]] = []
    states: List[SDFGState] = []
    for state, node in sdfg.all_nodes():
        if node.guid in affected_guids:
            nodes.append((state, node))
            if state not in states:
                states.append(state)

    # States whose interstate edges changed are also affected.
    orig_edge_sigs = {
        (e.src.label, e.dst.label, e.data.condition, tuple(sorted(e.data.assignments.items())))
        for e in sdfg.edges()
    }
    probe_edge_sigs = {
        (e.src.label, e.dst.label, e.data.condition, tuple(sorted(e.data.assignments.items())))
        for e in probe.edges()
    }
    changed_labels: Set[str] = set()
    for sig in orig_edge_sigs ^ probe_edge_sigs:
        changed_labels.add(sig[0])
        changed_labels.add(sig[1])
    probe_labels = {s.label for s in probe.states()}
    for state in sdfg.states():
        if state.label in changed_labels or state.label not in probe_labels:
            if state not in states:
                states.append(state)

    return nodes, states
