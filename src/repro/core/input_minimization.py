"""Input-configuration minimization via the minimum input-flow cut (Sec. 4).

Given an extracted dataflow cutout, this module decides whether growing the
cutout with surrounding dataflow (trading recomputation for input size)
shrinks the input configuration, using the max-flow/min-cut formulation of
Sec. 4.2.  If no strictly smaller input configuration exists, the original
cutout is returned unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.cutout import Cutout, extract_cutout
from repro.core.mincut import SINK, SOURCE, prepare_input_flow_network
from repro.sdfg.nodes import AccessNode, Node
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState

__all__ = ["MinimizationResult", "minimize_input_configuration"]


@dataclass
class MinimizationResult:
    """Outcome of the input-minimization step."""

    cutout: Cutout
    minimized: bool
    original_input_volume: int
    minimized_input_volume: int
    added_nodes: int = 0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the input volume removed (0 if not minimized)."""
        if self.original_input_volume == 0:
            return 0.0
        return 1.0 - (self.minimized_input_volume / self.original_input_volume)


def _sink_side_reaching_sink(
    network, source_side: Set, cutout_reps: Set[int]
) -> Set[int]:
    """Representatives on the sink side of the cut that can reach the sink."""
    sink_side = set(network.nodes()) - set(source_side)
    # Reachability towards SINK over the network edges restricted to sink-side
    # nodes (direction preserved).
    adjacency: Dict = {}
    for u, v, _ in network.edges():
        adjacency.setdefault(u, []).append(v)
    reaches: Set = set()
    # Reverse BFS from SINK within the sink side.
    reverse: Dict = {}
    for u, v, _ in network.edges():
        reverse.setdefault(v, []).append(u)
    queue = deque([SINK])
    seen = {SINK}
    while queue:
        node = queue.popleft()
        for prev in reverse.get(node, []):
            if prev in seen or prev not in sink_side:
                continue
            seen.add(prev)
            reaches.add(prev)
            queue.append(prev)
    return {n for n in reaches if isinstance(n, int) and n not in cutout_reps}


def minimize_input_configuration(
    sdfg: SDFG,
    state: SDFGState,
    cutout: Cutout,
    symbol_values: Optional[Dict[str, int]] = None,
) -> MinimizationResult:
    """Attempt to shrink a dataflow cutout's input configuration.

    Returns the original cutout unchanged when the minimum input-flow cut
    does not yield a strictly smaller input configuration.
    """
    if cutout.kind != "dataflow":
        return MinimizationResult(
            cutout=cutout,
            minimized=False,
            original_input_volume=cutout.input_volume(symbol_values),
            minimized_input_volume=cutout.input_volume(symbol_values),
        )

    original_nodes = [
        n for n in state.nodes() if n.guid in cutout.node_guids
    ]
    original_volume = cutout.input_volume(symbol_values)

    prepared = prepare_input_flow_network(
        sdfg, state, original_nodes, cutout.input_configuration, symbol_values
    )
    flow, source_side = prepared.network.max_flow_min_cut(SOURCE, SINK)

    additions_ids = _sink_side_reaching_sink(
        prepared.network, source_side, prepared.cutout_reps
    )
    if not additions_ids:
        return MinimizationResult(
            cutout=cutout,
            minimized=False,
            original_input_volume=original_volume,
            minimized_input_volume=original_volume,
        )

    # Map representative ids back to actual nodes and re-extract.
    id_to_node = {id(n): n for n in state.nodes()}
    added_nodes: List[Node] = [id_to_node[i] for i in additions_ids if i in id_to_node]
    expanded_nodes = original_nodes + added_nodes
    new_cutout = extract_cutout(
        sdfg,
        nodes=[(state, n) for n in expanded_nodes],
        symbol_values=symbol_values,
    )
    new_volume = new_cutout.input_volume(symbol_values)

    if new_volume < original_volume:
        return MinimizationResult(
            cutout=new_cutout,
            minimized=True,
            original_input_volume=original_volume,
            minimized_input_volume=new_volume,
            added_nodes=len(added_nodes),
        )
    return MinimizationResult(
        cutout=cutout,
        minimized=False,
        original_input_volume=original_volume,
        minimized_input_volume=original_volume,
    )
