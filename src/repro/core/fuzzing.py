"""Differential (gray-box) fuzzing of cutouts (Sec. 5).

Each trial samples an input configuration, runs it through the original
cutout ``c`` and the transformed cutout ``T(c)``, and compares their system
states.  A trial fails -- labelling the transformation as semantics-changing
-- if the transformed program crashes or hangs while the original does not,
or if any system-state container differs by more than the configured
threshold (``1e-5`` by default, bit-wise equality when the threshold is 0,
matching the paper's footnote 1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import DEFAULT_BACKEND, ExecutionBackend, get_backend
from repro.core.reporting import FuzzingReport, TrialResult, TrialStatus
from repro.core.sampling import InputSample, InputSampler
from repro.interpreter import HangError
from repro.interpreter.errors import ExecutionError
from repro.sdfg.sdfg import SDFG
from repro.telemetry import TRACER as _TRACER
from repro.telemetry import inc as _metric_inc
from repro.telemetry import observe as _metric_observe
from repro.telemetry import perf_counter as _perf_counter

__all__ = ["DifferentialFuzzer", "compare_system_states"]


def _max_abs_diff(ref: np.ndarray, cand: np.ndarray) -> float:
    """Maximum absolute element-wise difference between two same-shape arrays.

    Works for any numeric dtype: integers use exact arithmetic (a float64
    cast would round away differences above 2**53), floats treat one-sided
    NaNs as ``inf`` (pattern divergence is structural), and non-numeric
    dtypes fall back to ``inf`` since no meaningful distance exists.
    """
    if ref.size == 0:
        return 0.0
    if np.issubdtype(ref.dtype, np.integer) and np.issubdtype(cand.dtype, np.integer):
        unequal = ref != cand
        if not np.any(unequal):
            return 0.0
        return float(
            max(abs(int(a) - int(b)) for a, b in zip(ref[unequal].ravel(), cand[unequal].ravel()))
        )
    try:
        a = np.asarray(ref, dtype=np.float64)
        b = np.asarray(cand, dtype=np.float64)
    except (TypeError, ValueError):
        return float("inf")
    diff = np.abs(a - b)
    equal = (a == b) | (np.isnan(a) & np.isnan(b))
    diff = np.where(equal, 0.0, diff)
    diff = np.where(np.isnan(diff), np.inf, diff)
    return float(diff.max())


def compare_system_states(
    reference: Mapping[str, np.ndarray],
    candidate: Mapping[str, np.ndarray],
    system_state: Sequence[str],
    tolerance: float = 1e-5,
) -> Tuple[List[str], float]:
    """Compare two sets of program outputs on the system-state containers.

    Returns the list of mismatching container names and the maximum absolute
    error observed.  With ``tolerance == 0`` the comparison is bit-wise.
    ``inf`` is reported only for structural mismatches (a missing container,
    a shape mismatch, or a NaN/inf pattern divergence); value mismatches --
    including integer and boolean containers -- report the true maximum
    absolute difference so failures can be ranked and thresholded.
    """
    mismatched: List[str] = []
    max_err = 0.0
    for name in system_state:
        ref = reference.get(name)
        cand = candidate.get(name)
        if ref is None and cand is None:
            continue
        if ref is None or cand is None:
            mismatched.append(name)
            max_err = float("inf")
            continue
        ref = np.asarray(ref)
        cand = np.asarray(cand)
        if ref.shape != cand.shape:
            mismatched.append(name)
            max_err = float("inf")
            continue
        if tolerance == 0:
            if not np.array_equal(ref, cand):
                mismatched.append(name)
                max_err = max(max_err, _max_abs_diff(ref, cand))
            continue
        if np.issubdtype(ref.dtype, np.floating):
            finite_mismatch = not np.array_equal(np.isnan(ref), np.isnan(cand)) or not np.array_equal(
                np.isinf(ref), np.isinf(cand)
            )
            diff = np.abs(np.nan_to_num(ref) - np.nan_to_num(cand))
            err = float(diff.max()) if diff.size else 0.0
            if finite_mismatch or err > tolerance:
                mismatched.append(name)
                max_err = max(max_err, err if not finite_mismatch else float("inf"))
            else:
                max_err = max(max_err, err)
        else:
            if not np.array_equal(ref, cand):
                mismatched.append(name)
                max_err = max(max_err, _max_abs_diff(ref, cand))
    return mismatched, max_err


class DifferentialFuzzer:
    """Runs differential trials of an original vs. a transformed program."""

    def __init__(
        self,
        original: SDFG,
        transformed: SDFG,
        system_state: Sequence[str],
        sampler: InputSampler,
        tolerance: float = 1e-5,
        max_transitions: int = 100_000,
        collect_coverage: bool = False,
        backend: Union[str, ExecutionBackend] = DEFAULT_BACKEND,
        trial_batch: int = 1,
    ) -> None:
        self.original = original
        self.transformed = transformed
        self.system_state = list(system_state)
        self.sampler = sampler
        self.tolerance = tolerance
        self.collect_coverage = collect_coverage
        #: Trials per ``run_batch`` call during a campaign (1 = serial).
        #: Batch-capable backends (``batched``, or ``cross`` pairs wrapping
        #: it) execute the whole batch along a leading batch axis; all
        #: others run the batch serially with identical verdicts.
        self.trial_batch = max(1, int(trial_batch))
        # Per-trial setup (argument coercion plans, symbol binding, compiled
        # subsets, vectorization plans) lives in prepare(), outside the
        # trial loop.  Backend errors other than ExecutionError -- notably a
        # cross-backend divergence -- propagate out of run_trial: they are
        # backend bugs, not properties of the program under test.
        self.backend = get_backend(backend)
        self._orig_exec = self.backend.prepare(original, max_transitions=max_transitions)
        self._trans_exec = self.backend.prepare(transformed, max_transitions=max_transitions)

    # ------------------------------------------------------------------ #
    def run_trial(self, sample: InputSample, index: int = 0) -> TrialResult:
        """Run one differential trial on the given input sample."""
        orig_error: Optional[Exception] = None
        trans_error: Optional[Exception] = None
        orig_result = None
        trans_result = None
        with _TRACER.span("trial", "fuzz") as span:
            span.set("index", index)
            t0 = _perf_counter()
            try:
                orig_result = self._orig_exec.run(
                    sample.copy_arguments(), sample.symbols,
                    collect_coverage=self.collect_coverage,
                )
            except ExecutionError as exc:
                orig_error = exc
            try:
                trans_result = self._trans_exec.run(
                    sample.copy_arguments(), sample.symbols,
                    collect_coverage=False,
                )
            except ExecutionError as exc:
                trans_error = exc
            trial = self._classify(
                sample, index, orig_result, orig_error, trans_result, trans_error
            )
            span.set("status", trial.status.name)
            _metric_observe("repro_trial_seconds", _perf_counter() - t0)
        return trial

    def _classify(
        self,
        sample: InputSample,
        index: int,
        orig_result,
        orig_error: Optional[Exception],
        trans_result,
        trans_error: Optional[Exception],
    ) -> TrialResult:
        """Turn one trial's (original, transformed) outcome pair into a
        verdict -- shared by the serial and batched campaign loops."""
        if orig_error is not None and trans_error is not None:
            return TrialResult(
                index=index,
                status=TrialStatus.SKIPPED_BOTH_CRASH,
                error_message=str(orig_error),
                symbols=dict(sample.symbols),
            )
        if orig_error is None and trans_error is not None:
            status = (
                TrialStatus.HANG_TRANSFORMED
                if isinstance(trans_error, HangError)
                else TrialStatus.CRASH_TRANSFORMED
            )
            return TrialResult(
                index=index,
                status=status,
                error_message=str(trans_error),
                symbols=dict(sample.symbols),
            )
        if orig_error is not None and trans_error is None:
            return TrialResult(
                index=index,
                status=TrialStatus.CRASH_ORIGINAL_ONLY,
                error_message=str(orig_error),
                symbols=dict(sample.symbols),
            )

        mismatched, max_err = compare_system_states(
            orig_result.outputs, trans_result.outputs, self.system_state, self.tolerance
        )
        if mismatched:
            return TrialResult(
                index=index,
                status=TrialStatus.MISMATCH,
                mismatched_containers=mismatched,
                max_abs_error=max_err,
                symbols=dict(sample.symbols),
            )
        return TrialResult(
            index=index, status=TrialStatus.MATCH, max_abs_error=max_err,
            symbols=dict(sample.symbols),
            coverage=orig_result.coverage if self.collect_coverage else None,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        num_trials: int = 100,
        stop_on_failure: bool = False,
        samples: Optional[Sequence[InputSample]] = None,
        max_skip_retries: int = 3,
    ) -> FuzzingReport:
        """Run a fuzzing campaign of ``num_trials`` trials.

        A trial where both programs crash (``SKIPPED_BOTH_CRASH``) carries no
        differential information, so it does not consume the trial budget:
        the slot is resampled up to ``max_skip_retries`` extra times before
        being given up.  ``FuzzingReport.trials_attempted`` counts every
        executed trial (including skips and retries) while
        ``trials_effective`` counts the trials that actually compared the two
        programs.

        With ``trial_batch > 1`` (and no explicit ``samples``), inputs are
        sampled in rounds and executed through the backends'
        :meth:`~repro.backends.base.CompiledProgram.run_batch`; verdicts
        are identical to the serial loop, skipped slots retry serially.
        """
        if self.trial_batch > 1 and samples is None:
            return self._run_batched(num_trials, stop_on_failure, max_skip_retries)
        report = FuzzingReport()
        start = _perf_counter()
        stop = False
        for slot in range(num_trials):
            if stop:
                break
            retries = 0
            while True:
                if samples is not None and slot < len(samples) and retries == 0:
                    sample = samples[slot]
                else:
                    sample = self.sampler.sample()
                trial = self.run_trial(sample, index=len(report.trials))
                report.trials.append(trial)
                report.trials_run += 1
                report.trials_attempted += 1
                _metric_inc("repro_trials_total", labels={"mode": "serial"})
                if trial.status == TrialStatus.SKIPPED_BOTH_CRASH:
                    report.trials_skipped += 1
                    if retries < max_skip_retries:
                        retries += 1
                        _metric_inc("repro_trial_retries_total")
                        continue
                    break
                report.trials_effective += 1
                if trial.is_failure:
                    report.failures += 1
                    if report.first_failure_trial is None:
                        report.first_failure_trial = len(report.trials)
                        report.failing_inputs = {
                            k: np.array(v, copy=True) for k, v in sample.arguments.items()
                        }
                        report.failing_symbols = dict(sample.symbols)
                    if stop_on_failure:
                        stop = True
                break
        report.duration_seconds = _perf_counter() - start
        return report

    # ------------------------------------------------------------------ #
    def _note_effective(
        self,
        report: FuzzingReport,
        trial: TrialResult,
        sample: InputSample,
        stop_on_failure: bool,
    ) -> bool:
        """Book-keep a non-skipped trial; returns True when the campaign
        should stop (first failure under ``stop_on_failure``)."""
        report.trials_effective += 1
        if trial.is_failure:
            report.failures += 1
            if report.first_failure_trial is None:
                report.first_failure_trial = len(report.trials)
                report.failing_inputs = {
                    k: np.array(v, copy=True) for k, v in sample.arguments.items()
                }
                report.failing_symbols = dict(sample.symbols)
            if stop_on_failure:
                return True
        return False

    def _run_batched(
        self, num_trials: int, stop_on_failure: bool, max_skip_retries: int
    ) -> FuzzingReport:
        """The batched campaign loop: sample a round of inputs, execute both
        programs via ``run_batch``, classify every pair.

        Rounds are split into consecutive equal-symbol groups (a batch
        shares one symbol binding).  ``SKIPPED_BOTH_CRASH`` slots carry no
        differential information and retry *serially* -- re-batching a
        single resample would gain nothing.
        """
        report = FuzzingReport()
        start = _perf_counter()
        stop = False
        slots_done = 0
        while slots_done < num_trials and not stop:
            round_size = min(self.trial_batch, num_trials - slots_done)
            slots_done += round_size
            round_samples = [self.sampler.sample() for _ in range(round_size)]
            groups: List[List[InputSample]] = []
            for sample in round_samples:
                if groups and dict(sample.symbols) == dict(groups[-1][0].symbols):
                    groups[-1].append(sample)
                else:
                    groups.append([sample])
            for group in groups:
                if stop:
                    break
                orig_outs = self._orig_exec.run_batch(
                    [s.copy_arguments() for s in group],
                    group[0].symbols,
                    collect_coverage=self.collect_coverage,
                )
                trans_outs = self._trans_exec.run_batch(
                    [s.copy_arguments() for s in group],
                    group[0].symbols,
                    collect_coverage=False,
                )
                for sample, orig_out, trans_out in zip(group, orig_outs, trans_outs):
                    if stop:
                        break
                    orig_error = (
                        orig_out if isinstance(orig_out, ExecutionError) else None
                    )
                    trans_error = (
                        trans_out if isinstance(trans_out, ExecutionError) else None
                    )
                    trial = self._classify(
                        sample,
                        len(report.trials),
                        None if orig_error is not None else orig_out,
                        orig_error,
                        None if trans_error is not None else trans_out,
                        trans_error,
                    )
                    report.trials.append(trial)
                    report.trials_run += 1
                    report.trials_attempted += 1
                    _metric_inc("repro_trials_total", labels={"mode": "batched"})
                    if trial.status != TrialStatus.SKIPPED_BOTH_CRASH:
                        stop = self._note_effective(
                            report, trial, sample, stop_on_failure
                        )
                        continue
                    report.trials_skipped += 1
                    retries = 0
                    while retries < max_skip_retries:
                        retries += 1
                        _metric_inc("repro_trial_retries_total")
                        retry_sample = self.sampler.sample()
                        trial = self.run_trial(retry_sample, index=len(report.trials))
                        report.trials.append(trial)
                        report.trials_run += 1
                        report.trials_attempted += 1
                        _metric_inc("repro_trials_total", labels={"mode": "serial"})
                        if trial.status == TrialStatus.SKIPPED_BOTH_CRASH:
                            report.trials_skipped += 1
                            continue
                        stop = self._note_effective(
                            report, trial, retry_sample, stop_on_failure
                        )
                        break
        report.duration_seconds = _perf_counter() - start
        return report
